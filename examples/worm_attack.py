#!/usr/bin/env python3
"""Unknown correlation patterns: the worm/flooding scenario (paper §5).

A worm periodically orders compromised hosts to flood a set of otherwise
uncorrelated links, which therefore congest *together* — but the operator
has no way to know this pattern, so the algorithm treats the targeted
links as uncorrelated ("mislabeled" links, Figure 5).

This example builds a PlanetLab-style instance, floods 50% of its
congested links with a hidden common cause, and shows that the
correlation algorithm still wins: it mislabels one pattern, while the
independence baseline mislabels every pattern in the network.

Run:  python examples/worm_attack.py
"""

import numpy as np

from repro.eval import (
    make_mislabeled_scenario,
    run_comparison,
)
from repro.simulate import ExperimentConfig
from repro.topogen import generate_planetlab
from repro.utils.tables import format_table


def main() -> None:
    instance = generate_planetlab(
        n_routers=220, n_vantages=45, n_paths=500, seed=5
    )
    print(
        f"PlanetLab-style instance: {instance.n_links} links, "
        f"{instance.n_paths} paths"
    )

    scenario = make_mislabeled_scenario(
        instance,
        congested_fraction=0.10,
        mislabeled_fraction=0.50,
        seed=17,
    )
    flood = scenario.metadata["flood_links"]
    print(
        f"worm floods {len(flood)} links "
        f"({scenario.metadata['mislabeled_fraction']:.0%} of the "
        f"{len(scenario.congested_links)} congested links); the "
        "operator's correlation sets do not know about it"
    )

    comparison = run_comparison(
        instance.topology,
        scenario,
        config=ExperimentConfig(n_snapshots=1500, packets_per_path=800),
        seed=18,
    )

    rows = []
    for name in ("correlation", "independence"):
        stats = comparison.stats(name)
        errors = comparison.errors[name]
        rows.append(
            [
                name,
                stats.mean,
                stats.p90,
                float((errors <= 0.1).mean()),
            ]
        )
    print(
        format_table(
            ["algorithm", "mean err", "p90 err", "frac<=0.1"],
            rows,
            title=(
                "Error over potentially congested links "
                f"({comparison.scored_links.size} links)"
            ),
        )
    )

    # Zoom in on the mislabeled links themselves: the paper reports the
    # correlation algorithm wins even there (it ignores one pattern, the
    # baseline ignores them all and suffers cascades).
    flood_positions = [
        i
        for i, link_id in enumerate(comparison.scored_links)
        if int(link_id) in flood
    ]
    rows = []
    for name in ("correlation", "independence"):
        flood_errors = comparison.errors[name][flood_positions]
        rows.append(
            [name, float(flood_errors.mean()), float(flood_errors.max())]
        )
    print(
        format_table(
            ["algorithm", "mean err", "max err"],
            rows,
            title=f"Error on the {len(flood_positions)} mislabeled links",
        )
    )


if __name__ == "__main__":
    main()
