#!/usr/bin/env python3
"""The Section-3.2 proof illustration, reproduced step by step.

Walks through the paper's worked example on Figure 1(a):

* the coverage table ψ(A) for every correlation subset (Section 3.1);
* Step 1 — measuring α_{e1} from P(ψ(S)=ψ({e1})) / P(ψ(S)=∅);
* Step 2 — measuring α_{e3} via (1 + α_{e1}) · α_{e3};
* Step 3 — the full factor ordering ⟨{e1},{e4},{e3},{e2},{e1,e2}⟩;
* Step 4 — Lemma 3: factors → P(Sp = A) → link marginals and joints.

All "measurements" here are exact (the oracle enumerates the ground-truth
model), so every recovered number matches the model to machine precision.

Run:  python examples/theorem_walkthrough.py
"""

from repro import ExactPathStateDistribution, TheoremAlgorithm
from repro.model import (
    ExplicitJointModel,
    IndependentModel,
    NetworkCongestionModel,
)
from repro.topogen import fig_1a
from repro.utils.tables import format_table


def main() -> None:
    instance = fig_1a()
    topology = instance.topology
    correlation = instance.correlation
    e1, e2, e3, e4 = (
        topology.link(name).id for name in ("e1", "e2", "e3", "e4")
    )

    # Ground truth: P(S1={e1}) = P(S1={e2}) = 0.05, P(S1={e1,e2}) = 0.2,
    # P(e3) = 0.3, P(e4) = 0.15.
    model = NetworkCongestionModel(
        correlation,
        [
            ExplicitJointModel(
                frozenset({e1, e2}),
                {
                    frozenset({e1}): 0.05,
                    frozenset({e2}): 0.05,
                    frozenset({e1, e2}): 0.20,
                },
            ),
            IndependentModel({e3: 0.30}),
            IndependentModel({e4: 0.15}),
        ],
    )
    oracle = ExactPathStateDistribution.from_model(topology, model)

    # ------------------------------------------------------------------
    print("Coverage table (Section 3.1):")
    rows = []
    for subset in correlation.iter_subsets():
        names = "{" + ",".join(
            sorted(topology.links[k].name for k in subset)
        ) + "}"
        covered = "{" + ",".join(
            p.name for p in topology.covered_paths(subset)
        ) + "}"
        rows.append([names, covered])
    print(format_table(["A in C~", "psi(A)"], rows))

    # ------------------------------------------------------------------
    p_all_good = oracle.p_congested_mask(0)
    print(f"\nSetup: P(psi(S) = empty) = {p_all_good:.6f}")

    mask_p1 = 1 << topology.path("P1").id
    ratio1 = oracle.p_congested_mask(mask_p1) / p_all_good
    print(
        "Step 1: P(psi(S)=psi({e1})) / P(psi(S)=empty) "
        f"= {ratio1:.6f} = alpha_e1  (truth: 0.05/0.7 = {0.05/0.7:.6f})"
    )

    mask_p1p2 = mask_p1 | (1 << topology.path("P2").id)
    ratio2 = oracle.p_congested_mask(mask_p1p2) / p_all_good
    alpha_e3 = ratio2 / (1 + ratio1)
    print(
        "Step 2: P(psi(S)=psi({e3})) / P(psi(S)=empty) "
        f"= {ratio2:.6f} = (1 + alpha_e1) * alpha_e3"
        f"  ->  alpha_e3 = {alpha_e3:.6f} (truth: {0.3/0.7:.6f})"
    )

    # ------------------------------------------------------------------
    algorithm = TheoremAlgorithm(topology, correlation)
    order = [
        "{" + ",".join(sorted(topology.links[k].name for k in subset)) + "}"
        for subset in algorithm.ordered_subsets
    ]
    print(f"\nStep 3: factor ordering: {' < '.join(order)}")

    result = algorithm.identify(oracle)
    rows = []
    for subset in algorithm.ordered_subsets:
        names = "{" + ",".join(
            sorted(topology.links[k].name for k in subset)
        ) + "}"
        rows.append([names, result.factors.factor(subset)])
    print(format_table(["A", "alpha_A"], rows, title="All factors:"))

    # ------------------------------------------------------------------
    print("\nStep 4 (Lemma 3): recovered quantities vs ground truth")
    truth = model.link_marginals()
    rows = [
        [
            topology.links[k].name,
            result.link_marginals[k],
            truth[k],
        ]
        for k in range(topology.n_links)
    ]
    print(format_table(["link", "recovered P", "true P"], rows))
    print(
        f"\nP(X_e1=1, X_e2=1): recovered {result.joint({e1, e2}):.6f}, "
        f"true {model.joint({e1, e2}):.6f}"
    )
    print(
        f"P(X_e1=1, X_e3=1): recovered {result.joint({e1, e3}):.6f} "
        f"(= product of marginals across sets), "
        f"true {model.joint({e1, e3}):.6f}"
    )


if __name__ == "__main__":
    main()
