#!/usr/bin/env python3
"""The paper's "Ongoing Work": the PlanetLab tomographer, emulated.

The paper planned to run a tomographer between PlanetLab nodes twice —
(i) assuming all links uncorrelated and (ii) assuming all links in the
same AS correlated — and compare the runs via the indirect validation
method of Padmanabhan et al. [13] (inferred link probabilities are scored
by how well they predict *held-out* path-level behaviour, since real
per-link ground truth is unobservable).

PlanetLab is not reachable from an offline reproduction, so the mesh is
synthetic (see DESIGN.md §2.4), but the protocol is the planned one:
train on one measurement window, validate on another, compare variants.

Run:  python examples/planetlab_tomographer.py
"""

import numpy as np

from repro.eval import make_clustered_scenario, run_tomographer
from repro.simulate import ExperimentConfig, run_experiment
from repro.topogen import generate_planetlab
from repro.utils.tables import format_table


def main() -> None:
    instance = generate_planetlab(
        n_routers=220, n_vantages=45, n_paths=500, seed=11
    )
    print(
        f"traceroute mesh: {instance.n_links} links, "
        f"{instance.n_paths} paths, "
        f"{instance.correlation.n_sets} correlation clusters"
    )

    scenario = make_clustered_scenario(
        instance, congested_fraction=0.10, seed=12
    )
    config = ExperimentConfig(n_snapshots=1500, packets_per_path=800)
    training = run_experiment(
        instance.topology, scenario.truth_model, config=config, seed=13
    )
    holdout = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=1000, packets_per_path=800),
        seed=14,
    )

    comparison = run_tomographer(
        instance.topology,
        instance.correlation,
        training.observations,
        holdout.observations,
    )

    rows = []
    for label, validation in (
        ("(i) all links uncorrelated", comparison.uncorrelated_validation),
        ("(ii) cluster-correlated", comparison.correlated_validation),
    ):
        rows.append(
            [
                label,
                validation.mean_error,
                validation.p90_error,
                validation.mean_error_correlation_free,
            ]
        )
    print(
        format_table(
            [
                "tomographer variant",
                "mean path err",
                "p90 path err",
                "mean err (corr-free paths)",
            ],
            rows,
            title=(
                "Indirect validation on "
                f"{comparison.metadata['n_holdout_snapshots']} held-out "
                "snapshots"
            ),
        )
    )

    # We also have what the real tomographer never gets: ground truth.
    truth = scenario.truth_model.link_marginals()
    rows = []
    for label, result in (
        ("(i) all links uncorrelated", comparison.uncorrelated_result),
        ("(ii) cluster-correlated", comparison.correlated_result),
    ):
        errors = np.abs(result.congestion_probabilities - truth)
        rows.append([label, float(errors.mean()), float(errors.max())])
    print(
        format_table(
            ["tomographer variant", "mean link err", "max link err"],
            rows,
            title="Ground-truth link errors (simulation-only luxury)",
        )
    )
    winner = "(ii)" if comparison.correlated_wins else "(i)"
    print(
        f"\nindirect validation prefers variant {winner} — the paper's "
        "hypothesis was that accounting for correlation helps."
    )


if __name__ == "__main__":
    main()
