#!/usr/bin/env python3
"""Quickstart: tomography on correlated links in ~40 lines.

Builds the paper's Figure-1(a) toy topology, attaches a correlated
ground-truth congestion model, simulates end-to-end measurements, and
infers per-link congestion probabilities with the correlation algorithm
(Section 4 of the paper), comparing against ground truth.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, infer_congestion, run_experiment
from repro.model import (
    ExplicitJointModel,
    IndependentModel,
    NetworkCongestionModel,
)
from repro.topogen import fig_1a
from repro.utils.tables import format_table


def main() -> None:
    # 1. The measurement topology + known correlation sets.  Links e1
    #    and e2 may be correlated (they share a hidden physical link);
    #    e3 and e4 are independent.
    instance = fig_1a()
    topology = instance.topology
    e1, e2, e3, e4 = (
        topology.link(name).id for name in ("e1", "e2", "e3", "e4")
    )

    # 2. Ground truth the operator does NOT know: e1 and e2 congest
    #    together 20% of the time (a shared trunk), each alone 5%.
    model = NetworkCongestionModel(
        instance.correlation,
        [
            ExplicitJointModel(
                frozenset({e1, e2}),
                {
                    frozenset({e1}): 0.05,
                    frozenset({e2}): 0.05,
                    frozenset({e1, e2}): 0.20,
                },
            ),
            IndependentModel({e3: 0.30}),
            IndependentModel({e4: 0.15}),
        ],
    )

    # 3. Simulate an experiment: 4000 snapshots, 1000 probe packets per
    #    path per snapshot, the loss model of the paper's Section 5.
    run = run_experiment(
        topology,
        model,
        config=ExperimentConfig(n_snapshots=4000, packets_per_path=1000),
        seed=2010,
    )

    # 4. Infer per-link congestion probabilities from the observations.
    result = infer_congestion(
        topology, instance.correlation, run.observations
    )

    truth = model.link_marginals()
    rows = [
        [
            link.name,
            truth[link.id],
            result.probability(link.id),
            abs(truth[link.id] - result.probability(link.id)),
        ]
        for link in topology.links
    ]
    print(
        format_table(
            ["link", "true P(congested)", "inferred", "abs error"],
            rows,
            title="Correlation algorithm on Figure 1(a)",
        )
    )
    print(
        f"\nequations: N1={result.n_single_equations} single-path + "
        f"N2={result.n_pair_equations} pair = {result.n_equations} "
        f"(|E| = {topology.n_links}), rank {result.rank}"
    )


if __name__ == "__main__":
    main()
