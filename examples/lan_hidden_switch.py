#!/usr/bin/env python3
"""LAN scenario: a traceroute-invisible Ethernet switch (paper Fig 2(a)).

traceroute only reveals layer-3 routers, so the switch interconnecting
routers r1..r4 is missing from the operator's graph.  The four logical
links crossing the switch share its physical segments: when a segment
congests, several logical links congest *together* — they are correlated.

The operator maps the whole LAN to one correlation set (the paper's
Section-3.3 advice) and runs the correlation algorithm; the independence
baseline on the same measurements mis-attributes the shared congestion.

Run:  python examples/lan_hidden_switch.py
"""

import numpy as np

from repro import (
    ExperimentConfig,
    infer_congestion,
    infer_congestion_independent,
    run_experiment,
)
from repro.model import NetworkCongestionModel, SharedResourceModel
from repro.topogen import fig_2a_lan
from repro.utils.tables import format_table


def main() -> None:
    scenario = fig_2a_lan()
    instance = scenario.instance
    topology = instance.topology
    print(
        f"LAN instance: {topology.n_links} logical links, "
        f"{topology.n_paths} probing paths; hidden segments: "
        f"{sorted(scenario.segment_names)}"
    )

    # Ground truth: the r1 leg of the switch is flaky (12% congested),
    # r3's leg mildly so; access links carry light congestion.
    segment_probabilities = {}
    for resources in scenario.resource_map.values():
        for segment in resources:
            segment_probabilities.setdefault(segment, 0.02)
    segment_probabilities["seg_r1"] = 0.12
    segment_probabilities["seg_r3"] = 0.06

    models = []
    for group in instance.correlation.sets:
        resources = {
            r for k in group for r in scenario.resource_map[k]
        }
        models.append(
            SharedResourceModel(
                {k: scenario.resource_map[k] for k in group},
                {r: segment_probabilities[r] for r in resources},
            )
        )
    model = NetworkCongestionModel(instance.correlation, models)
    truth = model.link_marginals()

    run = run_experiment(
        topology,
        model,
        config=ExperimentConfig(n_snapshots=6000, packets_per_path=1000),
        seed=2024,
    )
    correlation_result = infer_congestion(
        topology, instance.correlation, run.observations
    )
    independence_result = infer_congestion_independent(
        topology, run.observations
    )

    rows = []
    for link in topology.links:
        rows.append(
            [
                link.name,
                truth[link.id],
                correlation_result.probability(link.id),
                independence_result.probability(link.id),
            ]
        )
    print(
        format_table(
            ["link", "true P", "correlation", "independence"],
            rows,
            title="Inferred congestion probabilities",
        )
    )

    for name, result in (
        ("correlation", correlation_result),
        ("independence", independence_result),
    ):
        errors = np.abs(result.congestion_probabilities - truth)
        print(
            f"{name}: mean error {errors.mean():.4f}, "
            f"max {errors.max():.4f}"
        )
    # The LAN links congest in pairs through shared segments; verify the
    # correlation the operator would see in raw samples.
    a = topology.link("r1->r3").id
    b = topology.link("r1->r4").id
    joint = model.joint({a, b})
    print(
        f"\nhidden sharing: P(r1->r3 AND r1->r4 congested) = {joint:.4f} "
        f"vs {truth[a] * truth[b]:.4f} if they were independent"
    )


if __name__ == "__main__":
    main()
