#!/usr/bin/env python3
"""Future-work extension: which links were congested *this* snapshot?

The paper closes Section 3.3 by noting that, once per-link congestion
probabilities are identified (even under correlation), the classic
snapshot-localization question can be answered by explicitly scoring each
feasible explanation.  This example implements that pipeline:

1. learn per-link probabilities with the correlation algorithm;
2. for each snapshot, find the maximum-likelihood set of congested links
   consistent with the observed congested paths (branch and bound);
3. compare against the smallest-set heuristic of earlier Boolean
   tomography [13, 10] on detection precision/recall.

Run:  python examples/congestion_localization.py
"""

import numpy as np

from repro import (
    ExperimentConfig,
    infer_congestion,
    localize_map,
    localize_smallest_set,
    run_experiment,
)
from repro.eval import make_clustered_scenario
from repro.topogen import generate_planetlab
from repro.utils.tables import format_table


def main() -> None:
    instance = generate_planetlab(
        n_routers=150, n_vantages=30, n_paths=260, seed=3
    )
    scenario = make_clustered_scenario(
        instance, congested_fraction=0.08, seed=4
    )
    print(
        f"instance: {instance.n_links} links / {instance.n_paths} paths,"
        f" {len(scenario.congested_links)} congested links"
    )

    # Phase 1: learn probabilities from a training experiment.
    train = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=1500, packets_per_path=800),
        seed=5,
    )
    learned = infer_congestion(
        instance.topology, instance.correlation, train.observations
    )
    print(
        f"learned probabilities: rank {learned.rank}/"
        f"{instance.n_links}, {learned.n_equations} equations"
    )

    # Phase 2: localize congested links on fresh snapshots.
    test = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(n_snapshots=150, packets_per_path=800),
        seed=6,
    )
    scores = {"map": [0.0, 0.0, 0], "smallest_set": [0.0, 0.0, 0]}
    probabilities = learned.congestion_probabilities
    for snapshot in range(test.observations.n_snapshots):
        mask = test.observations.congested_mask_of_snapshot(snapshot)
        true_links = frozenset(
            int(k) for k in np.flatnonzero(test.link_states[snapshot])
        )
        # Probing noise occasionally flags path sets with no feasible
        # explanation; "trim" drops those paths as observation noise
        # instead of rejecting the snapshot.
        results = {
            "map": localize_map(
                instance.topology,
                mask,
                probabilities,
                on_infeasible="trim",
            ),
            "smallest_set": localize_smallest_set(
                instance.topology, mask, on_infeasible="trim"
            ),
        }
        for name, result in results.items():
            precision, recall = result.precision_recall(true_links)
            scores[name][0] += precision
            scores[name][1] += recall
            scores[name][2] += 1

    rows = []
    for name, (precision_sum, recall_sum, count) in scores.items():
        rows.append(
            [
                name,
                precision_sum / max(count, 1),
                recall_sum / max(count, 1),
                count,
            ]
        )
    print(
        format_table(
            ["method", "precision", "recall", "snapshots"],
            rows,
            title="Per-snapshot congested-link localization",
        )
    )


if __name__ == "__main__":
    main()
