#!/usr/bin/env python3
"""ISP scenario: monitoring neighbour domains' SLAs (paper intro, (ii)).

An operator probes across a set of neighbouring administrative domains
whose internals are opaque (MPLS).  Domain-level links sharing internal
router infrastructure are correlated.  The operator knows *which* links
may be correlated (per the paper's model) but not how strongly.

This example builds a Brite-style two-level topology, assigns congestion
at the hidden *router* level (the paper's Section-5 recipe: AS-level
probabilities are derived, not chosen), and compares the correlation
algorithm against the independence baseline on the resulting measurements.

Run:  python examples/isp_sla_monitoring.py

With ``--serve``, the same monitoring problem runs in service mode: a
resident ``repro-tomography serve`` process is started, the operator's
instance is uploaded once as a full document (its router-sharing
correlation structure is measured, not generator-expressible), and the
recurring SLA checks become cheap warm queries against the loaded
topology — the deployment shape for continuous monitoring, where the
topology changes rarely but questions arrive all day.

With ``--stream``, monitoring becomes *online*: probe windows flow to
the service's ``/stream`` endpoint as they are collected, and the
operator watches per-window verdict deltas (onsets / clears) instead of
re-running batch inference.  A congestion onset is scripted partway
through the stream so the detection actually happens on screen, and the
final full-history answer is checked byte-for-byte against a local
batch inference — streaming changes *when* you learn, never *what*.
"""

import numpy as np

from repro import (
    ExperimentConfig,
    infer_congestion,
    infer_congestion_independent,
    run_experiment,
)
from repro.eval import absolute_error_stats, potentially_congested_links
from repro.topogen import generate_brite
from repro.utils.tables import format_table


def main() -> None:
    print("Generating AS-level + router-level topology pair...")
    scenario = generate_brite(
        n_ases=120,
        routers_per_as=12,
        n_paths=350,
        correlation_mode="sharing",
        seed=7,
    )
    instance = scenario.instance
    print(
        f"  {instance.n_links} AS-level links, "
        f"{instance.n_paths} paths, "
        f"{instance.correlation.n_sets} correlation sets "
        f"(largest: {instance.correlation.largest_set_size} links)"
    )

    # Congestion lives on hidden router-level links; AS-level links
    # inherit it through sharing (this is why they are correlated).
    model = scenario.make_organic_model(
        congested_resource_fraction=0.04,
        resource_probability_range=(0.15, 0.7),
        seed=13,
    )
    truth = model.link_marginals()
    print(
        f"  {int((truth > 0).sum())} AS-level links have positive "
        "congestion probability"
    )

    print("Simulating 1500 measurement snapshots...")
    run = run_experiment(
        instance.topology,
        model,
        config=ExperimentConfig(n_snapshots=1500, packets_per_path=800),
        seed=99,
    )

    correlation_result = infer_congestion(
        instance.topology, instance.correlation, run.observations
    )
    independence_result = infer_congestion_independent(
        instance.topology, run.observations
    )

    scored = potentially_congested_links(
        instance.topology, run.observations
    )
    rows = []
    for name, result in (
        ("correlation", correlation_result),
        ("independence", independence_result),
    ):
        errors = np.abs(result.congestion_probabilities - truth)[scored]
        stats = absolute_error_stats(errors)
        rows.append(
            [
                name,
                stats.mean,
                stats.p90,
                stats.max,
                float((errors <= 0.1).mean()),
            ]
        )
    print(
        format_table(
            ["algorithm", "mean err", "p90 err", "max err", "frac<=0.1"],
            rows,
            title=(
                f"Per-link absolute error over {scored.size} potentially "
                "congested links"
            ),
        )
    )

    # The SLA question: which neighbour links exceed a congestion budget?
    budget = 0.2
    flagged = [
        instance.topology.links[k].name
        for k in scored
        if correlation_result.probability(int(k)) > budget
    ]
    offenders = [
        instance.topology.links[int(k)].name
        for k in scored
        if truth[int(k)] > budget
    ]
    hits = len(set(flagged) & set(offenders))
    print(
        f"\nSLA check (P(congested) > {budget}): flagged "
        f"{len(flagged)} links, {hits}/{len(offenders)} true offenders "
        "caught"
    )


def service_mode() -> None:
    """The monitoring loop as warm queries against a resident service."""
    import json
    import subprocess
    import sys
    import time

    from repro.io import instance_to_dict
    from repro.serve.client import ServiceClient

    print("Generating the operator's measured topology...")
    scenario = generate_brite(
        n_ases=120,
        routers_per_as=12,
        n_paths=350,
        correlation_mode="sharing",
        seed=7,
    )
    instance = scenario.instance

    print("Starting the resident tomography service...")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stdout.readline().strip()
        port = int(banner.rsplit(":", 1)[1])
        with ServiceClient(port=port, timeout=600) as client:
            # The sharing-derived correlation structure came from the
            # operator's own measurements, so the instance ships as a
            # full document rather than a generator spec.
            start = time.perf_counter()
            fingerprint = client.load_topology(
                instance=instance_to_dict(instance), name="neighbour-slas"
            )
            print(
                f"  loaded {fingerprint[:12]} in "
                f"{time.perf_counter() - start:.1f}s "
                "(topology + warm equation prep, paid once)"
            )

            # One-off sanity question before monitoring starts: which
            # links can this probe deployment even identify?
            report = client.identifiability(fingerprint)
            print(
                f"  identifiability: Assumption 4 "
                f"{'holds' if report['holds'][0] else 'FAILS'}, "
                f"{report['structural_unidentifiable_links'].size} links "
                "structurally unidentifiable"
            )

            # The monitoring loop: each interval asks the service for a
            # fresh localization snapshot.  Same topology, warm prep —
            # each question costs simulation + inference only.
            budget = 0.2
            for interval, seed in enumerate((101, 102, 103)):
                start = time.perf_counter()
                answer = client.localize(
                    fingerprint,
                    seed=seed,
                    n_snapshots=60,
                    packets_per_path=800,
                    loc_snapshots=2,
                )
                elapsed = time.perf_counter() - start
                flagged = int((answer["probabilities"] > budget).sum())
                print(
                    f"  interval {interval}: {elapsed * 1000:6.0f}ms — "
                    f"{flagged} links over the P(congested) > {budget} "
                    f"budget, localization precision "
                    f"{answer['loc_precision'].mean():.2f}"
                )

            stats = client.stats()
            print(
                "  service stats: "
                + json.dumps(stats["prep_registry"], sort_keys=True)
            )
    finally:
        process.terminate()
        process.wait(timeout=30)
    print("Service shut down cleanly.")


def stream_mode() -> None:
    """Online monitoring: probe windows through the /stream endpoint."""
    import subprocess
    import sys
    import time

    from repro.eval.scenario import make_clustered_scenario
    from repro.model.loss import LossModel
    from repro.serve.client import ServiceClient
    from repro.serve.queries import decode_vectors
    from repro.simulate.observations import PathObservations
    from repro.simulate.probes import PathProber, ProbeConfig
    from repro.simulate.stream import (
        LinkStateTimeline,
        SnapshotStream,
        StreamEvent,
    )

    generator = {
        "kind": "brite",
        "n_ases": 40,
        "routers_per_as": 5,
        "n_paths": 120,
        "seed": 7,
    }
    print("Generating the monitored topology...")
    scenario = generate_brite(
        n_ases=generator["n_ases"],
        routers_per_as=generator["routers_per_as"],
        n_paths=generator["n_paths"],
        seed=generator["seed"],
    )
    instance = scenario.instance

    # A quiet background scenario, then a scripted congestion onset on
    # two background-quiet links one third of the way in: the event the
    # operator is waiting to catch.
    background = make_clustered_scenario(
        instance, congested_fraction=0.04, seed=21
    )
    quiet = sorted(
        set(range(instance.topology.n_links))
        - background.congested_links
    )
    onset_links = (quiet[3], quiet[11])
    window_size, n_windows, onset_window = 60, 9, 3
    timeline = LinkStateTimeline(
        [
            StreamEvent(
                kind="onset",
                at=onset_window * window_size,
                links=onset_links,
            )
        ]
    )
    stream = SnapshotStream(
        background.truth_model,
        LossModel(),
        PathProber(
            instance.topology, ProbeConfig(packets_per_path=800)
        ),
        window_size=window_size,
        timeline=timeline,
        rng=99,
    )
    windows = [w.path_states for w in stream.windows(n_windows)]

    print("Starting the resident tomography service...")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        banner = process.stdout.readline().strip()
        port = int(banner.rsplit(":", 1)[1])
        with ServiceClient(port=port, timeout=600) as client:
            fingerprint = client.load_topology(
                generator=generator, name="neighbour-slas-stream"
            )
            print(
                f"  loaded {fingerprint[:12]}; streaming "
                f"{n_windows} windows x {window_size} snapshots "
                f"(scripted onset on links {list(onset_links)} at "
                f"window {onset_window})"
            )
            final = None
            start = time.perf_counter()
            for delta in client.stream(fingerprint, windows):
                if "final" in delta:
                    final = delta["final"]
                    continue
                marks = []
                if delta["onsets"]:
                    marks.append(f"ONSET {delta['onsets']}")
                if delta["clears"]:
                    marks.append(f"clear {delta['clears']}")
                caught = set(delta["onsets"]) & set(onset_links)
                if caught and delta["window"] >= onset_window:
                    lag = delta["window"] - onset_window + 1
                    marks.append(
                        f"<- scripted event caught, latency "
                        f"{lag} window(s)"
                    )
                print(
                    f"  window {delta['window']}: "
                    f"{delta['n_congested']:3d} links over threshold"
                    + ("  " + "; ".join(marks) if marks else "")
                )
            elapsed = time.perf_counter() - start
            print(
                f"  streamed {n_windows} verdicts in "
                f"{elapsed * 1000:.0f}ms"
            )

        # The streaming contract: the final full-history estimates are
        # byte-equal to a local batch inference over the same rows.
        batch = infer_congestion(
            instance.topology,
            instance.correlation,
            PathObservations(np.concatenate(windows, axis=0)),
        )
        streamed = decode_vectors(final["result"])
        identical = (
            streamed["probabilities"].tobytes()
            == batch.congestion_probabilities.tobytes()
        )
        print(
            "  final answer vs local batch inference: "
            + ("BIT-IDENTICAL" if identical else "MISMATCH")
        )
        if not identical:
            raise SystemExit(1)
    finally:
        process.terminate()
        process.wait(timeout=30)
    print("Service shut down cleanly.")


if __name__ == "__main__":
    import sys

    if "--stream" in sys.argv[1:]:
        stream_mode()
    elif "--serve" in sys.argv[1:]:
        service_mode()
    else:
        main()
