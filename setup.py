"""Legacy build shim and project metadata.

The offline build environment ships setuptools without the ``wheel``
package, so PEP-517 editable installs (which build an editable wheel)
fail.  This shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.

Dependency floors: the batch estimator kernels need
``numpy.packbits(..., bitorder=...)`` and the ``Generator`` /
``SeedSequence`` API (numpy >= 1.20), and the L1 solver needs
``scipy.optimize.linprog(method="highs")`` with sparse constraint
matrices (scipy >= 1.6).
"""

import pathlib
import re

from setuptools import find_packages, setup

# Single source of truth for the version: repro.__version__ (also what
# `repro-tomography --version` prints).  Read textually — importing the
# package from setup.py would need its dependencies installed first.
_version = re.search(
    r'^__version__ = "([^"]+)"',
    (pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py")
    .read_text(encoding="utf-8"),
    re.MULTILINE,
).group(1)

setup(
    name="repro-tomography",
    version=_version,
    description=(
        "Reproduction of 'Network Tomography on Correlated Links' "
        "(Ghita, Argyraki, Thiran - IMC 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.20",
        "scipy>=1.6",
        "networkx>=2.6",
    ],
    entry_points={
        "console_scripts": [
            "repro-tomography = repro.cli:main",
        ]
    },
)
