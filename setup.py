"""Legacy build shim and project metadata.

The offline build environment ships setuptools without the ``wheel``
package, so PEP-517 editable installs (which build an editable wheel)
fail.  This shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path.

Dependency floors: the batch estimator kernels need
``numpy.packbits(..., bitorder=...)`` and the ``Generator`` /
``SeedSequence`` API (numpy >= 1.20), and the L1 solver needs
``scipy.optimize.linprog(method="highs")`` with sparse constraint
matrices (scipy >= 1.6).
"""

from setuptools import find_packages, setup

setup(
    name="repro-tomography",
    version="0.2.0",
    description=(
        "Reproduction of 'Network Tomography on Correlated Links' "
        "(Ghita, Argyraki, Thiran - IMC 2010)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.20",
        "scipy>=1.6",
        "networkx>=2.6",
    ],
    entry_points={
        "console_scripts": [
            "repro-tomography = repro.cli:main",
        ]
    },
)
