"""Legacy build shim.

The offline build environment ships setuptools without the ``wheel``
package, so PEP-517 editable installs (which build an editable wheel)
fail.  This shim lets ``pip install -e .`` fall back to the classic
``setup.py develop`` path; all project metadata lives in pyproject.toml
and is read by setuptools >= 61.
"""

from setuptools import setup

setup()
