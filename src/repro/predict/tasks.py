"""What-if trials as scenario-engine tasks.

:data:`WHATIF_RUNNER` is the dotted runner spec the service's
``whatif`` query kind, the ``predict`` CLI command, and the
:mod:`repro.eval.predict` sweep all execute — the identical code runs
whether the task lands in-process, in a pool worker, or on a dist
fleet, which is what makes the CLI and the ``/whatif`` endpoint
bit-identical for the same inputs.

One task is one full what-if trial: simulate a clustered congestion
scenario and its probe observations (seeded from the task's pre-spawned
child streams, exactly like the figure sweeps), infer the current link
state, then forecast every requested demand shift.  Results are flat
``dict[str, float64 ndarray]`` — the one shape every executor
transport and the trial cache speak — with per-shift vectors keyed
``shift<i>_*`` in the order the shifts were given.
"""

from __future__ import annotations

import numpy as np

from repro.eval.scenario import make_clustered_scenario, resolve_per_set_range
from repro.predict.demand import DemandMatrix, DemandShift
from repro.predict.model import CongestionModel
from repro.predict.scenario import WhatIfScenario
from repro.simulate.experiment import ExperimentConfig, run_experiment
from repro.utils.rng import clone_generator, spawn_children

__all__ = ["WHATIF_RUNNER", "run_whatif_task", "whatif_vectors_to_result"]

#: Dotted runner spec — resolvable by name in any worker process.
WHATIF_RUNNER = "repro.predict.tasks:run_whatif_task"


def run_whatif_task(instance, config, options, task) -> dict:
    """One what-if trial: simulate, infer, forecast, rank.

    ``factory_kwargs``: ``demand`` (demand-matrix payload), ``shifts``
    (list of shift payloads; ``None`` = the matrix's own, else the
    identity baseline), ``utilization_threshold`` / ``exact_max_flows``
    / ``mc_samples`` (model knobs), and the probe-window parameters
    ``congested_fraction`` / ``per_set_range`` / ``n_snapshots`` /
    ``packets_per_path``.  The context ``config`` is ignored — the
    window rides the kwargs so it is part of the cache key.

    Returns ``current`` (inferred now-probabilities), ``capacities``,
    ``n_shifts``, and per shift ``i``: ``shift<i>_scale``,
    ``shift<i>_predicted``, ``shift<i>_combined``,
    ``shift<i>_expected_utilization``, ``shift<i>_ranking`` (link ids
    by descending combined risk), and ``shift<i>_method`` (0 = exact,
    1 = Monte Carlo).
    """
    kwargs = dict(task.factory_kwargs)
    demand = DemandMatrix.from_payload(kwargs.pop("demand"))
    shifts_payload = kwargs.pop("shifts")
    shifts = (
        None
        if shifts_payload is None
        else [DemandShift.from_payload(shift) for shift in shifts_payload]
    )
    model = CongestionModel(
        utilization_threshold=float(kwargs.pop("utilization_threshold")),
        exact_max_flows=int(kwargs.pop("exact_max_flows")),
        mc_samples=int(kwargs.pop("mc_samples")),
    )
    congested_fraction = float(kwargs.pop("congested_fraction"))
    per_set_range = resolve_per_set_range(kwargs.pop("per_set_range"))
    n_snapshots = int(kwargs.pop("n_snapshots"))
    packets = kwargs.pop("packets_per_path")
    packets = None if packets is None else int(packets)
    if kwargs:
        raise ValueError(f"unexpected whatif task parameters {sorted(kwargs)}")

    scenario = make_clustered_scenario(
        instance,
        congested_fraction=congested_fraction,
        per_set_range=per_set_range,
        seed=clone_generator(task.scenario_seed),
    )
    sim_seed, predict_seed = spawn_children(clone_generator(task.run_seed), 2)
    run = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=ExperimentConfig(
            n_snapshots=n_snapshots, packets_per_path=packets
        ),
        seed=sim_seed,
    )
    whatif = WhatIfScenario(
        instance,
        demand,
        shifts=shifts,
        model=model,
        options=options,
    )
    result = whatif.evaluate(run.observations, seed=predict_seed)

    out = {
        "current": result.current,
        "capacities": whatif.resolved.capacities.copy(),
        "n_shifts": np.array([float(len(result.shifts))]),
    }
    for index, risk in enumerate(result.shifts):
        out[f"shift{index}_scale"] = np.array([float(risk.scale)])
        out[f"shift{index}_predicted"] = risk.predicted
        out[f"shift{index}_combined"] = risk.combined
        out[f"shift{index}_expected_utilization"] = risk.expected_utilization
        out[f"shift{index}_ranking"] = risk.ranking.astype(np.float64)
        out[f"shift{index}_method"] = np.array(
            [0.0 if risk.method == "exact" else 1.0]
        )
    return out


def whatif_vectors_to_result(vectors: dict, shift_names=None) -> dict:
    """Re-shape a flat runner result into per-shift records.

    The transports only carry float64 vectors, so shift *names* travel
    with the query, not the result; pass them back in to label the
    records (defaults to ``shift0..shiftN``).  Used by the CLI table
    renderer and tests — JSON output keeps the flat canonical form.
    """
    n_shifts = int(vectors["n_shifts"][0])
    if shift_names is None:
        shift_names = [f"shift{index}" for index in range(n_shifts)]
    if len(shift_names) != n_shifts:
        raise ValueError(
            f"{n_shifts} shifts in result, {len(shift_names)} names given"
        )
    shifts = []
    for index, name in enumerate(shift_names):
        shifts.append(
            {
                "name": name,
                "scale": float(vectors[f"shift{index}_scale"][0]),
                "predicted": vectors[f"shift{index}_predicted"],
                "combined": vectors[f"shift{index}_combined"],
                "expected_utilization": vectors[
                    f"shift{index}_expected_utilization"
                ],
                "ranking": vectors[f"shift{index}_ranking"].astype(int),
                "method": (
                    "exact"
                    if vectors[f"shift{index}_method"][0] == 0.0
                    else "monte-carlo"
                ),
            }
        )
    return {
        "current": vectors["current"],
        "capacities": vectors["capacities"],
        "shifts": shifts,
    }
