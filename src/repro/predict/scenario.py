"""What-if driver: chain tomographic inference with demand prediction.

A :class:`WhatIfScenario` holds one instance + demand matrix and answers
"given what the probes say about the network *now*, which links are at
risk if this demand shift lands?".  Inference runs the Section-4
correlation algorithm over any :class:`~repro.simulate.observations.
PathObservations` — a batch window or the accumulated state of a
streaming session — and prediction runs the congestion model per named
shift.  The two combine as independent risks::

    combined = 1 − (1 − inferred_now) × (1 − predicted_under_shift)

i.e. the probability the link is congested now *or* would be pushed
over threshold by the shifted demand.  Links are ranked by combined
risk, ties broken by link id, so rankings are deterministic and
bit-comparable across CLI / service / executor backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.correlation_algorithm import infer_congestion
from repro.predict.demand import DemandMatrix, DemandShift
from repro.predict.model import CongestionModel
from repro.utils.rng import spawn_children

__all__ = ["ShiftRisk", "WhatIfResult", "WhatIfScenario", "risk_ranking"]


def risk_ranking(risk: np.ndarray) -> np.ndarray:
    """Link ids sorted by descending risk, ties broken by ascending id."""
    ids = np.arange(risk.size)
    return np.lexsort((ids, -np.asarray(risk, dtype=np.float64)))


@dataclass(frozen=True, slots=True)
class ShiftRisk:
    """One shift's per-link forecast.

    Attributes:
        name: The shift's name.
        scale: Its global scale factor.
        predicted: P(link exceeds threshold) under the shifted demand.
        combined: Congested-now OR congests-under-shift probability.
        expected_utilization: Mean load / capacity under the shift.
        ranking: Link ids by descending combined risk (ties → id).
        method: ``"exact"`` or ``"monte-carlo"``.
    """

    name: str
    scale: float
    predicted: np.ndarray
    combined: np.ndarray
    expected_utilization: np.ndarray
    ranking: np.ndarray
    method: str


@dataclass(frozen=True, slots=True)
class WhatIfResult:
    """Inferred current state plus one :class:`ShiftRisk` per shift."""

    current: np.ndarray
    shifts: tuple[ShiftRisk, ...]

    def shift(self, name: str) -> ShiftRisk:
        for shift in self.shifts:
            if shift.name == name:
                return shift
        raise KeyError(f"no shift named {name!r}")


class WhatIfScenario:
    """Inference→prediction driver for one instance + demand matrix.

    Args:
        instance: Topology + correlation structure.
        demand: The demand matrix (resolved against the topology here,
            so binding errors surface at construction).
        shifts: Shifts to evaluate; defaults to the matrix's own named
            shifts, or the identity ``baseline`` shift when it has none.
        model: Congestion model (threshold / exact-vs-MC knobs).
        options: Algorithm knobs for the inference step.
        registry: Prepared-state registry for the equation builder.
        cache: Optional :class:`repro.eval.cache.TrialCache` memoizing
            per-shift predictions on the demand fingerprint.
    """

    def __init__(
        self,
        instance,
        demand: DemandMatrix,
        *,
        shifts=None,
        model: CongestionModel | None = None,
        options=None,
        registry=None,
        cache=None,
    ) -> None:
        self.instance = instance
        self.demand = demand
        self.model = model or CongestionModel()
        self.options = options
        self.registry = registry
        self.cache = cache
        self.resolved = demand.resolve(instance.topology)
        chosen = tuple(shifts) if shifts is not None else demand.shifts
        if not chosen:
            chosen = (DemandShift(name="baseline"),)
        names = [shift.name for shift in chosen]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shift name(s) in {names}")
        self.shifts: tuple[DemandShift, ...] = chosen

    def infer_current(self, observations) -> np.ndarray:
        """Per-link congestion probabilities inferred from the probes."""
        result = infer_congestion(
            self.instance.topology,
            self.instance.correlation,
            observations,
            options=self.options,
            registry=self.registry,
        )
        return result.congestion_probabilities.astype(np.float64, copy=False)

    def evaluate(self, observations, *, seed=0) -> WhatIfResult:
        """Infer the current state, then forecast every shift.

        ``seed`` feeds one independent child stream per shift into the
        Monte Carlo fallback, so results are reproducible regardless of
        how many shifts run or which evaluator each one picks.
        """
        current = self.infer_current(observations)
        shift_seeds = spawn_children(seed, len(self.shifts))
        risks = []
        for shift, shift_seed in zip(self.shifts, shift_seeds):
            prediction = self.model.predict(
                self.resolved,
                self.resolved.rates_under(shift),
                seed=shift_seed,
                cache=self.cache,
            )
            combined = 1.0 - (1.0 - current) * (1.0 - prediction.probability)
            risks.append(
                ShiftRisk(
                    name=shift.name,
                    scale=shift.scale,
                    predicted=prediction.probability,
                    combined=combined,
                    expected_utilization=prediction.expected_utilization,
                    ranking=risk_ranking(combined),
                    method=prediction.method,
                )
            )
        return WhatIfResult(current=current, shifts=tuple(risks))
