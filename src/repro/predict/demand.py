"""Demand matrices: named flows mapped onto topology paths.

A demand matrix is the projected-traffic half of a what-if question:
named flows with offered rates, each bound to a set of candidate paths —
either an explicit ECMP split set (path names or ids) or an
``src``/``dst`` endpoint pair resolved against the topology's routed
paths.  Under ECMP each flow lands on exactly one of its candidates,
chosen uniformly and independently; the congestion model in
:mod:`repro.predict.model` turns that uncertainty into per-link
exceedance probabilities.

Payloads are plain JSON dicts (the shape the CLI reads from
``--demand`` files and the service accepts in ``/whatif`` queries), and
:meth:`DemandMatrix.fingerprint` is the content hash that keys cached
predictions — any rate, split, capacity, or shift perturbation changes
it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.io import canonical_json

__all__ = [
    "Flow",
    "DemandShift",
    "DemandMatrix",
    "ResolvedDemand",
]


def _check_rate(value, label: str) -> float:
    try:
        rate = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{label} must be a number, got {value!r}") from None
    if not np.isfinite(rate) or rate < 0:
        raise ValueError(f"{label} must be finite and >= 0, got {rate!r}")
    return rate


@dataclass(frozen=True, slots=True)
class Flow:
    """One named traffic flow.

    Attributes:
        name: Unique flow label (referenced by shift overrides).
        rate: Offered load in capacity units.
        src: Source node label (endpoint binding; ``None`` when the
            flow names explicit paths).
        dst: Destination node label.
        paths: Explicit ECMP split set — path names (str) or dense path
            ids (int); ``None`` when the flow binds by endpoints.
    """

    name: str
    rate: float
    src: str | None = None
    dst: str | None = None
    paths: tuple[str | int, ...] | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"flow name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "rate", _check_rate(self.rate, f"flow {self.name!r} rate"))
        by_endpoints = self.src is not None or self.dst is not None
        by_paths = self.paths is not None
        if by_endpoints and by_paths:
            raise ValueError(
                f"flow {self.name!r} must bind by endpoints or by explicit "
                "paths, not both"
            )
        if by_endpoints and (self.src is None or self.dst is None):
            raise ValueError(f"flow {self.name!r} needs both 'src' and 'dst'")
        if by_paths and not self.paths:
            raise ValueError(f"flow {self.name!r} has an empty path split set")
        if not by_endpoints and not by_paths:
            raise ValueError(
                f"flow {self.name!r} must name either src/dst endpoints or "
                "an explicit 'paths' split set"
            )

    @classmethod
    def from_payload(cls, payload: dict) -> "Flow":
        if not isinstance(payload, dict):
            raise ValueError(f"flow must be an object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - {"name", "rate", "src", "dst", "paths"})
        if unknown:
            raise ValueError(f"unknown flow field(s) {unknown}")
        paths = payload.get("paths")
        if paths is not None:
            if not isinstance(paths, (list, tuple)):
                raise ValueError(
                    f"flow {payload.get('name')!r}: 'paths' must be a list"
                )
            for entry in paths:
                if not isinstance(entry, (str, int)) or isinstance(entry, bool):
                    raise ValueError(
                        f"flow {payload.get('name')!r}: path references must "
                        f"be names or integer ids, got {entry!r}"
                    )
            paths = tuple(paths)
        return cls(
            name=payload.get("name", ""),
            rate=payload.get("rate"),
            src=payload.get("src"),
            dst=payload.get("dst"),
            paths=paths,
        )

    def to_payload(self) -> dict:
        payload: dict = {"name": self.name, "rate": self.rate}
        if self.paths is not None:
            payload["paths"] = list(self.paths)
        else:
            payload["src"] = self.src
            payload["dst"] = self.dst
        return payload


@dataclass(frozen=True, slots=True)
class DemandShift:
    """A named multiplicative perturbation of the demand.

    ``scale`` multiplies every flow; ``flow_scales`` adds per-flow
    multipliers on top (``(flow name, factor)`` pairs).  The identity
    shift (scale 1.0, no overrides) is the baseline prediction.
    """

    name: str
    scale: float = 1.0
    flow_scales: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"shift name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "scale", _check_rate(self.scale, f"shift {self.name!r} scale"))
        seen = set()
        for flow_name, factor in self.flow_scales:
            if flow_name in seen:
                raise ValueError(f"shift {self.name!r} scales flow {flow_name!r} twice")
            seen.add(flow_name)
            _check_rate(factor, f"shift {self.name!r} factor for {flow_name!r}")

    @classmethod
    def from_payload(cls, payload: dict) -> "DemandShift":
        if not isinstance(payload, dict):
            raise ValueError(f"shift must be an object, got {type(payload).__name__}")
        unknown = sorted(set(payload) - {"name", "scale", "flows"})
        if unknown:
            raise ValueError(f"unknown shift field(s) {unknown}")
        flows = payload.get("flows") or {}
        if not isinstance(flows, dict):
            raise ValueError(
                f"shift {payload.get('name')!r}: 'flows' must map flow "
                "names to factors"
            )
        return cls(
            name=payload.get("name", ""),
            scale=payload.get("scale", 1.0),
            flow_scales=tuple(
                (str(flow), float(factor)) for flow, factor in sorted(flows.items())
            ),
        )

    def to_payload(self) -> dict:
        payload: dict = {"name": self.name, "scale": self.scale}
        if self.flow_scales:
            payload["flows"] = dict(self.flow_scales)
        return payload

    def factor(self, flow_name: str) -> float:
        return self.scale * dict(self.flow_scales).get(flow_name, 1.0)


@dataclass(frozen=True, slots=True)
class DemandMatrix:
    """Flows + link capacities + optional named shifts.

    ``capacities`` maps link names to capacity; links not named fall
    back to ``default_capacity``.  Flow order is significant — it fixes
    the Monte Carlo sampling order — so two matrices with the same flows
    in different order fingerprint differently on purpose.
    """

    flows: tuple[Flow, ...]
    default_capacity: float = 1.0
    capacities: tuple[tuple[str, float], ...] = ()
    shifts: tuple[DemandShift, ...] = ()

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("demand matrix needs at least one flow")
        names = [flow.name for flow in self.flows]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate flow name(s) {dupes}")
        capacity = _check_rate(self.default_capacity, "default capacity")
        if capacity <= 0:
            raise ValueError(f"default capacity must be > 0, got {capacity}")
        object.__setattr__(self, "default_capacity", capacity)
        seen = set()
        for link_name, value in self.capacities:
            if link_name in seen:
                raise ValueError(f"capacity for link {link_name!r} given twice")
            seen.add(link_name)
            if _check_rate(value, f"capacity of link {link_name!r}") <= 0:
                raise ValueError(f"capacity of link {link_name!r} must be > 0")
        shift_names = [shift.name for shift in self.shifts]
        if len(set(shift_names)) != len(shift_names):
            raise ValueError(f"duplicate shift name(s) in {shift_names}")

    @classmethod
    def from_payload(cls, payload: dict) -> "DemandMatrix":
        if not isinstance(payload, dict):
            raise ValueError(
                f"demand matrix must be an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - {"flows", "capacities", "shifts"})
        if unknown:
            raise ValueError(f"unknown demand field(s) {unknown}")
        flows_payload = payload.get("flows")
        if not isinstance(flows_payload, list) or not flows_payload:
            raise ValueError("'flows' must be a non-empty list of flow objects")
        capacities = payload.get("capacities") or {}
        if not isinstance(capacities, dict):
            raise ValueError("'capacities' must be an object")
        cap_unknown = sorted(set(capacities) - {"default", "links"})
        if cap_unknown:
            raise ValueError(f"unknown capacities field(s) {cap_unknown}")
        links = capacities.get("links") or {}
        if not isinstance(links, dict):
            raise ValueError("'capacities.links' must map link names to numbers")
        shifts_payload = payload.get("shifts") or []
        if not isinstance(shifts_payload, list):
            raise ValueError("'shifts' must be a list of shift objects")
        return cls(
            flows=tuple(Flow.from_payload(flow) for flow in flows_payload),
            default_capacity=capacities.get("default", 1.0),
            capacities=tuple(
                (str(name), float(value)) for name, value in sorted(links.items())
            ),
            shifts=tuple(
                DemandShift.from_payload(shift) for shift in shifts_payload
            ),
        )

    def to_payload(self) -> dict:
        payload: dict = {
            "flows": [flow.to_payload() for flow in self.flows],
            "capacities": {"default": self.default_capacity},
        }
        if self.capacities:
            payload["capacities"]["links"] = dict(self.capacities)
        if self.shifts:
            payload["shifts"] = [shift.to_payload() for shift in self.shifts]
        return payload

    def fingerprint(self) -> str:
        """Content hash over the canonical payload.

        Any perturbation — a rate, a split set, a capacity, a shift —
        produces a different fingerprint, which is what keys cached
        predictions apart.
        """
        digest = hashlib.sha256(canonical_json(self.to_payload()).encode())
        return digest.hexdigest()

    def shift(self, name: str) -> DemandShift:
        for shift in self.shifts:
            if shift.name == name:
                return shift
        raise KeyError(f"no shift named {name!r}")

    def resolve(self, topology) -> "ResolvedDemand":
        """Bind every flow to concrete path ids on ``topology``.

        Explicit path references resolve by name or dense id; endpoint
        pairs resolve to *all* routed paths between the endpoints (the
        ECMP split set).  Unknown paths, out-of-range ids, and endpoint
        pairs with no routed path all fail loudly.
        """
        n_paths = topology.n_paths
        endpoints = [
            (
                topology.links[path.link_ids[0]].src,
                topology.links[path.link_ids[-1]].dst,
            )
            for path in topology.paths
        ]
        candidates: list[tuple[int, ...]] = []
        for flow in self.flows:
            if flow.paths is not None:
                ids = []
                for ref in flow.paths:
                    if isinstance(ref, int):
                        if not 0 <= ref < n_paths:
                            raise ValueError(
                                f"flow {flow.name!r}: path id {ref} outside "
                                f"0..{n_paths - 1}"
                            )
                        ids.append(ref)
                    else:
                        try:
                            ids.append(topology.path(ref).id)
                        except KeyError:
                            raise ValueError(
                                f"flow {flow.name!r}: no path named {ref!r}"
                            ) from None
                resolved = tuple(sorted(set(ids)))
            else:
                resolved = tuple(
                    path.id
                    for path, (src, dst) in zip(topology.paths, endpoints)
                    if str(src) == str(flow.src) and str(dst) == str(flow.dst)
                )
                if not resolved:
                    raise ValueError(
                        f"flow {flow.name!r}: no routed path from "
                        f"{flow.src!r} to {flow.dst!r}"
                    )
            candidates.append(resolved)

        n_links = topology.n_links
        incidences = []
        for split in candidates:
            incidence = np.zeros((len(split), n_links), dtype=np.float64)
            for row, path_id in enumerate(split):
                incidence[row, list(topology.paths[path_id].link_ids)] = 1.0
            incidence.flags.writeable = False
            incidences.append(incidence)

        capacity_by_name = dict(self.capacities)
        unknown_links = sorted(
            set(capacity_by_name) - {link.name for link in topology.links}
        )
        if unknown_links:
            raise ValueError(f"capacities name unknown link(s) {unknown_links}")
        capacities = np.array(
            [
                capacity_by_name.get(link.name, self.default_capacity)
                for link in topology.links
            ],
            dtype=np.float64,
        )
        capacities.flags.writeable = False
        rates = np.array([flow.rate for flow in self.flows], dtype=np.float64)
        rates.flags.writeable = False
        return ResolvedDemand(
            demand=self,
            candidates=tuple(candidates),
            incidences=tuple(incidences),
            capacities=capacities,
            rates=rates,
        )


@dataclass(frozen=True, slots=True)
class ResolvedDemand:
    """A demand matrix bound to one topology.

    Attributes:
        demand: The source matrix.
        candidates: Per flow, the sorted tuple of candidate path ids.
        incidences: Per flow, the ``(n_candidates, n_links)`` 0/1
            path→link incidence (read-only float64).
        capacities: Per-link capacity vector.
        rates: Baseline per-flow rate vector.
    """

    demand: DemandMatrix
    candidates: tuple[tuple[int, ...], ...]
    incidences: tuple[np.ndarray, ...]
    capacities: np.ndarray
    rates: np.ndarray = field(repr=False)

    @property
    def n_flows(self) -> int:
        return len(self.candidates)

    @property
    def n_links(self) -> int:
        return int(self.capacities.size)

    def rates_under(self, shift: DemandShift) -> np.ndarray:
        """Per-flow rates after applying ``shift``."""
        return np.array(
            [
                flow.rate * shift.factor(flow.name)
                for flow in self.demand.flows
            ],
            dtype=np.float64,
        )

    def membership(self) -> np.ndarray:
        """``(n_flows, n_links)`` probability that a flow crosses a link.

        Under uniform ECMP this is the fraction of the flow's candidate
        paths using the link — exactly 0.0 / 1.0 for links off / on
        every candidate.
        """
        return np.stack(
            [incidence.mean(axis=0) for incidence in self.incidences]
        )

    def key_payload(self, rates: np.ndarray) -> dict:
        """The JSON content that identifies one prediction input.

        Everything the congestion model's answer depends on: the split
        sets, the (possibly shifted) rates, and the capacities.  Used by
        :meth:`repro.predict.model.CongestionModel.predict` to key the
        trial cache.
        """
        return {
            "candidates": [list(split) for split in self.candidates],
            "rates": [float(rate) for rate in rates],
            "capacities": [float(cap) for cap in self.capacities],
        }
