"""Per-link congestion probability under ECMP demand uncertainty.

Each flow lands on exactly one of its candidate paths, chosen uniformly
and independently (the ECMP hash).  A link congests when the offered
load across it exceeds ``utilization_threshold × capacity``.  Three
evaluators share that definition:

- :func:`exceedance_exact` — the production path for small flow sets: a
  memoized recursion over the flows crossing each link (the problib
  ``SNonCongestionProbability`` idea re-derived for heterogeneous
  rates).  Per link, flow ``f`` crosses with probability ``p_f`` (the
  fraction of its candidates using the link); the recursion branches
  land/miss per flow, prunes subtrees that can no longer exceed the
  headroom, and memoizes on (flow index, remaining headroom) so equal
  partial loads collapse — the exponential naive enumeration becomes
  near-linear whenever rates repeat.
- :func:`exceedance_naive` — full enumeration of the joint flow→path
  assignment space (problib's ``ExactCongestionProbability`` shape).
  Kept as the benchmark baseline and the oracle the exact path is
  tested against.
- :func:`exceedance_sample` — seeded Monte Carlo over joint
  assignments, the fallback above the configurable flow-count
  threshold.

:class:`CongestionModel` picks the evaluator and memoizes whole
predictions through the existing :class:`repro.eval.cache.TrialCache`,
keyed on the demand content fingerprint (rates, splits, capacities,
model knobs, and — for Monte Carlo — the seed fingerprint).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

import numpy as np

from repro.io import canonical_json
from repro.predict.demand import ResolvedDemand
from repro.utils.rng import as_generator, clone_generator

__all__ = [
    "exceedance_exact",
    "exceedance_naive",
    "exceedance_sample",
    "expected_load",
    "Prediction",
    "CongestionModel",
]

#: Cache-key salt; bump when the prediction semantics change.
PREDICT_SALT = "predict-v1"


def _as_inputs(rates, incidences, limits):
    rates = np.asarray(rates, dtype=np.float64)
    limits = np.asarray(limits, dtype=np.float64)
    incidences = [np.asarray(inc, dtype=np.float64) for inc in incidences]
    if rates.ndim != 1 or len(incidences) != rates.size:
        raise ValueError(
            f"need one incidence matrix per rate; got {rates.size} rates "
            f"and {len(incidences)} matrices"
        )
    for index, incidence in enumerate(incidences):
        if incidence.ndim != 2 or incidence.shape[0] < 1:
            raise ValueError(
                f"incidence {index} must be (n_candidates, n_links), "
                f"got shape {incidence.shape}"
            )
        if incidence.shape[1] != limits.size:
            raise ValueError(
                f"incidence {index} covers {incidence.shape[1]} links, "
                f"limits cover {limits.size}"
            )
    return rates, incidences, limits


def _boundary(limits: np.ndarray) -> np.ndarray:
    # Loads exactly at the limit count as *not* congested.  The epsilon
    # absorbs summation-order float noise so the exact recursion, the
    # naive enumeration, and the sampler all agree at the boundary.
    return limits + 1e-9 * (1.0 + np.abs(limits))


def expected_load(rates, incidences) -> np.ndarray:
    """Mean per-link load: ``sum_f rate_f × P(f crosses link)``."""
    rates = np.asarray(rates, dtype=np.float64)
    membership = np.stack(
        [np.asarray(inc, dtype=np.float64).mean(axis=0) for inc in incidences]
    )
    return rates @ membership


def _link_exceed(rates: tuple, probs: tuple, headroom: float, memo: dict) -> float:
    """P(sum of independent Bernoulli-weighted rates > headroom).

    ``rates``/``probs`` hold only the genuinely uncertain flows (0 < p
    < 1) for one link, sorted by descending rate so pruning bites
    early.  ``headroom`` already accounts for deterministic flows.
    """
    suffix = np.concatenate([np.cumsum(rates[::-1])[::-1], [0.0]])

    def solve(index: int, headroom: float) -> float:
        if headroom < 0.0:
            return 1.0
        if suffix[index] <= headroom:
            return 0.0
        key = (index, round(headroom, 12))
        cached = memo.get(key)
        if cached is not None:
            return cached
        rate, prob = rates[index], probs[index]
        value = prob * solve(index + 1, headroom - rate) + (1.0 - prob) * solve(
            index + 1, headroom
        )
        memo[key] = value
        return value

    return solve(0, headroom)


def exceedance_exact(rates, incidences, limits) -> np.ndarray:
    """Exact per-link exceedance probabilities via memoized recursion."""
    rates, incidences, limits = _as_inputs(rates, incidences, limits)
    membership = (
        np.stack([inc.mean(axis=0) for inc in incidences])
        if incidences
        else np.zeros((0, limits.size))
    )
    boundary = _boundary(limits)
    out = np.empty(limits.size, dtype=np.float64)
    for link in range(limits.size):
        headroom = float(boundary[link])
        uncertain = []
        for flow in range(rates.size):
            prob = float(membership[flow, link])
            if prob == 0.0 or rates[flow] == 0.0:
                continue
            if prob == 1.0:
                headroom -= float(rates[flow])
            else:
                uncertain.append((float(rates[flow]), prob))
        if headroom < 0.0:
            out[link] = 1.0
            continue
        uncertain.sort(key=lambda pair: (-pair[0], pair[1]))
        out[link] = _link_exceed(
            tuple(rate for rate, _ in uncertain),
            tuple(prob for _, prob in uncertain),
            headroom,
            {},
        )
    return out


def exceedance_naive(rates, incidences, limits) -> np.ndarray:
    """Full joint enumeration over every flow→path assignment.

    Cost is ``prod_f n_candidates(f)`` states — the baseline the
    memoized recursion is benchmarked against, and the oracle it is
    tested against.
    """
    rates, incidences, limits = _as_inputs(rates, incidences, limits)
    boundary = _boundary(limits)
    counts = [incidence.shape[0] for incidence in incidences]
    total = int(np.prod(counts)) if counts else 1
    exceeded = np.zeros(limits.size, dtype=np.float64)
    for choice in itertools.product(*[range(count) for count in counts]):
        load = np.zeros(limits.size, dtype=np.float64)
        for flow, candidate in enumerate(choice):
            load += rates[flow] * incidences[flow][candidate]
        exceeded += load > boundary
    return exceeded / total


def exceedance_sample(
    rates, incidences, limits, *, rng, n_samples: int
) -> np.ndarray:
    """Seeded Monte Carlo estimate over joint assignments.

    Draws one uniform candidate index per flow per sample, in flow
    order, from ``rng`` — so a given generator state fixes the
    estimate bit for bit.
    """
    rates, incidences, limits = _as_inputs(rates, incidences, limits)
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = as_generator(rng)
    load = np.zeros((n_samples, limits.size), dtype=np.float64)
    for flow, incidence in enumerate(incidences):
        choices = rng.integers(0, incidence.shape[0], size=n_samples)
        load += rates[flow] * incidence[choices]
    return (load > _boundary(limits)).mean(axis=0)


@dataclass(frozen=True, slots=True)
class Prediction:
    """One demand's per-link congestion forecast.

    Attributes:
        probability: P(load exceeds threshold × capacity) per link.
        expected_load: Mean load per link.
        expected_utilization: Mean load / capacity per link.
        method: ``"exact"`` or ``"monte-carlo"``.
        cached: Whether the vectors came from the trial cache.
    """

    probability: np.ndarray
    expected_load: np.ndarray
    expected_utilization: np.ndarray
    method: str
    cached: bool = False


class CongestionModel:
    """Pick an evaluator and memoize predictions through a TrialCache.

    Args:
        utilization_threshold: A link counts as congested when its load
            exceeds this fraction of capacity (0.85 = the proactive
            alert level of the predictor snippets).
        exact_max_flows: Flow sets up to this size use the exact
            memoized recursion; larger sets fall back to Monte Carlo.
        mc_samples: Sample count for the fallback.
    """

    def __init__(
        self,
        *,
        utilization_threshold: float = 0.85,
        exact_max_flows: int = 16,
        mc_samples: int = 20_000,
    ) -> None:
        if not 0 < utilization_threshold:
            raise ValueError(
                f"utilization_threshold must be > 0, got {utilization_threshold}"
            )
        if exact_max_flows < 0:
            raise ValueError(
                f"exact_max_flows must be >= 0, got {exact_max_flows}"
            )
        if mc_samples < 1:
            raise ValueError(f"mc_samples must be >= 1, got {mc_samples}")
        self.utilization_threshold = float(utilization_threshold)
        self.exact_max_flows = int(exact_max_flows)
        self.mc_samples = int(mc_samples)

    def method_for(self, n_flows: int) -> str:
        return "exact" if n_flows <= self.exact_max_flows else "monte-carlo"

    def _key(self, resolved: ResolvedDemand, rates, method: str, seed) -> str:
        from repro.eval.cache import seed_fingerprint

        content = {
            "salt": PREDICT_SALT,
            "demand": resolved.key_payload(rates),
            "utilization_threshold": self.utilization_threshold,
            "method": method,
            "mc": (
                {
                    "n_samples": self.mc_samples,
                    "seed": seed_fingerprint(seed),
                }
                if method == "monte-carlo"
                else None
            ),
        }
        return hashlib.sha256(canonical_json(content).encode()).hexdigest()

    def predict(
        self,
        resolved: ResolvedDemand,
        rates=None,
        *,
        seed=0,
        cache=None,
    ) -> Prediction:
        """Per-link congestion probabilities for one (shifted) demand.

        Args:
            resolved: A demand bound to a topology.
            rates: Per-flow rate override (a shift's scaled rates);
                defaults to the matrix's baseline rates.
            seed: Seed-like for the Monte Carlo fallback; part of the
                cache key there, ignored by the exact path.
            cache: Optional :class:`repro.eval.cache.TrialCache`; hits
                skip the enumeration entirely.
        """
        rates = (
            resolved.rates
            if rates is None
            else np.asarray(rates, dtype=np.float64)
        )
        if rates.shape != resolved.rates.shape:
            raise ValueError(
                f"rates must have shape {resolved.rates.shape}, "
                f"got {rates.shape}"
            )
        method = self.method_for(resolved.n_flows)
        limits = self.utilization_threshold * resolved.capacities
        key = None
        if cache is not None:
            key = self._key(resolved, rates, method, seed)
            stored = cache.get(key)
            if stored is not None:
                return Prediction(
                    probability=stored["probability"],
                    expected_load=stored["expected_load"],
                    expected_utilization=(
                        stored["expected_load"] / resolved.capacities
                    ),
                    method=method,
                    cached=True,
                )
        if method == "exact":
            probability = exceedance_exact(rates, resolved.incidences, limits)
        else:
            rng = as_generator(clone_generator(seed))
            probability = exceedance_sample(
                rates,
                resolved.incidences,
                limits,
                rng=rng,
                n_samples=self.mc_samples,
            )
        mean_load = expected_load(rates, resolved.incidences)
        if cache is not None:
            cache.put(
                key,
                {"probability": probability, "expected_load": mean_load},
            )
        return Prediction(
            probability=probability,
            expected_load=mean_load,
            expected_utilization=mean_load / resolved.capacities,
            method=method,
            cached=False,
        )
