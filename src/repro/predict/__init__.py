"""Predictive what-if layer: congestion probability under traffic shifts.

The tomography pipeline answers "which links are congested *now*"; this
package answers "which links *will* congest if this traffic shifts".  A
:class:`~repro.predict.demand.DemandMatrix` maps named flows (rates plus
endpoints or explicit ECMP split sets) onto topology paths, a
:class:`~repro.predict.model.CongestionModel` turns a demand into
per-link congestion probabilities — exact memoized enumeration for small
flow sets, seeded Monte Carlo above a configurable threshold — and a
:class:`~repro.predict.scenario.WhatIfScenario` chains inference (what
the probes say about the network now) with prediction (what a projected
demand shift would do to it), ranking links by combined risk.

Everything composes with the existing engine: what-if trials are
ordinary :class:`~repro.eval.parallel.ScenarioTask` records executed via
the dotted runner spec :data:`repro.predict.tasks.WHATIF_RUNNER`, so the
sweep caches, journals, distributes, and serves exactly like the batch
figures — the ``predict`` CLI command and the service ``/whatif``
endpoint are bit-identical by construction.
"""

from repro.predict.demand import DemandMatrix, DemandShift, Flow, ResolvedDemand
from repro.predict.model import CongestionModel, Prediction
from repro.predict.scenario import ShiftRisk, WhatIfResult, WhatIfScenario
from repro.predict.tasks import WHATIF_RUNNER, run_whatif_task

__all__ = [
    "DemandMatrix",
    "DemandShift",
    "Flow",
    "ResolvedDemand",
    "CongestionModel",
    "Prediction",
    "ShiftRisk",
    "WhatIfResult",
    "WhatIfScenario",
    "WHATIF_RUNNER",
    "run_whatif_task",
]
