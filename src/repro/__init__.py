"""repro — reproduction of *Network Tomography on Correlated Links*.

Ghita, Argyraki, Thiran — ACM IMC 2010.

The package infers per-link congestion probabilities from end-to-end path
measurements when links may be *correlated* within known correlation sets.

Quickstart::

    from repro import (
        CorrelationStructure, infer_congestion, run_experiment,
    )
    from repro.topogen import fig_1a
    from repro.model import NetworkCongestionModel, ExplicitJointModel

    instance = fig_1a()                       # the paper's toy topology
    ...                                        # see examples/quickstart.py

Subpackages:

* :mod:`repro.core` — topology model, identifiability, the theorem
  algorithm, the practical correlation algorithm, baselines.
* :mod:`repro.model` — correlated congestion models and the loss model.
* :mod:`repro.simulate` — snapshot simulator, estimators, exact oracle.
* :mod:`repro.topogen` — Brite-style, PlanetLab-style, and toy topologies.
* :mod:`repro.eval` — metrics and the Figure 3/4/5 experiment drivers.
"""

from repro.core import (
    AlgorithmOptions,
    CongestionFactors,
    CorrelationStructure,
    CorrelationTomography,
    IdentifiabilityReport,
    InferenceResult,
    Link,
    Path,
    StreamingTomography,
    TheoremAlgorithm,
    TheoremResult,
    Topology,
    TopologyBuilder,
    WindowVerdict,
    check_assumption4,
    infer_congestion,
    infer_congestion_independent,
    infer_congestion_single_path,
    localize_map,
    localize_smallest_set,
    merge_indistinguishable_links,
    transform_until_identifiable,
)
from repro.exceptions import (
    CorrelationError,
    GenerationError,
    IdentifiabilityError,
    MeasurementError,
    ModelError,
    ReproError,
    SolverError,
    TopologyError,
)
from repro.io import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.simulate import (
    ExactPathStateDistribution,
    ExperimentConfig,
    LinkStateTimeline,
    PathObservations,
    ProbeWindow,
    SimulationRun,
    SnapshotStream,
    StreamEvent,
    run_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core data model
    "Link",
    "Path",
    "Topology",
    "TopologyBuilder",
    "CorrelationStructure",
    # identifiability & transforms
    "IdentifiabilityReport",
    "check_assumption4",
    "merge_indistinguishable_links",
    "transform_until_identifiable",
    # inference
    "TheoremAlgorithm",
    "TheoremResult",
    "CongestionFactors",
    "AlgorithmOptions",
    "CorrelationTomography",
    "infer_congestion",
    "infer_congestion_independent",
    "infer_congestion_single_path",
    "InferenceResult",
    "StreamingTomography",
    "WindowVerdict",
    "localize_map",
    "localize_smallest_set",
    # simulation
    "ExperimentConfig",
    "SimulationRun",
    "run_experiment",
    "PathObservations",
    "ExactPathStateDistribution",
    "SnapshotStream",
    "ProbeWindow",
    "StreamEvent",
    "LinkStateTimeline",
    # io
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    # exceptions
    "ReproError",
    "TopologyError",
    "CorrelationError",
    "IdentifiabilityError",
    "MeasurementError",
    "SolverError",
    "ModelError",
    "GenerationError",
]
