"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch library-specific failures with a single ``except`` clause while
letting programming errors (``TypeError``, ``ValueError`` from misuse of the
standard library, ...) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class TopologyError(ReproError):
    """A topology violates a structural invariant.

    Raised, for example, when a path revisits a link (the paper's model
    forbids loops), when a path references an unknown link, or when a link
    participates in no path (the paper's model forbids unused links).
    """


class CorrelationError(ReproError):
    """A correlation structure is inconsistent with its topology.

    Raised when the proposed correlation sets do not partition the link set,
    reference unknown links, or contain duplicates.
    """


class IdentifiabilityError(ReproError):
    """Assumption 4 (identifiability) is violated where it is required.

    The exact theorem algorithm refuses to run on instances where two
    correlation subsets cover the same set of paths, because its induction
    is no longer well defined.  The *practical* algorithm never raises this;
    it degrades gracefully as the paper describes in Section 5.
    """

    def __init__(self, message: str, colliding_subsets=None):
        super().__init__(message)
        #: Pairs of frozensets of link ids found to cover identical path
        #: sets, when the checker collected them (may be ``None``).
        self.colliding_subsets = colliding_subsets


class MeasurementError(ReproError):
    """End-to-end measurements are missing or unusable.

    Raised when an estimator is asked for a probability it cannot provide,
    e.g. a joint path-good probability for paths never observed together.
    """


class SimulationError(ReproError):
    """A simulation stream or scripted timeline is mis-specified.

    Raised when a :class:`~repro.simulate.stream.StreamEvent` is malformed
    (unknown kind, empty link set, inverted activity interval) or a
    timeline references links outside the model's topology.
    """


class SolverError(ReproError):
    """The linear-system solver failed to produce a usable solution."""


class ModelError(ReproError):
    """A congestion model is mis-specified.

    Raised when probabilities do not sum to one, a subset distribution
    references links outside its correlation set, or a model cannot
    enumerate its support but was asked to.
    """


class GenerationError(ReproError):
    """A topology generator could not satisfy its constraints.

    Raised, for example, when a requested number of paths cannot be realised
    on the generated graph, or a scenario cannot reach the requested fraction
    of unidentifiable links.
    """


class DistSecurityError(ReproError):
    """A distributed-sweep connection was refused on security grounds.

    Raised when the wire-security layer of :mod:`repro.eval.dist` fails
    closed: a shared-secret handshake that does not verify, a secret
    configured on only one side of a connection, or a TLS/plaintext
    mismatch between coordinator and worker.  The message is operator
    guidance, not a stack of transport internals — the CLI prints it as
    a one-line error instead of a traceback.

    Defined here (rather than in :mod:`repro.eval.dist`) so the CLI can
    catch it without importing the distributed backend and its heavy
    dependencies up front.
    """
