"""Command-line interface: regenerate the paper's experiments.

Examples::

    repro-tomography demo
    repro-tomography figure3 --scale small --seed 0
    repro-tomography figure3-cdf --level loose
    repro-tomography figure4 --topology planetlab --fraction 0.5
    repro-tomography figure5 --topology brite --fraction 0.25
    repro-tomography figure3 --cache-dir ~/.repro-cache --cache-stats

Every subcommand prints the same rows/series the paper plots (see
EXPERIMENTS.md for the recorded outputs).

Figure commands support the persistent trial-result cache
(:mod:`repro.eval.cache`):

* ``--cache-dir PATH`` — store/load per-trial results under ``PATH``;
  repeated invocations (and overlapping sweeps sharing the store) only
  compute trials they have not seen.  The ``REPRO_CACHE_DIR``
  environment variable supplies a default.
* ``--no-cache`` — disable caching even when ``REPRO_CACHE_DIR`` is set.
* ``--cache-stats`` — print the hit/miss/store line after the run.

Caching never changes figure data: cached and recomputed runs are
bit-identical at a fixed seed.

``--workers`` defaults to the ``REPRO_WORKERS`` environment variable
(``1`` = serial, ``0`` = one worker per CPU core), falling back to
serial when unset.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tomography",
        description=(
            "Reproduction of 'Network Tomography on Correlated Links' "
            "(Ghita, Argyraki, Thiran - IMC 2010)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="top-level RNG seed"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser(
        "demo", help="run the Figure-1(a) worked example end to end"
    )
    demo.add_argument(
        "--snapshots", type=int, default=4000, help="simulated rounds"
    )

    fig3 = commands.add_parser(
        "figure3", help="Figures 3(a,b): error vs congested fraction"
    )
    _common_figure_arguments(fig3)
    _workers_argument(fig3)

    fig3cdf = commands.add_parser(
        "figure3-cdf", help="Figures 3(c,d): error CDF at 10% congestion"
    )
    _common_figure_arguments(fig3cdf)
    _workers_argument(fig3cdf)
    fig3cdf.add_argument(
        "--level",
        choices=("high", "loose"),
        default="high",
        help="correlation level (3(c)=high, 3(d)=loose)",
    )

    fig4 = commands.add_parser(
        "figure4", help="Figure 4: unidentifiable links"
    )
    _common_figure_arguments(fig4)
    _workers_argument(fig4)
    fig4.add_argument(
        "--topology", choices=("brite", "planetlab"), default="brite"
    )
    fig4.add_argument(
        "--fraction",
        type=float,
        default=0.25,
        help="fraction of congested links that are unidentifiable",
    )

    fig5 = commands.add_parser(
        "figure5", help="Figure 5: mislabeled links (unknown patterns)"
    )
    _common_figure_arguments(fig5)
    _workers_argument(fig5)
    fig5.add_argument(
        "--topology", choices=("brite", "planetlab"), default="brite"
    )
    fig5.add_argument(
        "--fraction",
        type=float,
        default=0.25,
        help="fraction of congested links targeted by the hidden flood",
    )

    tomographer = commands.add_parser(
        "tomographer",
        help=(
            "the paper's 'Ongoing Work': uncorrelated vs correlated "
            "tomographer variants under indirect validation"
        ),
    )
    _common_figure_arguments(tomographer)
    tomographer.add_argument(
        "--topology", choices=("brite", "planetlab"), default="planetlab"
    )
    return parser


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = one per CPU core), got {value}"
        )
    return value


def _common_figure_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "paper"),
        default="small",
        help="instance/simulation size preset",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1,
        help="experiments pooled per data point",
    )


def _workers_argument(parser: argparse.ArgumentParser) -> None:
    """Only figure commands fan out through the scenario engine; the
    tomographer runs one fixed pair of experiments."""
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        help=(
            "worker processes for the scenario fan-out "
            "(1 = serial, 0 = one per CPU core; default: the "
            "REPRO_WORKERS env var, else serial); any value reproduces "
            "the serial results exactly for a given seed"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persistent trial-result cache directory (default: the "
            "REPRO_CACHE_DIR env var, else caching off); repeated runs "
            "only compute trials not already stored"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache even if REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss/store counts after the run",
    )


def _make_cache(args):
    """Build the TrialCache requested by the cache flags (or None)."""
    from repro.eval.cache import TrialCache, resolve_cache_dir

    directory = resolve_cache_dir(
        args.cache_dir, disabled=args.no_cache
    )
    return TrialCache(directory) if directory is not None else None


def _print_cache_stats(args, cache) -> None:
    if not args.cache_stats:
        return
    if cache is None:
        print("cache: disabled (no --cache-dir and REPRO_CACHE_DIR unset)")
    else:
        print(cache.stats_line())


def _run_demo(args) -> int:
    from repro import (
        ExperimentConfig,
        TheoremAlgorithm,
        infer_congestion,
        infer_congestion_independent,
        run_experiment,
    )
    from repro.model import (
        ExplicitJointModel,
        IndependentModel,
        NetworkCongestionModel,
    )
    from repro.topogen import fig_1a
    from repro.utils.tables import format_table

    instance = fig_1a()
    topology = instance.topology
    e1, e2, e3, e4 = (
        topology.link(n).id for n in ("e1", "e2", "e3", "e4")
    )
    model = NetworkCongestionModel(
        instance.correlation,
        [
            ExplicitJointModel(
                frozenset({e1, e2}),
                {
                    frozenset({e1}): 0.05,
                    frozenset({e2}): 0.05,
                    frozenset({e1, e2}): 0.20,
                },
            ),
            IndependentModel({e3: 0.3}),
            IndependentModel({e4: 0.15}),
        ],
    )
    truth = model.link_marginals()
    run = run_experiment(
        topology,
        model,
        config=ExperimentConfig(n_snapshots=args.snapshots),
        seed=args.seed,
    )
    correlation_result = infer_congestion(
        topology, instance.correlation, run.observations
    )
    independence_result = infer_congestion_independent(
        topology, run.observations
    )
    theorem_result = TheoremAlgorithm(
        topology, instance.correlation
    ).identify(run.observations)
    rows = []
    for link in topology.links:
        rows.append(
            [
                link.name,
                truth[link.id],
                correlation_result.probability(link.id),
                independence_result.probability(link.id),
                theorem_result.link_marginals[link.id],
            ]
        )
    print(
        format_table(
            ["link", "true P", "correlation", "independence", "theorem"],
            rows,
            title=(
                f"Figure 1(a) demo — {args.snapshots} snapshots, "
                f"seed {args.seed}"
            ),
        )
    )
    return 0


def _run_figure3(args) -> int:
    from repro.eval import figure3_sweep, render_sweep

    cache = _make_cache(args)
    result = figure3_sweep(
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
    )
    print(render_sweep(result))
    _print_cache_stats(args, cache)
    return 0


def _run_figure3_cdf(args) -> int:
    from repro.eval import figure3_cdf, render_cdf

    cache = _make_cache(args)
    result = figure3_cdf(
        correlation_level=args.level,
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
    )
    panel = "3(c)" if args.level == "high" else "3(d)"
    print(render_cdf(result, title=f"Figure {panel} — {args.level}"))
    _print_cache_stats(args, cache)
    return 0


def _run_figure4(args) -> int:
    from repro.eval import figure4_cdf, render_cdf

    cache = _make_cache(args)
    result = figure4_cdf(
        topology=args.topology,
        unidentifiable_fraction=args.fraction,
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
    )
    print(
        render_cdf(
            result,
            title=(
                f"Figure 4 — {args.topology}, "
                f"{args.fraction:.0%} unidentifiable"
            ),
        )
    )
    _print_cache_stats(args, cache)
    return 0


def _run_figure5(args) -> int:
    from repro.eval import figure5_cdf, render_cdf

    cache = _make_cache(args)
    result = figure5_cdf(
        topology=args.topology,
        mislabeled_fraction=args.fraction,
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
    )
    print(
        render_cdf(
            result,
            title=(
                f"Figure 5 — {args.topology}, "
                f"{args.fraction:.0%} mislabeled"
            ),
        )
    )
    _print_cache_stats(args, cache)
    return 0


def _run_tomographer(args) -> int:
    from repro.eval import (
        default_config,
        default_instance,
        make_clustered_scenario,
        run_tomographer,
    )
    from repro.simulate import run_experiment
    from repro.utils.rng import spawn_children
    from repro.utils.tables import format_table

    instance = default_instance(
        args.topology, scale=args.scale, seed=args.seed
    )
    scenario_rng, train_rng, holdout_rng = spawn_children(args.seed, 3)
    scenario = make_clustered_scenario(
        instance, congested_fraction=0.10, seed=scenario_rng
    )
    config = default_config(args.scale)
    training = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=config,
        seed=train_rng,
    )
    holdout = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=config,
        seed=holdout_rng,
    )
    comparison = run_tomographer(
        instance.topology,
        instance.correlation,
        training.observations,
        holdout.observations,
    )
    print(
        format_table(
            ["variant", "mean path err", "mean err (corr-free paths)"],
            [
                [
                    "(i) all links uncorrelated",
                    comparison.uncorrelated_validation.mean_error,
                    comparison.uncorrelated_validation.mean_error_correlation_free,
                ],
                [
                    "(ii) cluster-correlated",
                    comparison.correlated_validation.mean_error,
                    comparison.correlated_validation.mean_error_correlation_free,
                ],
            ],
            title=(
                f"Tomographer indirect validation — {args.topology}, "
                f"scale={args.scale}"
            ),
        )
    )
    winner = "(ii)" if comparison.correlated_wins else "(i)"
    print(f"indirect validation prefers variant {winner}")
    return 0


_HANDLERS = {
    "demo": _run_demo,
    "figure3": _run_figure3,
    "figure3-cdf": _run_figure3_cdf,
    "figure4": _run_figure4,
    "figure5": _run_figure5,
    "tomographer": _run_tomographer,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
