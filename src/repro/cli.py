"""Command-line interface: regenerate the paper's experiments.

Examples::

    repro-tomography demo
    repro-tomography figure3 --scale small --seed 0
    repro-tomography figure3-cdf --level loose
    repro-tomography figure4 --topology planetlab --fraction 0.5
    repro-tomography figure5 --topology brite --fraction 0.25
    repro-tomography figure3 --cache-dir ~/.repro-cache --cache-stats
    repro-tomography stream --simulate --n-windows 10 --window-size 40
    repro-tomography --version

``stream`` drives the incremental windowed engine
(:mod:`repro.core.streaming`) over probe windows read from a JSONL
file/stdin or generated on the fly (``--simulate``, optionally with a
scripted ``--events`` timeline).  Each window prints one verdict-delta
line (onsets/clears vs the previous window); the last line is the
full-history result, bit-identical to ``--mode batch`` — one cold
inference over the same concatenated snapshots — so

    diff <(repro-tomography stream ... | tail -n 1) \\
         <(repro-tomography stream ... --mode batch)

is the streaming correctness check.

Every subcommand prints the same rows/series the paper plots (see
EXPERIMENTS.md for the recorded outputs).

Figure commands support the persistent trial-result cache
(:mod:`repro.eval.cache`):

* ``--cache-dir PATH`` — store/load per-trial results under ``PATH``;
  repeated invocations (and overlapping sweeps sharing the store) only
  compute trials they have not seen.  The ``REPRO_CACHE_DIR``
  environment variable supplies a default.
* ``--no-cache`` — disable caching even when ``REPRO_CACHE_DIR`` is set.
* ``--cache-stats`` — print the hit/miss/store line after the run.

Caching never changes figure data: cached and recomputed runs are
bit-identical at a fixed seed.

``--workers`` defaults to the ``REPRO_WORKERS`` environment variable
(``1`` = serial, ``0`` = one worker per CPU core), falling back to
serial when unset.

Figure commands also pick an execution backend
(:mod:`repro.eval.dist`):

* ``--backend {serial,local,remote}`` — serial in-process execution, a
  process pool on this host, or a coordinator fanning chunks out to
  workers on other machines.  Defaults to serial/local based on
  ``--workers``; ``--hosts`` or ``--launch`` alone implies ``remote``.
* ``--hosts [user@]a:7100,b:7100`` — worker endpoints for the remote
  backend (the ``REPRO_HOSTS`` environment variable supplies a
  default).  Workers are started by hand, by CI, over SSH, or — see
  ``--launch`` — by the coordinator itself::

      ssh host repro-tomography worker --bind 0.0.0.0 --port 7100

* ``--launch {local,ssh}`` — the coordinator launches its own workers
  and tears them down when the sweep ends (even on failure; a killed
  coordinator takes its workers with it via a stdin lifeline).
  ``local`` spawns ``--launch-workers`` subprocesses on this host
  (single-host fan-out, no hand-starting); ``ssh`` runs one worker per
  ``--hosts`` entry over SSH.  ``--launch-capacity`` sets the
  capacities the launched workers advertise.

Workers advertise a *capacity* (parallel chunk slots, CPU count by
default for the CLI worker; ``--capacity`` overrides) during the
protocol handshake, and the coordinator sizes each worker's chunk
pipeline proportionally, so a fast 8-core box pulls more of the sweep
than a 2-core one instead of the slowest host gating every figure.

Every backend is bit-identical to the serial run at a fixed seed; a
worker that dies mid-sweep only costs the chunks it was computing (the
coordinator requeues them on the survivors).

Wire generations: current coordinators and workers negotiate the
protocol-v4 schema'd binary codec (pickle-free in both directions) and,
for same-host sessions, a shared-memory data plane; ``--wire-version``
pins the generation and ``--transport`` the data plane, while older
peers interoperate automatically on the legacy pickled frames
(``worker --protocol-max 3`` serves exactly the pre-v4 wire).

Fault tolerance (remote backend): connects retry with jittered
exponential backoff (``--connect-attempts``); hung-but-connected
workers are detected by heartbeat (``--heartbeat-interval``) or a hard
per-chunk budget (``--chunk-deadline``) and their chunks requeued; and
``--on-fleet-loss serial`` finishes a sweep in-process when every
worker is gone.  ``--journal PATH`` appends each settled chunk to a
crash-safe journal so a coordinator killed mid-sweep completes with
``--resume`` without recomputing settled work; ``--dist-stats`` prints
the sweep's fault/transport counters.  None of this changes figure
data — every recovery path is bit-identical at a fixed seed.

``repro-tomography worker`` runs one worker process: it listens for a
coordinator, receives the instance/config once per sweep, and serves
task chunks.  Give workers a shared ``--cache-dir`` (e.g. on NFS) and
they serve cache hits without compute and persist misses as chunks
complete.

Wire security (both the ``worker`` and the figure commands):

* ``--secret-file PATH`` (or ``REPRO_DIST_SECRET``) arms the protocol
  v3 shared-secret handshake: every connection must prove knowledge of
  the token (HMAC challenge/response, mutual, replay-proof) before any
  payload byte is read, and unauthenticated peers are refused with a
  clean error.  There is deliberately no ``--secret VALUE`` flag —
  argv is world-readable.  Workers launched over SSH read the token
  from stdin (``--secret-stdin``).
* ``--tls-cert/--tls-key/--tls-ca`` (or ``REPRO_DIST_TLS_*``) wrap the
  wire in TLS: workers serve their cert/key (``--tls-ca`` on a worker
  additionally demands client certificates), coordinators verify
  workers against ``--tls-ca``.  ``repro.eval.dist.certs.
  generate_self_signed()`` mints a development/CI cert whose
  ``cert.pem`` doubles as the CA file.

Security never changes figure data: secured sweeps stay bit-identical
to serial runs at a fixed seed.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.eval.dist.journal import JournalError
from repro.exceptions import DistSecurityError

__all__ = ["main", "build_parser"]


def _version_string() -> str:
    """Package, wire-protocol, and journal-format versions in one line.

    Operators pin fleets by these: mixed-version coordinators/workers
    negotiate by the wire protocol number, and ``--resume`` refuses
    journals written by a different journal format.
    """
    from repro import __version__
    from repro.eval.dist.journal import JOURNAL_VERSION, MAGIC
    from repro.eval.dist.protocol import PROTOCOL_VERSION

    return (
        f"repro-tomography {__version__} "
        f"(wire protocol v{PROTOCOL_VERSION}, "
        f"journal format v{JOURNAL_VERSION} [{MAGIC.decode('ascii')}])"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tomography",
        description=(
            "Reproduction of 'Network Tomography on Correlated Links' "
            "(Ghita, Argyraki, Thiran - IMC 2010)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="top-level RNG seed"
    )
    parser.add_argument(
        "--version",
        action="version",
        version=_version_string(),
        help="print package, wire-protocol, and journal-format versions",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser(
        "demo", help="run the Figure-1(a) worked example end to end"
    )
    demo.add_argument(
        "--snapshots", type=int, default=4000, help="simulated rounds"
    )

    fig3 = commands.add_parser(
        "figure3", help="Figures 3(a,b): error vs congested fraction"
    )
    _common_figure_arguments(fig3)
    _workers_argument(fig3)

    fig3cdf = commands.add_parser(
        "figure3-cdf", help="Figures 3(c,d): error CDF at 10% congestion"
    )
    _common_figure_arguments(fig3cdf)
    _workers_argument(fig3cdf)
    fig3cdf.add_argument(
        "--level",
        choices=("high", "loose"),
        default="high",
        help="correlation level (3(c)=high, 3(d)=loose)",
    )

    fig4 = commands.add_parser(
        "figure4", help="Figure 4: unidentifiable links"
    )
    _common_figure_arguments(fig4)
    _workers_argument(fig4)
    fig4.add_argument(
        "--topology", choices=("brite", "planetlab"), default="brite"
    )
    fig4.add_argument(
        "--fraction",
        type=float,
        default=0.25,
        help="fraction of congested links that are unidentifiable",
    )

    fig5 = commands.add_parser(
        "figure5", help="Figure 5: mislabeled links (unknown patterns)"
    )
    _common_figure_arguments(fig5)
    _workers_argument(fig5)
    fig5.add_argument(
        "--topology", choices=("brite", "planetlab"), default="brite"
    )
    fig5.add_argument(
        "--fraction",
        type=float,
        default=0.25,
        help="fraction of congested links targeted by the hidden flood",
    )

    worker = commands.add_parser(
        "worker",
        help=(
            "run a distributed-sweep worker: listen for a coordinator "
            "(a figure command with --backend remote) and serve task "
            "chunks"
        ),
    )
    worker.add_argument(
        "--bind",
        default="127.0.0.1",
        metavar="HOST",
        help=(
            "interface to listen on (default loopback; use a private "
            "interface on trusted clusters — the protocol carries "
            "pickles and must not face untrusted networks)"
        ),
    )
    worker.add_argument(
        "--port",
        type=_port_number,
        default=0,
        help="TCP port (default 0 = ephemeral, printed on startup)",
    )
    worker.add_argument(
        "--capacity",
        type=_worker_capacity,
        default=0,
        metavar="N",
        help=(
            "parallel chunk slots advertised to the coordinator; "
            "chunks execute on a process pool of this size "
            "(default 0 = one slot per CPU core)"
        ),
    )
    worker.add_argument(
        "--protocol-max",
        type=int,
        default=None,
        metavar="V",
        help=(
            "highest wire protocol version to negotiate (default: the "
            "library's latest); pin to 3 to serve the legacy pickled "
            "wire in mixed-version fleets"
        ),
    )
    worker.add_argument(
        "--exit-on-stdin-close",
        action="store_true",
        help=(
            "exit when stdin reaches EOF — launchers hold a pipe to "
            "the worker as a lifeline, so a dead coordinator (even "
            "SIGKILLed) takes its autolaunched workers with it"
        ),
    )
    worker.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "trial cache consulted before executing and written back "
            "as tasks complete (default: REPRO_CACHE_DIR, else off); "
            "point every worker at one shared store to share results"
        ),
    )
    worker.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache even if REPRO_CACHE_DIR is set",
    )
    worker.add_argument(
        "--max-sessions",
        type=int,
        default=None,
        metavar="N",
        help="exit after serving N coordinator sessions (default: serve "
        "forever)",
    )
    worker.add_argument(
        "--fail-after-chunks",
        type=int,
        default=None,
        metavar="N",
        help=argparse.SUPPRESS,  # fault-injection hook for tests/benchmarks
    )
    worker.add_argument(
        "--throttle",
        type=_throttle_seconds,
        default=0.0,
        metavar="SECONDS",
        help=argparse.SUPPRESS,  # latency-injection hook for benchmarks
    )
    worker.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help=(
            "chaos-injection plan for this worker process, e.g. "
            "'frame-corrupt:type=result:nth=2,worker-kill:chunk=5' "
            "(default: the REPRO_CHAOS env var, else off); see "
            "repro.eval.dist.faults for the fault vocabulary — every "
            "fault is detected or fatal, never silently wrong results"
        ),
    )
    _add_security_arguments(worker, role="worker")
    worker.add_argument(
        "--secret-stdin",
        action="store_true",
        help=(
            "read the shared secret as the first line of stdin — how "
            "SSH launchers deliver the token without exposing it on "
            "any command line"
        ),
    )

    tomographer = commands.add_parser(
        "tomographer",
        help=(
            "the paper's 'Ongoing Work': uncorrelated vs correlated "
            "tomographer variants under indirect validation"
        ),
    )
    _common_figure_arguments(tomographer)
    tomographer.add_argument(
        "--topology", choices=("brite", "planetlab"), default="planetlab"
    )

    serve = commands.add_parser(
        "serve",
        help=(
            "run the resident tomography service: load topologies once, "
            "answer localization/identifiability queries over HTTP with "
            "warm equation prep and per-topology request batching"
        ),
    )
    serve.add_argument(
        "--bind",
        default="127.0.0.1",
        metavar="HOST",
        help="interface to listen on (default loopback)",
    )
    serve.add_argument(
        "--port",
        type=_port_number,
        default=0,
        help="TCP port (default 0 = ephemeral, printed on startup)",
    )
    serve.add_argument(
        "--max-topologies",
        type=_numeric_flag("max-topologies", int, minimum=1, hint=">= 1"),
        default=4,
        metavar="N",
        help="topology-store capacity (loads beyond it return 409)",
    )
    serve.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help=(
            "engine workers per query batch (1 = in-process serial, "
            "0 = one per CPU core via a local pool)"
        ),
    )
    serve.add_argument(
        "--batch-max",
        type=_numeric_flag("batch-max", int, minimum=1, hint=">= 1"),
        default=8,
        metavar="N",
        help="largest coalesced query batch per topology",
    )
    serve.add_argument(
        "--flush-interval",
        type=_numeric_flag(
            "flush-interval", float, minimum=0, hint=">= 0 seconds"
        ),
        default=0.005,
        metavar="SECONDS",
        help="how long a non-full batch waits for stragglers",
    )
    serve.add_argument(
        "--max-pending",
        type=_numeric_flag("max-pending", int, minimum=1, hint=">= 1"),
        default=64,
        metavar="N",
        help=(
            "bounded per-topology queue; submissions beyond it are shed "
            "with 429 (backpressure)"
        ),
    )
    serve.add_argument(
        "--preload",
        action="append",
        default=None,
        metavar="JSON",
        help=(
            "generator spec to load before accepting traffic, e.g. "
            "\'{\"kind\": \"brite\", \"n_ases\": 40, \"seed\": 7}\' "
            "(repeatable)"
        ),
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "trial cache shared with batch runs (default: REPRO_CACHE_DIR, "
            "else off); repeated identical queries then load from disk"
        ),
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache even if REPRO_CACHE_DIR is set",
    )

    localize = commands.add_parser(
        "localize",
        help=(
            "run one localization/identifiability query as a cold batch "
            "job and print its canonical JSON result — the reference the "
            "service must match bit for bit"
        ),
    )
    _instance_arguments(localize)
    localize.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="query seed (overrides the top-level --seed)",
    )
    localize.add_argument(
        "--kind",
        choices=("localization", "identifiability"),
        default="localization",
    )
    localize.add_argument(
        "--congested-fraction", type=float, default=0.10
    )
    localize.add_argument(
        "--per-set-range",
        choices=("high", "loose"),
        default="high",
        help="congestion clustering preset (Figure-3 vocabulary)",
    )
    localize.add_argument(
        "--n-snapshots", type=int, default=120, help="simulated rounds"
    )
    localize.add_argument(
        "--packets-per-path",
        type=int,
        default=400,
        help="probe budget per path per round (0 = infinite traffic)",
    )
    localize.add_argument(
        "--loc-snapshots",
        type=int,
        default=8,
        help="snapshots localized and scored",
    )
    localize.add_argument(
        "--max-nodes",
        type=int,
        default=20_000,
        help="branch-and-bound budget per snapshot",
    )
    localize.add_argument(
        "--max-subset-size",
        type=int,
        default=2,
        help="identifiability queries: subset enumeration bound",
    )
    localize.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        help="engine workers (1 = serial; default REPRO_WORKERS)",
    )
    localize.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="trial cache (default: REPRO_CACHE_DIR, else off)",
    )
    localize.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache even if REPRO_CACHE_DIR is set",
    )

    stream = commands.add_parser(
        "stream",
        help=(
            "run the incremental windowed estimator over a stream of "
            "probe windows (JSONL file, stdin, or a simulated stream); "
            "prints one verdict-delta line per window, then the "
            "full-history final line — bit-identical to --mode batch "
            "over the same snapshots"
        ),
    )
    _instance_arguments(stream)
    source = stream.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--windows",
        default=None,
        metavar="PATH",
        help=(
            "JSONL window source: one window per line, each a "
            "snapshot × path matrix of 0/1 path verdicts ('-' = stdin)"
        ),
    )
    source.add_argument(
        "--simulate",
        action="store_true",
        help=(
            "generate the window stream instead of reading it: a "
            "clustered congestion scenario driven through "
            "SnapshotStream (see --n-windows/--window-size/--events)"
        ),
    )
    stream.add_argument(
        "--mode",
        choices=("incremental", "batch"),
        default="incremental",
        help=(
            "incremental = per-window updates through the streaming "
            "engine; batch = one cold inference over the concatenated "
            "windows; both print the identical final line"
        ),
    )
    stream.add_argument(
        "--threshold",
        type=_numeric_flag(
            "threshold", float, minimum=0.0, maximum=1.0, hint="in [0, 1]"
        ),
        default=0.5,
        help="congestion-probability verdict threshold",
    )
    stream.add_argument(
        "--max-window",
        type=_numeric_flag("max-window", int, minimum=1, hint=">= 1"),
        default=None,
        metavar="N",
        help=(
            "incremental only: bound the sliding window to the last N "
            "snapshots (older rows are evicted; the final line then "
            "covers the surviving rows, not full history)"
        ),
    )
    stream.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-window delta lines; print only the final line",
    )
    stream.add_argument(
        "--n-windows",
        type=_numeric_flag("n-windows", int, minimum=1, hint=">= 1"),
        default=10,
        metavar="N",
        help="--simulate: windows to generate",
    )
    stream.add_argument(
        "--window-size",
        type=_numeric_flag("window-size", int, minimum=1, hint=">= 1"),
        default=50,
        metavar="N",
        help="--simulate: snapshots per window (the probe rate)",
    )
    stream.add_argument(
        "--packets-per-path",
        type=int,
        default=400,
        help=(
            "--simulate: probe budget per path per snapshot "
            "(0 = infinite traffic)"
        ),
    )
    stream.add_argument(
        "--congested-fraction",
        type=float,
        default=0.10,
        help="--simulate: fraction of links congested in the scenario",
    )
    stream.add_argument(
        "--per-set-range",
        choices=("high", "loose"),
        default="high",
        help="--simulate: congestion clustering preset",
    )
    stream.add_argument(
        "--events",
        default=None,
        metavar="JSON",
        help=(
            "--simulate: scripted link-state timeline, e.g. "
            "'[{\"kind\": \"onset\", \"at\": 100, \"links\": [3]}]' "
            "(kinds: onset, clear, flap)"
        ),
    )
    stream.add_argument(
        "--save-windows",
        default=None,
        metavar="PATH",
        help="also write the consumed windows as JSONL (for replay)",
    )

    predict = commands.add_parser(
        "predict",
        help=(
            "what-if forecast: infer current link state from simulated "
            "probe observations, then rank links by congestion risk "
            "under named demand shifts (JSON demand-matrix file) — the "
            "batch reference the service /whatif endpoint must match "
            "bit for bit"
        ),
    )
    _instance_arguments(predict)
    predict.add_argument(
        "--seed",
        type=int,
        default=argparse.SUPPRESS,
        help="query seed (overrides the top-level --seed)",
    )
    predict.add_argument(
        "--demand",
        required=True,
        metavar="PATH",
        help=(
            "demand-matrix JSON file ('-' = stdin): flows (rate plus "
            "src/dst endpoints or an explicit ECMP 'paths' split set), "
            "link capacities, and optional named shifts"
        ),
    )
    predict.add_argument(
        "--shift",
        action="append",
        default=None,
        metavar="NAME:SCALE",
        help=(
            "override a named shift's global scale, or add a new "
            "uniform shift (repeatable), e.g. --shift surge:1.5"
        ),
    )
    predict.add_argument(
        "--congested-fraction",
        type=float,
        default=0.10,
        help="simulated scenario: fraction of links congested",
    )
    predict.add_argument(
        "--per-set-range",
        choices=("high", "loose"),
        default="high",
        help="congestion clustering preset (Figure-3 vocabulary)",
    )
    predict.add_argument(
        "--n-snapshots",
        type=int,
        default=120,
        help="simulated probe rounds feeding the inference step",
    )
    predict.add_argument(
        "--packets-per-path",
        type=int,
        default=400,
        help="probe budget per path per round (0 = infinite traffic)",
    )
    predict.add_argument(
        "--utilization-threshold",
        type=_numeric_flag(
            "utilization-threshold",
            float,
            minimum=1e-9,
            hint="> 0",
        ),
        default=0.85,
        help="a link congests when load exceeds this fraction of capacity",
    )
    predict.add_argument(
        "--exact-max-flows",
        type=_numeric_flag("exact-max-flows", int, minimum=0, hint=">= 0"),
        default=16,
        help=(
            "largest flow set forecast by exact memoized enumeration; "
            "bigger demands fall back to seeded Monte Carlo"
        ),
    )
    predict.add_argument(
        "--mc-samples",
        type=_numeric_flag("mc-samples", int, minimum=1, hint=">= 1"),
        default=20_000,
        help="Monte Carlo fallback sample count",
    )
    predict.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help=(
            "table = ranked links per shift; json = the canonical "
            "result document (byte-comparable to the service answer)"
        ),
    )
    predict.add_argument(
        "--top",
        type=_numeric_flag("top", int, minimum=1, hint=">= 1"),
        default=10,
        metavar="N",
        help="table rows per shift",
    )
    predict.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        help="engine workers (1 = serial; default REPRO_WORKERS)",
    )
    predict.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="trial cache (default: REPRO_CACHE_DIR, else off)",
    )
    predict.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache even if REPRO_CACHE_DIR is set",
    )
    return parser


def _instance_arguments(parser: argparse.ArgumentParser) -> None:
    """Instance-selection flags shared by ``localize`` and ``stream``."""
    parser.add_argument(
        "--topology", choices=("brite", "planetlab"), default="brite"
    )
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "paper"),
        default="small",
        help="instance size preset",
    )
    parser.add_argument(
        "--instance-seed",
        type=int,
        default=0,
        help="seed of the generated instance (not of the query/stream)",
    )
    parser.add_argument(
        "--generator",
        default=None,
        metavar="JSON",
        help=(
            "explicit generator spec overriding --topology/--scale/"
            "--instance-seed; the same JSON a service client posts, so "
            "both sides provably query the identical instance"
        ),
    )


def _numeric_flag(name, parse, *, minimum=None, maximum=None, hint):
    """Build an argparse validator for a bounded numeric flag."""

    def validate(text: str):
        try:
            value = parse(text)
        except ValueError:
            kind = "an integer" if parse is int else "a number"
            raise argparse.ArgumentTypeError(
                f"{name} must be {kind}, got {text!r}"
            ) from None
        if (minimum is not None and value < minimum) or (
            maximum is not None and value > maximum
        ):
            raise argparse.ArgumentTypeError(
                f"{name} must be {hint}, got {value}"
            )
        return value

    return validate


_worker_count = _numeric_flag(
    "workers", int, minimum=0, hint=">= 0 (0 = one per CPU core)"
)
_port_number = _numeric_flag(
    "port",
    int,
    minimum=0,
    maximum=65535,
    hint="in [0, 65535] (0 = ephemeral)",
)
_worker_capacity = _numeric_flag(
    "capacity", int, minimum=0, hint=">= 0 (0 = one slot per CPU core)"
)
_throttle_seconds = _numeric_flag(
    "throttle", float, minimum=0, hint=">= 0 seconds"
)
_heartbeat_seconds = _numeric_flag(
    "heartbeat-interval",
    float,
    minimum=0,
    hint=">= 0 seconds (0 = disabled)",
)
_deadline_seconds = _numeric_flag(
    "chunk-deadline",
    float,
    minimum=0,
    hint=">= 0 seconds (0 = no deadline)",
)
_connect_attempts = _numeric_flag(
    "connect-attempts", int, minimum=1, hint=">= 1"
)


def _common_figure_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=("small", "medium", "paper"),
        default="small",
        help="instance/simulation size preset",
    )
    parser.add_argument(
        "--trials",
        type=int,
        default=1,
        help="experiments pooled per data point",
    )


def _workers_argument(parser: argparse.ArgumentParser) -> None:
    """Only figure commands fan out through the scenario engine; the
    tomographer runs one fixed pair of experiments."""
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        help=(
            "worker processes for the scenario fan-out "
            "(1 = serial, 0 = one per CPU core; default: the "
            "REPRO_WORKERS env var, else serial); any value reproduces "
            "the serial results exactly for a given seed"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persistent trial-result cache directory (default: the "
            "REPRO_CACHE_DIR env var, else caching off); repeated runs "
            "only compute trials not already stored"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the trial cache even if REPRO_CACHE_DIR is set",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print cache hit/miss/store counts after the run",
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "local", "remote"),
        default=None,
        help=(
            "execution backend (default: serial or local per --workers; "
            "--hosts implies remote); all backends produce bit-identical "
            "figures at a fixed seed"
        ),
    )
    parser.add_argument(
        "--hosts",
        default=None,
        metavar="[USER@]HOST:PORT[,...]",
        help=(
            "worker endpoints for the remote backend, e.g. "
            "'a:7100,b:7100' (default: the REPRO_HOSTS env var); start "
            "workers with the 'worker' subcommand or let the "
            "coordinator start them with --launch ssh"
        ),
    )
    parser.add_argument(
        "--straggler-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "remote backend only: speculatively re-run a chunk "
            "outstanding longer than this on an idle worker (first "
            "result wins; results unchanged)"
        ),
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "socket"),
        default="auto",
        help=(
            "remote backend only: data plane for protocol-v4 sessions "
            "— 'auto' (default) uses shared memory for same-host "
            "workers and the socket elsewhere, 'shm' offers shared "
            "memory to every v4 worker, 'socket' never does; results "
            "are bit-identical either way"
        ),
    )
    parser.add_argument(
        "--wire-version",
        type=int,
        choices=(3, 4),
        default=None,
        help=(
            "remote backend only: pin the wire generation — 3 forces "
            "the legacy pickled frames, 4 requires the schema'd "
            "binary codec (default: negotiate the best per worker)"
        ),
    )
    parser.add_argument(
        "--launch",
        choices=("local", "ssh"),
        default=None,
        help=(
            "remote backend only: autolaunch the workers and tear them "
            "down when the sweep ends — 'local' spawns "
            "--launch-workers subprocesses on this host, 'ssh' runs "
            "one worker per --hosts entry over SSH"
        ),
    )
    parser.add_argument(
        "--launch-workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "number of workers --launch local spawns (default 2; "
            "the --launch ssh fleet comes from --hosts instead)"
        ),
    )
    parser.add_argument(
        "--launch-capacity",
        default=None,
        metavar="C[,C...]",
        help=(
            "capacities for autolaunched workers (one value per "
            "worker, or a single value for all; default: 1 each for "
            "--launch local, the remote CPU count for --launch ssh)"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "append each settled chunk to a crash-safe sweep journal "
            "at PATH (fsync'd per chunk); a run killed mid-sweep can "
            "be completed with --resume without recomputing settled "
            "work"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay settled chunks from --journal before computing "
            "(refused if the journal belongs to a different sweep); "
            "the finished figure is bit-identical to an uninterrupted "
            "run"
        ),
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=_heartbeat_seconds,
        default=None,
        metavar="SECONDS",
        help=(
            "remote backend only: liveness heartbeat interval — a "
            "worker silent for 1.5x this is declared unresponsive and "
            "its chunks requeued (detection within 2x; default 15, "
            "0 disables)"
        ),
    )
    parser.add_argument(
        "--chunk-deadline",
        type=_deadline_seconds,
        default=None,
        metavar="SECONDS",
        help=(
            "remote backend only: hard per-chunk budget — a worker "
            "that keeps heartbeating but never finishes a chunk "
            "within this is dropped and its chunks requeued "
            "(default: no deadline)"
        ),
    )
    parser.add_argument(
        "--connect-attempts",
        type=_connect_attempts,
        default=None,
        metavar="N",
        help=(
            "remote backend only: connect/handshake attempts per "
            "worker with jittered exponential backoff between them "
            "(default 3; security refusals never retry)"
        ),
    )
    parser.add_argument(
        "--on-fleet-loss",
        choices=("fail", "serial"),
        default=None,
        help=(
            "remote backend only: when every worker is lost mid-sweep, "
            "'fail' (default) reports the losses, 'serial' finishes "
            "the remaining chunks in-process (bit-identical, just "
            "slower)"
        ),
    )
    parser.add_argument(
        "--dist-stats",
        action="store_true",
        help=(
            "remote backend only: print the sweep's fault/transport "
            "counters (sessions, retries, losses, heartbeat/deadline "
            "timeouts, requeued chunks, shm inline fallbacks) after "
            "the run"
        ),
    )
    _add_security_arguments(parser, role="coordinator")


def _add_security_arguments(parser, *, role: str) -> None:
    """Wire-security flags shared by the worker and figure commands.

    The secret is taken from a *file* (or the ``REPRO_DIST_SECRET``
    environment variable) — never a bare ``--secret VALUE`` flag, which
    would put the token in the process table and shell history.
    """
    if role == "worker":
        cert_help = (
            "serve TLS with this certificate (PEM; needs --tls-key); "
            "plaintext coordinators are refused"
        )
        ca_help = (
            "require coordinator client certificates chaining to this "
            "CA (mutual TLS)"
        )
    else:
        cert_help = (
            "client certificate presented to mutual-TLS workers "
            "(PEM; needs --tls-key); with --launch, also the "
            "certificate the autolaunched workers serve"
        )
        ca_help = (
            "CA file the workers' TLS certificates must chain to "
            "(for a self-signed fleet, the cert.pem itself)"
        )
    parser.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help=(
            "file holding the shared secret (first line) for the "
            "authenticated (v3) wire protocol; default: the "
            "REPRO_DIST_SECRET environment variable, else "
            "authentication off"
        ),
    )
    parser.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help=cert_help + " (default: REPRO_DIST_TLS_CERT)",
    )
    parser.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help=(
            "private key for --tls-cert "
            "(default: REPRO_DIST_TLS_KEY)"
        ),
    )
    parser.add_argument(
        "--tls-ca",
        default=None,
        metavar="PEM",
        help=ca_help + " (default: REPRO_DIST_TLS_CA)",
    )


def _parse_launch_capacities(text):
    """Split --launch-capacity into ints; launchers validate the rest.

    The broadcast / one-per-worker / ``>= 1`` rules live in the
    launcher constructors (the single source of those semantics); a
    single value is passed as a scalar so they broadcast it.
    """
    if text is None:
        return None
    try:
        values = [
            int(piece) for piece in str(text).split(",") if piece.strip()
        ]
    except ValueError:
        raise SystemExit(
            f"error: --launch-capacity must be a comma-separated list "
            f"of integers, got {text!r}"
        ) from None
    if not values:
        raise SystemExit(
            f"error: --launch-capacity must name at least one "
            f"capacity, got {text!r}"
        )
    return values[0] if len(values) == 1 else values


def _resolve_tls_paths(args):
    """(cert, key, ca) from flags with REPRO_DIST_TLS_* env fallback."""
    cert = (
        args.tls_cert
        or os.environ.get("REPRO_DIST_TLS_CERT", "").strip()
        or None
    )
    key = (
        args.tls_key
        or os.environ.get("REPRO_DIST_TLS_KEY", "").strip()
        or None
    )
    ca = (
        args.tls_ca
        or os.environ.get("REPRO_DIST_TLS_CA", "").strip()
        or None
    )
    if (cert is None) != (key is None):
        raise SystemExit(
            "error: --tls-cert and --tls-key must be given together"
        )
    return cert, key, ca


def _resolve_secret_or_exit(args, *, stdin_secret=None):
    from repro.eval.dist.auth import resolve_secret

    if stdin_secret is not None:
        return stdin_secret
    try:
        return resolve_secret(args.secret_file)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: {exc}") from None


def _security_flags_requested(args) -> bool:
    """Did the user *explicitly* ask for wire security on this run?

    Environment variables are ambient fleet configuration and are
    ignored by non-remote backends; explicit flags on a backend that
    cannot honour them are an error, not a silent no-op.
    """
    return any(
        getattr(args, name, None) is not None
        for name in ("secret_file", "tls_cert", "tls_key", "tls_ca")
    )


def _robustness_flags_requested(args) -> bool:
    """Did the user set any remote-only robustness flag explicitly?"""
    if getattr(args, "dist_stats", False):
        return True
    return any(
        getattr(args, name, None) is not None
        for name in (
            "heartbeat_interval",
            "chunk_deadline",
            "connect_attempts",
            "on_fleet_loss",
        )
    )


def _robustness_kwargs(args) -> dict:
    """RemoteExecutor kwargs from the fault-tolerance flags.

    Unset flags are omitted so the executor's own defaults (15 s
    heartbeat, no deadline, 3 connect attempts, fail on fleet loss)
    stay the single source of truth; explicit zeros disable the
    corresponding timer.
    """
    kwargs: dict = {}
    heartbeat = getattr(args, "heartbeat_interval", None)
    if heartbeat is not None:
        kwargs["heartbeat_interval"] = heartbeat or None
    deadline = getattr(args, "chunk_deadline", None)
    if deadline is not None:
        kwargs["chunk_deadline"] = deadline or None
    attempts = getattr(args, "connect_attempts", None)
    if attempts is not None:
        kwargs["connect_attempts"] = attempts
    on_fleet_loss = getattr(args, "on_fleet_loss", None)
    if on_fleet_loss is not None:
        kwargs["on_fleet_loss"] = on_fleet_loss
    return kwargs


def _make_journal(args):
    """Build the SweepJournal requested by --journal/--resume (or None)."""
    path = getattr(args, "journal", None)
    if path is None:
        if getattr(args, "resume", False):
            raise SystemExit(
                "error: --resume needs --journal PATH (the journal the "
                "interrupted run was writing)"
            )
        return None
    from repro.eval.dist.journal import SweepJournal

    return SweepJournal(path, resume=getattr(args, "resume", False))


def _print_dist_stats(args, executor) -> None:
    if not getattr(args, "dist_stats", False):
        return
    stats = getattr(executor, "last_sweep_stats", None)
    if stats is None:
        print("dist: no remote sweep ran")
    else:
        print(stats.render())


def _make_client_security(args):
    """(secret, cert, key, ca, ssl_context) for a remote coordinator."""
    cert, key, ca = _resolve_tls_paths(args)
    secret = _resolve_secret_or_exit(args)
    ssl_context = None
    if cert is not None or ca is not None:
        from repro.eval.dist.certs import client_context

        try:
            ssl_context = client_context(
                cafile=ca, certfile=cert, keyfile=key
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"error: cannot load TLS material: {exc}"
            ) from None
    return secret, cert, key, ca, ssl_context


def _make_executor(args):
    """Build the executor requested by --backend/--hosts/--launch.

    ``None`` defers to the engine's legacy ``workers`` resolution
    (serial or a local process pool), keeping the historical flags
    working unchanged.
    """
    backend = args.backend
    hosts = args.hosts or os.environ.get("REPRO_HOSTS", "").strip() or None
    launch = getattr(args, "launch", None)
    if backend is None and (hosts is not None or launch is not None):
        backend = "remote"
    if launch is not None and backend != "remote":
        raise SystemExit(
            f"error: --launch only applies to --backend remote "
            f"(got --backend {backend})"
        )
    if launch is None and (
        getattr(args, "launch_workers", None) is not None
        or getattr(args, "launch_capacity", None) is not None
    ):
        # These flags configure the autolaunched fleet; accepting them
        # without --launch would silently hand the user the workers'
        # own defaults instead.
        raise SystemExit(
            "error: --launch-workers/--launch-capacity require "
            "--launch {local,ssh}"
        )
    if backend != "remote" and _security_flags_requested(args):
        # Serial and pooled execution never cross a network; asking
        # for wire security there is a configuration mistake the user
        # should hear about, not a silent no-op.
        raise SystemExit(
            "error: --secret-file/--tls-cert/--tls-key/--tls-ca only "
            "apply to --backend remote"
        )
    if backend != "remote" and _robustness_flags_requested(args):
        # Same policy: these tune a worker fleet that does not exist
        # on serial/pooled backends.
        raise SystemExit(
            "error: --heartbeat-interval/--chunk-deadline/"
            "--connect-attempts/--on-fleet-loss/--dist-stats only "
            "apply to --backend remote"
        )
    if backend is None:
        return None
    if backend == "serial":
        from repro.eval.parallel import SerialExecutor

        return SerialExecutor()
    if backend == "local":
        from repro.eval.parallel import LocalExecutor, resolve_workers

        workers = args.workers
        if workers is None and not os.environ.get(
            "REPRO_WORKERS", ""
        ).strip():
            # Asking for the pool backend without sizing it means "use
            # the machine": a 1-process pool would be strictly slower
            # than serial.
            workers = 0
        return LocalExecutor(resolve_workers(workers))
    from repro.eval.cache import resolve_cache_dir
    from repro.eval.dist import RemoteExecutor

    secret, tls_cert, tls_key, tls_ca, ssl_context = (
        _make_client_security(args)
    )
    if launch is None:
        if hosts is None:
            raise SystemExit(
                "error: --backend remote needs worker endpoints "
                "(--hosts or REPRO_HOSTS) or --launch"
            )
        return RemoteExecutor(
            _parse_hosts_or_exit(hosts),
            straggler_timeout=args.straggler_timeout,
            secret=secret,
            ssl_context=ssl_context,
            wire_version=getattr(args, "wire_version", None),
            transport=getattr(args, "transport", "auto"),
            **_robustness_kwargs(args),
        )
    if tls_ca is not None and tls_cert is None:
        # The coordinator would demand TLS from workers launched
        # without any TLS material: guaranteed mutual refusal.
        raise SystemExit(
            "error: --launch with --tls-ca needs --tls-cert/--tls-key "
            "for the launched workers to serve"
        )
    # Launched workers share the figure's trial store (for ssh, a path
    # valid on the remote hosts, e.g. NFS), so a killed sweep keeps
    # every trial any worker finished.
    cache_dir = resolve_cache_dir(args.cache_dir, disabled=args.no_cache)
    if launch == "local":
        from repro.eval.dist import LocalLauncher

        if hosts is not None:
            # Catch the env-supplied form too: REPRO_HOSTS configures a
            # fleet, and silently sweeping on localhost subprocesses
            # instead would be a surprising place to lose it.
            source = (
                "--hosts" if args.hosts is not None else "REPRO_HOSTS"
            )
            raise SystemExit(
                f"error: --launch local spawns its own workers on this "
                f"host; drop {source} (or use --launch ssh to start "
                f"workers on those hosts)"
            )
        n_workers = (
            args.launch_workers if args.launch_workers is not None else 2
        )
        if n_workers < 1:
            raise SystemExit(
                f"error: --launch-workers must be >= 1, got {n_workers}"
            )
        try:
            launcher = LocalLauncher(
                n_workers,
                capacities=_parse_launch_capacities(args.launch_capacity),
                cache_dir=cache_dir,
                secret=secret,
                tls_cert=tls_cert,
                tls_key=tls_key,
            )
        except ValueError as exc:
            raise SystemExit(
                f"error: --launch-capacity/--launch-workers: {exc}"
            ) from None
    else:  # launch == "ssh"
        from repro.eval.dist import SshLauncher

        if hosts is None:
            raise SystemExit(
                "error: --launch ssh needs the hosts to launch on "
                "(--hosts or REPRO_HOSTS)"
            )
        if args.launch_workers is not None:
            # Reject rather than silently launch a different fleet
            # size than the user asked for.
            raise SystemExit(
                "error: --launch-workers only applies to --launch "
                "local; the --launch ssh fleet is one worker per "
                "--hosts entry"
            )
        specs = _parse_hosts_or_exit(hosts)
        try:
            launcher = SshLauncher(
                specs,
                capacities=_parse_launch_capacities(args.launch_capacity),
                cache_dir=cache_dir,
                secret=secret,
                tls_cert=tls_cert,
                tls_key=tls_key,
            )
        except ValueError as exc:
            raise SystemExit(
                f"error: --launch-capacity: {exc}"
            ) from None
    return RemoteExecutor(
        launcher=launcher,
        straggler_timeout=args.straggler_timeout,
        secret=secret,
        ssl_context=ssl_context,
        wire_version=getattr(args, "wire_version", None),
        transport=getattr(args, "transport", "auto"),
        **_robustness_kwargs(args),
    )


def _parse_hosts_or_exit(hosts):
    """Validate a hosts spec early, as a CLI error rather than a trace."""
    from repro.eval.dist import parse_hosts

    try:
        return parse_hosts(hosts)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None


def _make_cache(args):
    """Build the TrialCache requested by the cache flags (or None)."""
    from repro.eval.cache import TrialCache, resolve_cache_dir

    directory = resolve_cache_dir(
        args.cache_dir, disabled=args.no_cache
    )
    return TrialCache(directory) if directory is not None else None


def _print_cache_stats(args, cache) -> None:
    if not args.cache_stats:
        return
    if cache is None:
        print("cache: disabled (no --cache-dir and REPRO_CACHE_DIR unset)")
    else:
        print(cache.stats_line())


def _run_demo(args) -> int:
    from repro import (
        ExperimentConfig,
        TheoremAlgorithm,
        infer_congestion,
        infer_congestion_independent,
        run_experiment,
    )
    from repro.model import (
        ExplicitJointModel,
        IndependentModel,
        NetworkCongestionModel,
    )
    from repro.topogen import fig_1a
    from repro.utils.tables import format_table

    instance = fig_1a()
    topology = instance.topology
    e1, e2, e3, e4 = (
        topology.link(n).id for n in ("e1", "e2", "e3", "e4")
    )
    model = NetworkCongestionModel(
        instance.correlation,
        [
            ExplicitJointModel(
                frozenset({e1, e2}),
                {
                    frozenset({e1}): 0.05,
                    frozenset({e2}): 0.05,
                    frozenset({e1, e2}): 0.20,
                },
            ),
            IndependentModel({e3: 0.3}),
            IndependentModel({e4: 0.15}),
        ],
    )
    truth = model.link_marginals()
    run = run_experiment(
        topology,
        model,
        config=ExperimentConfig(n_snapshots=args.snapshots),
        seed=args.seed,
    )
    correlation_result = infer_congestion(
        topology, instance.correlation, run.observations
    )
    independence_result = infer_congestion_independent(
        topology, run.observations
    )
    theorem_result = TheoremAlgorithm(
        topology, instance.correlation
    ).identify(run.observations)
    rows = []
    for link in topology.links:
        rows.append(
            [
                link.name,
                truth[link.id],
                correlation_result.probability(link.id),
                independence_result.probability(link.id),
                theorem_result.link_marginals[link.id],
            ]
        )
    print(
        format_table(
            ["link", "true P", "correlation", "independence", "theorem"],
            rows,
            title=(
                f"Figure 1(a) demo — {args.snapshots} snapshots, "
                f"seed {args.seed}"
            ),
        )
    )
    return 0


def _run_figure3(args) -> int:
    from repro.eval import figure3_sweep, render_sweep

    cache = _make_cache(args)
    executor = _make_executor(args)
    result = figure3_sweep(
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        executor=executor,
        journal=_make_journal(args),
    )
    print(render_sweep(result))
    _print_cache_stats(args, cache)
    _print_dist_stats(args, executor)
    return 0


def _run_figure3_cdf(args) -> int:
    from repro.eval import figure3_cdf, render_cdf

    cache = _make_cache(args)
    executor = _make_executor(args)
    result = figure3_cdf(
        correlation_level=args.level,
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        executor=executor,
        journal=_make_journal(args),
    )
    panel = "3(c)" if args.level == "high" else "3(d)"
    print(render_cdf(result, title=f"Figure {panel} — {args.level}"))
    _print_cache_stats(args, cache)
    _print_dist_stats(args, executor)
    return 0


def _run_figure4(args) -> int:
    from repro.eval import figure4_cdf, render_cdf

    cache = _make_cache(args)
    executor = _make_executor(args)
    result = figure4_cdf(
        topology=args.topology,
        unidentifiable_fraction=args.fraction,
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        executor=executor,
        journal=_make_journal(args),
    )
    print(
        render_cdf(
            result,
            title=(
                f"Figure 4 — {args.topology}, "
                f"{args.fraction:.0%} unidentifiable"
            ),
        )
    )
    _print_cache_stats(args, cache)
    _print_dist_stats(args, executor)
    return 0


def _run_figure5(args) -> int:
    from repro.eval import figure5_cdf, render_cdf

    cache = _make_cache(args)
    executor = _make_executor(args)
    result = figure5_cdf(
        topology=args.topology,
        mislabeled_fraction=args.fraction,
        scale=args.scale,
        n_trials=args.trials,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        executor=executor,
        journal=_make_journal(args),
    )
    print(
        render_cdf(
            result,
            title=(
                f"Figure 5 — {args.topology}, "
                f"{args.fraction:.0%} mislabeled"
            ),
        )
    )
    _print_cache_stats(args, cache)
    _print_dist_stats(args, executor)
    return 0


def _run_tomographer(args) -> int:
    from repro.eval import (
        default_config,
        default_instance,
        make_clustered_scenario,
        run_tomographer,
    )
    from repro.simulate import run_experiment
    from repro.utils.rng import spawn_children
    from repro.utils.tables import format_table

    instance = default_instance(
        args.topology, scale=args.scale, seed=args.seed
    )
    scenario_rng, train_rng, holdout_rng = spawn_children(args.seed, 3)
    scenario = make_clustered_scenario(
        instance, congested_fraction=0.10, seed=scenario_rng
    )
    config = default_config(args.scale)
    training = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=config,
        seed=train_rng,
    )
    holdout = run_experiment(
        instance.topology,
        scenario.truth_model,
        config=config,
        seed=holdout_rng,
    )
    comparison = run_tomographer(
        instance.topology,
        instance.correlation,
        training.observations,
        holdout.observations,
    )
    print(
        format_table(
            ["variant", "mean path err", "mean err (corr-free paths)"],
            [
                [
                    "(i) all links uncorrelated",
                    comparison.uncorrelated_validation.mean_error,
                    comparison.uncorrelated_validation.mean_error_correlation_free,
                ],
                [
                    "(ii) cluster-correlated",
                    comparison.correlated_validation.mean_error,
                    comparison.correlated_validation.mean_error_correlation_free,
                ],
            ],
            title=(
                f"Tomographer indirect validation — {args.topology}, "
                f"scale={args.scale}"
            ),
        )
    )
    winner = "(ii)" if comparison.correlated_wins else "(i)"
    print(f"indirect validation prefers variant {winner}")
    return 0


def _stdin_lifeline(server) -> None:
    """Block until stdin hits EOF, then shut the worker down.

    The launcher (or `ssh`) holds our stdin pipe open for as long as
    the coordinator lives — including a coordinator that is SIGKILLed
    and never runs its teardown.  EOF therefore means "coordinator
    gone": stop accepting, let active sessions drain to their broken
    sockets, and hard-exit after a grace period so no orphan worker
    (or its process pool) outlives the sweep.
    """
    import time

    try:
        while sys.stdin.buffer.read(4096):
            pass
    except (OSError, ValueError):
        pass
    server.close()
    time.sleep(15.0)
    os._exit(0)


def _read_stdin_secret():
    """Consume the first stdin line as the secret (``--secret-stdin``).

    Must run before the lifeline thread starts draining stdin.  The
    rest of the stream stays open — it *is* the lifeline.
    """
    from repro.eval.dist.auth import normalize_secret

    line = sys.stdin.buffer.readline()
    try:
        return normalize_secret(line)
    except ValueError:
        raise SystemExit(
            "error: --secret-stdin expected the shared secret as the "
            "first line of stdin, got an empty line (or EOF)"
        ) from None


def _run_worker(args) -> int:
    import threading

    from repro.eval.cache import resolve_cache_dir
    from repro.eval.dist import WorkerServer

    stdin_secret = _read_stdin_secret() if args.secret_stdin else None
    secret = _resolve_secret_or_exit(args, stdin_secret=stdin_secret)
    tls_cert, tls_key, tls_ca = _resolve_tls_paths(args)
    ssl_context = None
    if tls_cert is not None:
        from repro.eval.dist.certs import server_context

        try:
            ssl_context = server_context(
                tls_cert, tls_key, cafile=tls_ca
            )
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"error: cannot load TLS material: {exc}"
            ) from None
    elif tls_ca is not None:
        raise SystemExit(
            "error: --tls-ca on a worker requires --tls-cert/--tls-key "
            "(a worker cannot demand client certificates without "
            "serving TLS itself)"
        )
    # Chaos is installed only here — in the dedicated worker process —
    # with process faults allowed: a worker may kill or SIGSTOP itself.
    # Figure commands never install from the environment, so REPRO_CHAOS
    # set on a coordinator host lands in its autolaunched workers (which
    # inherit the environment), not in the coordinator itself.
    from repro.eval.dist import faults

    try:
        if args.chaos is not None:
            seed_text = os.environ.get(faults.CHAOS_SEED_ENV, "").strip()
            faults.install(
                faults.FaultPlan.parse(
                    args.chaos,
                    seed=int(seed_text) if seed_text else 0,
                    allow_process_faults=True,
                )
            )
        else:
            plan = faults.plan_from_env(allow_process_faults=True)
            if plan is not None:
                faults.install(plan)
    except faults.FaultSpecError as exc:
        raise SystemExit(f"error: --chaos: {exc}") from None
    cache_dir = resolve_cache_dir(args.cache_dir, disabled=args.no_cache)
    capacity = args.capacity or (os.cpu_count() or 1)
    server = WorkerServer(
        args.bind,
        args.port,
        capacity=capacity,
        cache_dir=cache_dir,
        max_sessions=args.max_sessions,
        fail_after_chunks=args.fail_after_chunks,
        throttle=args.throttle,
        secret=secret,
        ssl_context=ssl_context,
        protocol_max=args.protocol_max,
        log=lambda message: print(message, flush=True),
    )
    if args.exit_on_stdin_close:
        threading.Thread(
            target=_stdin_lifeline, args=(server,), daemon=True
        ).start()
    # The "listening on host:port" line is printed (flushed) by the
    # server itself; launchers parse it to learn ephemeral ports.
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _run_serve(args) -> int:
    import json

    from repro.serve.registry import instance_from_payload
    from repro.serve.server import TomographyService, serve_forever

    preloads = []
    for spec in args.preload or ():
        try:
            payload = json.loads(spec)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"error: --preload: invalid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise SystemExit("error: --preload must be a JSON object")
        preloads.append(payload)
    service = TomographyService(
        host=args.bind,
        port=args.port,
        max_topologies=args.max_topologies,
        workers=args.workers,
        batch_max=args.batch_max,
        flush_interval=args.flush_interval,
        max_pending=args.max_pending,
        cache=_make_cache(args),
    )

    def banner(svc) -> None:
        for payload in preloads:
            entry, _ = svc.store.load(
                instance_from_payload({"generator": payload}),
                name=payload.get("name"),
                make_batcher=svc._make_batcher,
            )
            print(f"preloaded {entry.fingerprint}", flush=True)
        # Machine-parseable, like the dist worker's "listening on" line:
        # launchers read it to learn ephemeral ports.
        print(f"serving on {svc.host}:{svc.port}", flush=True)

    try:
        serve_forever(service, banner=banner)
    except KeyboardInterrupt:
        pass
    return 0


def _instance_from_flags(args):
    """Resolve the instance named by the ``_instance_arguments`` flags."""
    import json

    from repro.serve.registry import instance_from_payload

    if args.generator is not None:
        try:
            generator = json.loads(args.generator)
        except json.JSONDecodeError as exc:
            raise SystemExit(
                f"error: --generator: invalid JSON: {exc}"
            ) from None
        try:
            return instance_from_payload({"generator": generator})
        except ValueError as exc:
            raise SystemExit(f"error: --generator: {exc}") from None
    from repro.eval.figures import default_instance

    return default_instance(
        args.topology, scale=args.scale, seed=args.instance_seed
    )


def _run_localize(args) -> int:
    from repro.io import canonical_json
    from repro.serve.queries import encode_vectors, run_query

    instance = _instance_from_flags(args)
    query: dict = {"kind": args.kind, "seed": args.seed}
    if args.kind == "localization":
        query.update(
            congested_fraction=args.congested_fraction,
            per_set_range=args.per_set_range,
            n_snapshots=args.n_snapshots,
            packets_per_path=(
                None if args.packets_per_path == 0 else args.packets_per_path
            ),
            loc_snapshots=args.loc_snapshots,
            max_nodes=args.max_nodes,
        )
    else:
        query["max_subset_size"] = args.max_subset_size
    result = run_query(
        instance, query, workers=args.workers, cache=_make_cache(args)
    )
    print(canonical_json({"result": encode_vectors(result)}))
    return 0


def _file_windows(path):
    """Yield raw window payloads from a JSONL file ('-' = stdin)."""
    import json

    handle = sys.stdin if path == "-" else open(path, encoding="utf-8")
    try:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(
                    f"error: --windows line {number}: invalid JSON: {exc}"
                ) from None
    finally:
        if handle is not sys.stdin:
            handle.close()


def _simulated_windows(args, instance):
    """Yield path-state matrices from a scripted SnapshotStream."""
    import json

    from repro.eval.scenario import (
        make_clustered_scenario,
        resolve_per_set_range,
    )
    from repro.model.loss import LossModel
    from repro.simulate.probes import PathProber, ProbeConfig
    from repro.simulate.stream import LinkStateTimeline, SnapshotStream
    from repro.utils.rng import spawn_children

    timeline = None
    if args.events is not None:
        try:
            specs = json.loads(args.events)
            if not isinstance(specs, list):
                raise ValueError("expected a JSON list of event objects")
            timeline = LinkStateTimeline.from_specs(specs)
        except (json.JSONDecodeError, ValueError) as exc:
            raise SystemExit(f"error: --events: {exc}") from None
    scenario_seed, stream_seed = spawn_children(args.seed, 2)
    scenario = make_clustered_scenario(
        instance,
        congested_fraction=args.congested_fraction,
        per_set_range=resolve_per_set_range(args.per_set_range),
        seed=scenario_seed,
    )
    packets = (
        None if args.packets_per_path == 0 else args.packets_per_path
    )
    stream = SnapshotStream(
        scenario.truth_model,
        LossModel(),
        PathProber(
            instance.topology, ProbeConfig(packets_per_path=packets)
        ),
        window_size=args.window_size,
        timeline=timeline,
        rng=stream_seed,
    )
    for window in stream.windows(args.n_windows):
        yield window.path_states


def _run_stream(args) -> int:
    import json

    from repro.core.correlation_algorithm import infer_congestion
    from repro.core.streaming import StreamingTomography
    from repro.exceptions import SimulationError
    from repro.io import canonical_json
    from repro.serve.queries import encode_vectors
    from repro.serve.stream import decode_window, verdict_delta
    from repro.simulate.observations import PathObservations

    if args.mode == "batch" and args.max_window is not None:
        raise SystemExit(
            "error: --max-window only applies to --mode incremental "
            "(batch inference always covers the full history)"
        )
    instance = _instance_from_flags(args)
    n_paths = instance.topology.n_paths
    if args.simulate:
        try:
            source = _simulated_windows(args, instance)
        except SimulationError as exc:
            raise SystemExit(f"error: --events: {exc}") from None
    else:
        source = _file_windows(args.windows)
    saver = (
        open(args.save_windows, "w", encoding="utf-8")
        if args.save_windows is not None
        else None
    )

    def windows():
        try:
            for number, payload in enumerate(source, start=1):
                try:
                    states = decode_window(payload, n_paths)
                except ValueError as exc:
                    raise SystemExit(
                        f"error: window {number}: {exc}"
                    ) from None
                if saver is not None:
                    saver.write(
                        json.dumps(states.astype(int).tolist()) + "\n"
                    )
                yield states
        finally:
            if saver is not None:
                saver.close()

    def final_line(observations, result):
        print(
            canonical_json(
                {
                    "n_snapshots": int(observations.n_snapshots),
                    "n_evicted": int(
                        getattr(observations, "n_evicted", 0)
                    ),
                    "result": encode_vectors(
                        {
                            "probabilities": (
                                result.congestion_probabilities
                            ),
                            "log_good": result.log_good,
                        }
                    ),
                }
            )
        )

    if args.mode == "batch":
        collected = list(windows())
        if not collected:
            raise SystemExit("error: the window source was empty")
        observations = PathObservations(
            np.concatenate(collected, axis=0)
        )
        result = infer_congestion(
            instance.topology, instance.correlation, observations
        )
        final_line(observations, result)
        return 0

    engine = StreamingTomography(
        instance.topology,
        instance.correlation,
        threshold=args.threshold,
    )
    observations = None
    for states in windows():
        if observations is None:
            observations = PathObservations(
                states, max_window=args.max_window
            )
        else:
            observations.append_window(states)
        verdict = engine.update(observations)
        if not args.quiet:
            print(canonical_json(verdict_delta(verdict)), flush=True)
    if observations is None:
        raise SystemExit("error: the window source was empty")
    final_line(
        observations, engine.template().infer(observations)
    )
    return 0


def _load_demand(args):
    """Parse the --demand file into a DemandMatrix (SystemExit on junk)."""
    import json

    from repro.predict.demand import DemandMatrix

    if args.demand == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.demand, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise SystemExit(f"error: --demand: {exc}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: --demand: invalid JSON: {exc}") from None
    try:
        return DemandMatrix.from_payload(payload)
    except ValueError as exc:
        raise SystemExit(f"error: --demand: {exc}") from None


def _shift_overrides(args, demand) -> list[dict]:
    """Apply --shift NAME:SCALE overrides to the matrix's named shifts."""
    shifts = [shift.to_payload() for shift in demand.shifts]
    for spec in args.shift or []:
        name, sep, scale_text = spec.rpartition(":")
        if not sep or not name:
            raise SystemExit(
                f"error: --shift: expected NAME:SCALE, got {spec!r}"
            )
        try:
            scale = float(scale_text)
        except ValueError:
            raise SystemExit(
                f"error: --shift {name}: scale must be a number, "
                f"got {scale_text!r}"
            ) from None
        if scale < 0:
            raise SystemExit(
                f"error: --shift {name}: scale must be >= 0, got {scale:g}"
            )
        for entry in shifts:
            if entry["name"] == name:
                entry["scale"] = scale
                break
        else:
            shifts.append({"name": name, "scale": scale})
    return shifts


def _run_predict(args) -> int:
    from repro.io import canonical_json
    from repro.predict.tasks import whatif_vectors_to_result
    from repro.serve.queries import encode_vectors, run_query, validate_query
    from repro.utils.tables import format_table

    instance = _instance_from_flags(args)
    demand = _load_demand(args)
    shifts = _shift_overrides(args, demand)
    demand_payload = demand.to_payload()
    demand_payload.pop("shifts", None)
    query = {
        "kind": "whatif",
        "seed": args.seed,
        "demand": demand_payload,
        "shifts": shifts or None,
        "utilization_threshold": args.utilization_threshold,
        "exact_max_flows": args.exact_max_flows,
        "mc_samples": args.mc_samples,
        "congested_fraction": args.congested_fraction,
        "per_set_range": args.per_set_range,
        "n_snapshots": args.n_snapshots,
        "packets_per_path": (
            None if args.packets_per_path == 0 else args.packets_per_path
        ),
    }
    try:
        validate_query(instance, dict(query))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    result = run_query(
        instance, query, workers=args.workers, cache=_make_cache(args)
    )
    if args.format == "json":
        print(canonical_json({"result": encode_vectors(result)}))
        return 0
    shift_names = [entry["name"] for entry in shifts] or ["baseline"]
    record = whatif_vectors_to_result(result, shift_names)
    topology = instance.topology
    for shift in record["shifts"]:
        rows = [
            [
                rank,
                topology.links[link_id].name,
                f"{record['current'][link_id]:.4f}",
                f"{shift['predicted'][link_id]:.4f}",
                f"{shift['combined'][link_id]:.4f}",
                f"{shift['expected_utilization'][link_id]:.3f}",
            ]
            for rank, link_id in enumerate(
                shift["ranking"][: args.top], start=1
            )
        ]
        print(
            format_table(
                ["rank", "link", "now", "shift risk", "combined", "E[util]"],
                rows,
                title=(
                    f"What-if {shift['name']!r} (scale {shift['scale']:g}, "
                    f"{shift['method']}): top {len(rows)} links by "
                    "combined risk"
                ),
            )
        )
    return 0


_HANDLERS = {
    "demo": _run_demo,
    "figure3": _run_figure3,
    "figure3-cdf": _run_figure3_cdf,
    "figure4": _run_figure4,
    "figure5": _run_figure5,
    "tomographer": _run_tomographer,
    "worker": _run_worker,
    "serve": _run_serve,
    "localize": _run_localize,
    "stream": _run_stream,
    "predict": _run_predict,
}


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    try:
        return _HANDLERS[args.command](args)
    except DistSecurityError as exc:
        # Fail-closed security refusals (wrong secret, one-sided
        # secret, TLS/plaintext mismatch) are operator guidance, not
        # bugs: one clean line instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except JournalError as exc:
        # Likewise: a journal that belongs to a different sweep (or a
        # file that is not a journal) is an operator mistake with a
        # clear remedy, not a stack trace.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe (| head, a pager quit) — routine
        # for the line-oriented stream output, not an error.  Point
        # stdout at devnull so the interpreter's exit-time flush does
        # not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
