"""Evaluation harness: metrics, scenarios, and figure drivers."""

from repro.eval.cache import (
    CacheStats,
    TrialCache,
    resolve_cache_dir,
    trial_key,
)
from repro.eval.figures import (
    SCALES,
    CdfResult,
    SweepPoint,
    SweepResult,
    default_config,
    default_instance,
    figure3_cdf,
    figure3_sweep,
    figure4_cdf,
    figure5_cdf,
)
from repro.eval.metrics import (
    DEFAULT_CDF_GRID,
    ErrorStats,
    absolute_error_stats,
    error_cdf,
    potentially_congested_links,
)
from repro.eval.localization_eval import (
    LocalizationScore,
    evaluate_localization,
)
from repro.eval.mislabel import make_mislabeled_scenario
from repro.eval.parallel import (
    SCENARIO_FACTORIES,
    TASK_RUNNERS,
    ChunkExecutionError,
    LocalExecutor,
    ScenarioTask,
    ScenarioTaskError,
    SerialExecutor,
    TaskExecutor,
    pool_errors,
    resolve_workers,
    run_scenario_tasks,
    scenario_tasks,
)
from repro.eval.report import render_cdf, render_sweep
from repro.eval.tomographer import (
    TomographerComparison,
    ValidationReport,
    indirect_validation,
    predict_path_congestion,
    run_tomographer,
)
from repro.eval.runner import ComparisonResult, run_comparison
from repro.eval.scenario import (
    HIGH_CORRELATION_RANGE,
    LOOSE_CORRELATION_RANGE,
    CongestionScenario,
    make_clustered_scenario,
    resolve_per_set_range,
)
from repro.eval.streaming import (
    DETECTION_RUNNER,
    DetectionLatencyResult,
    DetectionPoint,
    detection_latency_sweep,
    detection_latency_tasks,
    render_detection_latency,
    run_detection_task,
)
from repro.eval.unidentifiable import make_unidentifiable_scenario

__all__ = [
    "SCALES",
    "default_instance",
    "default_config",
    "SweepPoint",
    "SweepResult",
    "CdfResult",
    "figure3_sweep",
    "figure3_cdf",
    "figure4_cdf",
    "figure5_cdf",
    "DETECTION_RUNNER",
    "DetectionPoint",
    "DetectionLatencyResult",
    "run_detection_task",
    "detection_latency_tasks",
    "detection_latency_sweep",
    "render_detection_latency",
    "DEFAULT_CDF_GRID",
    "ErrorStats",
    "absolute_error_stats",
    "error_cdf",
    "potentially_congested_links",
    "render_cdf",
    "render_sweep",
    "ComparisonResult",
    "run_comparison",
    "CongestionScenario",
    "make_clustered_scenario",
    "make_unidentifiable_scenario",
    "make_mislabeled_scenario",
    "HIGH_CORRELATION_RANGE",
    "LOOSE_CORRELATION_RANGE",
    "TomographerComparison",
    "ValidationReport",
    "indirect_validation",
    "predict_path_congestion",
    "run_tomographer",
    "LocalizationScore",
    "evaluate_localization",
    "SCENARIO_FACTORIES",
    "ScenarioTask",
    "pool_errors",
    "resolve_workers",
    "run_scenario_tasks",
    "scenario_tasks",
    "TaskExecutor",
    "SerialExecutor",
    "LocalExecutor",
    "ChunkExecutionError",
    "ScenarioTaskError",
    "CacheStats",
    "TrialCache",
    "resolve_cache_dir",
    "trial_key",
]
