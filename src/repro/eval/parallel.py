"""Parallel scenario engine: fan simulate→infer→score trials across cores.

The paper's evaluation (Figures 3–5) is a bag of *independent*
experiments: each trial draws a scenario, simulates snapshots, runs both
inference algorithms, and scores them.  This module turns that bag into
an explicit work list of :class:`ScenarioTask` records and executes it
either serially or on a :class:`concurrent.futures.ProcessPoolExecutor`.

Determinism is seed-structural, not schedule-structural: every task
carries its own pre-spawned child generators
(:func:`repro.utils.rng.spawn_children` in the *parent*), results are
returned in task order, and no randomness is consumed by the scheduler —
so ``workers=1`` and ``workers=N`` produce bit-identical figures for the
same top-level seed.

Tasks reference scenario factories *by name* (a registry of module-level
callables) so they pickle cheaply; the instance, simulation config and
algorithm options are shipped once per worker via the pool initializer
rather than once per task.  Workers return only the per-algorithm error
vectors, keeping result pickles small.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval.mislabel import make_mislabeled_scenario
from repro.eval.runner import run_comparison
from repro.eval.scenario import make_clustered_scenario
from repro.eval.unidentifiable import make_unidentifiable_scenario
from repro.simulate.experiment import ExperimentConfig
from repro.topogen.instance import TomographyInstance
from repro.utils.rng import spawn_children

__all__ = [
    "SCENARIO_FACTORIES",
    "ScenarioTask",
    "scenario_tasks",
    "resolve_workers",
    "run_scenario_tasks",
    "pool_errors",
]

#: Picklable scenario constructors addressable from worker processes.
SCENARIO_FACTORIES = {
    "clustered": make_clustered_scenario,
    "unidentifiable": make_unidentifiable_scenario,
    "mislabeled": make_mislabeled_scenario,
}


@dataclass(frozen=True)
class ScenarioTask:
    """One simulate→infer→score trial.

    Attributes:
        group: Caller-chosen bucket (e.g. the sweep-point index) used by
            :func:`pool_errors` to pool trial results.
        factory: Key into :data:`SCENARIO_FACTORIES`.
        factory_kwargs: Scenario parameters (picklable).
        scenario_seed: Child generator driving the scenario draw.
        run_seed: Child generator driving the snapshot simulation.
    """

    group: int
    factory: str
    factory_kwargs: dict = field(default_factory=dict)
    scenario_seed: object = None
    run_seed: object = None


def scenario_tasks(
    factory: str,
    factory_kwargs: dict,
    *,
    n_trials: int,
    seed,
    group: int = 0,
) -> list[ScenarioTask]:
    """Spawn the per-trial child seeds and wrap them as tasks.

    Child-generator layout matches the historical serial driver —
    ``spawn_children(seed, 2 * n_trials)`` with the even streams feeding
    scenario draws and the odd streams feeding simulations — so figures
    regenerated through the engine reproduce the serial results exactly.
    """
    if factory not in SCENARIO_FACTORIES:
        raise ValueError(
            f"unknown scenario factory {factory!r}; "
            f"available: {sorted(SCENARIO_FACTORIES)}"
        )
    rngs = spawn_children(seed, 2 * n_trials)
    return [
        ScenarioTask(
            group=group,
            factory=factory,
            factory_kwargs=dict(factory_kwargs),
            scenario_seed=rngs[2 * trial],
            run_seed=rngs[2 * trial + 1],
        )
        for trial in range(n_trials)
    ]


def resolve_workers(workers: int | None) -> int:
    """Map the public ``workers`` knob to a process count.

    ``None`` or ``1`` mean serial in-process execution, ``0`` means one
    worker per CPU, any other positive value is taken literally.
    """
    if workers is None:
        return 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _execute_task(
    instance: TomographyInstance,
    config: ExperimentConfig | None,
    options: AlgorithmOptions | None,
    task: ScenarioTask,
) -> dict[str, np.ndarray]:
    # Generators are stateful: draw from copies so a task list can be
    # executed more than once (serial and parallel runs then consume
    # identical states and produce identical results).
    scenario = SCENARIO_FACTORIES[task.factory](
        instance,
        seed=copy.deepcopy(task.scenario_seed),
        **task.factory_kwargs,
    )
    comparison = run_comparison(
        instance.topology,
        scenario,
        config=config,
        options=options,
        seed=copy.deepcopy(task.run_seed),
    )
    return comparison.errors


# Worker-process state installed once by the pool initializer.
_WORKER_STATE: tuple | None = None


def _init_worker(instance, config, options) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (instance, config, options)


def _run_in_worker(task: ScenarioTask) -> dict[str, np.ndarray]:
    instance, config, options = _WORKER_STATE
    return _execute_task(instance, config, options, task)


def run_scenario_tasks(
    instance: TomographyInstance,
    tasks: list[ScenarioTask],
    *,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
    workers: int | None = None,
) -> list[dict[str, np.ndarray]]:
    """Execute tasks, preserving task order in the result list.

    Each result is the per-algorithm absolute-error dict of one trial
    (:attr:`repro.eval.runner.ComparisonResult.errors`).
    """
    n_workers = resolve_workers(workers)
    if n_workers <= 1 or len(tasks) <= 1:
        return [
            _execute_task(instance, config, options, task)
            for task in tasks
        ]
    n_workers = min(n_workers, len(tasks))
    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_init_worker,
        initargs=(instance, config, options),
    ) as pool:
        return list(pool.map(_run_in_worker, tasks))


def pool_errors(
    tasks: list[ScenarioTask],
    results: list[dict[str, np.ndarray]],
    n_groups: int,
) -> list[dict[str, np.ndarray]]:
    """Concatenate per-trial error vectors per task group.

    Trials pool in task order within each group, matching the historical
    serial accumulation.
    """
    grouped: list[dict[str, list[np.ndarray]]] = [
        {} for _ in range(n_groups)
    ]
    for task, errors in zip(tasks, results):
        bucket = grouped[task.group]
        for name, values in errors.items():
            bucket.setdefault(name, []).append(values)
    return [
        {name: np.concatenate(chunks) for name, chunks in bucket.items()}
        for bucket in grouped
    ]
