"""Parallel scenario engine: fan simulate→infer→score trials across cores.

The paper's evaluation (Figures 3–5) is a bag of *independent*
experiments: each trial draws a scenario, simulates snapshots, runs both
inference algorithms, and scores them.  This module turns that bag into
an explicit work list of :class:`ScenarioTask` records and executes it
through a pluggable :class:`TaskExecutor`: :class:`SerialExecutor`
(in-process), :class:`LocalExecutor` (a
:class:`concurrent.futures.ProcessPoolExecutor` on this host), or
:class:`repro.eval.dist.RemoteExecutor` (a coordinator fanning chunks
out to socket-connected workers on other hosts).  Executors yield
chunks as they complete and settle every chunk before raising, so a
failed sweep keeps (and caches) everything that finished and reports
exactly which task indices were lost (:class:`ScenarioTaskError`).

Determinism is seed-structural, not schedule-structural: every task
carries its own pre-spawned child generators
(:func:`repro.utils.rng.spawn_children` in the *parent*), results are
returned in task order, and no randomness is consumed by the scheduler —
so ``workers=1`` and ``workers=N`` produce bit-identical figures for the
same top-level seed.

Tasks reference scenario factories *by name* (a registry of module-level
callables) so they pickle cheaply; the instance, simulation config and
algorithm options are shipped once per worker via the pool initializer
rather than once per task.  Task batches are submitted as *chunks* and
workers return each chunk's error vectors as one packed float buffer
plus a small shape descriptor — one array pickle per chunk instead of
one object pickle per trial.

:func:`run_scenario_tasks` optionally consults a persistent
:class:`repro.eval.cache.TrialCache`: the task list is partitioned into
hits (loaded from disk, zero compute) and misses (executed, then written
back atomically so concurrent sweeps can share one store).  Cached and
recomputed trials are bit-identical — the cache stores exactly what the
worker returned.

``resolve_workers(None)`` honours the ``REPRO_WORKERS`` environment
variable (same encoding as the ``--workers`` CLI flag: ``1`` = serial,
``0`` = one worker per CPU core), so CI and benchmarks can steer the
fan-out without threading a flag through every entry point.
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.core.prepared import PreparedRegistry, use_registry
from repro.eval.mislabel import make_mislabeled_scenario
from repro.eval.runner import run_comparison
from repro.eval.scenario import make_clustered_scenario
from repro.eval.unidentifiable import make_unidentifiable_scenario
from repro.io import instance_fingerprint
from repro.simulate.experiment import ExperimentConfig
from repro.topogen.instance import TomographyInstance
from repro.utils.rng import clone_generator, spawn_children

__all__ = [
    "SCENARIO_FACTORIES",
    "TASK_RUNNERS",
    "register_task_runner",
    "ScenarioTask",
    "scenario_tasks",
    "resolve_workers",
    "run_scenario_tasks",
    "pool_errors",
    "TaskExecutor",
    "SerialExecutor",
    "LocalExecutor",
    "ChunkExecutionError",
    "ScenarioTaskError",
]

#: Picklable scenario constructors addressable from worker processes.
SCENARIO_FACTORIES = {
    "clustered": make_clustered_scenario,
    "unidentifiable": make_unidentifiable_scenario,
    "mislabeled": make_mislabeled_scenario,
}

#: Generalised task runners, addressable by name from worker processes.
#: A runner owns the *whole* trial — signature
#: ``runner(instance, config, options, task) -> dict[str, np.ndarray]``
#: with float64 vectors only (the packed chunk transport refuses other
#: dtypes) — whereas a scenario factory only builds the scenario for the
#: standard simulate→infer→score flow.  Names containing ``:`` are
#: dotted ``"module:attribute"`` specs resolved lazily on first use, so
#: they work unchanged in freshly spawned pool workers and remote dist
#: workers (the name carries its own import path) and ship through the
#: dist codec as ordinary factory strings.
TASK_RUNNERS: dict = {}


def register_task_runner(name: str, runner) -> None:
    """Register *runner* under *name* for :class:`ScenarioTask` dispatch.

    Explicit registration only helps in-process executors; prefer dotted
    ``"module:attribute"`` names for anything that crosses a process
    boundary.
    """
    if name in SCENARIO_FACTORIES:
        raise ValueError(f"{name!r} is already a scenario factory")
    if not callable(runner):
        raise TypeError(f"task runner {name!r} must be callable")
    TASK_RUNNERS[name] = runner


def _resolve_task_runner(name: str):
    runner = TASK_RUNNERS.get(name)
    if runner is not None:
        return runner
    module_name, separator, attribute = name.partition(":")
    if not separator or not module_name or not attribute:
        raise ValueError(
            f"unknown scenario factory {name!r}; available: "
            f"{sorted(SCENARIO_FACTORIES)}, a registered task runner "
            f"({sorted(TASK_RUNNERS)}), or a dotted 'module:attribute' "
            "runner spec"
        )
    module = importlib.import_module(module_name)
    try:
        runner = getattr(module, attribute)
    except AttributeError:
        raise ValueError(
            f"module {module_name!r} has no attribute {attribute!r} "
            f"(from task-runner spec {name!r})"
        ) from None
    if not callable(runner):
        raise ValueError(f"task-runner spec {name!r} is not callable")
    TASK_RUNNERS[name] = runner
    return runner


@dataclass(frozen=True)
class ScenarioTask:
    """One simulate→infer→score trial.

    Attributes:
        group: Caller-chosen bucket (e.g. the sweep-point index) used by
            :func:`pool_errors` to pool trial results.
        factory: Key into :data:`SCENARIO_FACTORIES`.
        factory_kwargs: Scenario parameters (picklable).
        scenario_seed: Child generator driving the scenario draw.
        run_seed: Child generator driving the snapshot simulation.
    """

    group: int
    factory: str
    factory_kwargs: dict = field(default_factory=dict)
    scenario_seed: object = None
    run_seed: object = None


def scenario_tasks(
    factory: str,
    factory_kwargs: dict,
    *,
    n_trials: int,
    seed,
    group: int = 0,
) -> list[ScenarioTask]:
    """Spawn the per-trial child seeds and wrap them as tasks.

    Child-generator layout matches the historical serial driver —
    ``spawn_children(seed, 2 * n_trials)`` with the even streams feeding
    scenario draws and the odd streams feeding simulations — so figures
    regenerated through the engine reproduce the serial results exactly.
    """
    if factory not in SCENARIO_FACTORIES:
        # Raises ValueError (with the available names listed) for
        # anything that is neither a factory nor a resolvable runner.
        _resolve_task_runner(factory)
    rngs = spawn_children(seed, 2 * n_trials)
    return [
        ScenarioTask(
            group=group,
            factory=factory,
            factory_kwargs=dict(factory_kwargs),
            scenario_seed=rngs[2 * trial],
            run_seed=rngs[2 * trial + 1],
        )
        for trial in range(n_trials)
    ]


def resolve_workers(workers: int | None) -> int:
    """Map the public ``workers`` knob to a process count.

    ``1`` means serial in-process execution, ``0`` means one worker per
    CPU, any other positive value is taken literally.  ``None`` defers
    to the ``REPRO_WORKERS`` environment variable (same encoding),
    defaulting to serial when it is unset or empty.

    Negative values — from either source — are rejected here with the
    source named, instead of surfacing later as an opaque
    ``ProcessPoolExecutor`` error deep inside the sweep.
    """
    source = "workers"
    if workers is None:
        source = "the REPRO_WORKERS environment variable"
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    if workers < 0:
        raise ValueError(
            f"{source} must be >= 0 (0 = one worker per CPU core), "
            f"got {workers}"
        )
    if workers == 0:
        return os.cpu_count() or 1
    return workers


def _execute_task(
    instance: TomographyInstance,
    config: ExperimentConfig | None,
    options: AlgorithmOptions | None,
    task: ScenarioTask,
) -> dict[str, np.ndarray]:
    if task.factory not in SCENARIO_FACTORIES:
        return _resolve_task_runner(task.factory)(
            instance, config, options, task
        )
    # Generators are stateful: draw from clones so a task list can be
    # executed more than once (serial, parallel, and cache-miss runs
    # then consume identical states and produce identical results).
    scenario = SCENARIO_FACTORIES[task.factory](
        instance,
        seed=clone_generator(task.scenario_seed),
        **task.factory_kwargs,
    )
    comparison = run_comparison(
        instance.topology,
        scenario,
        config=config,
        options=options,
        seed=clone_generator(task.run_seed),
    )
    return comparison.errors


# ----------------------------------------------------------------------
# Packed result transport
# ----------------------------------------------------------------------
def _pack_error_dicts(
    dicts: list[dict[str, np.ndarray]],
) -> tuple[list[list[tuple[str, int]]], np.ndarray]:
    """Flatten per-trial error dicts into one float64 buffer + shapes.

    The descriptor records, per trial, the algorithm names and vector
    lengths in insertion order; the buffer is their concatenation.  One
    ndarray pickle then carries a whole chunk across the process
    boundary (pickle protocol 5 ships it as a single byte buffer)
    instead of one dict-of-arrays pickle per trial.

    Inputs must already be float64: a silent cast here would let the
    pooled transport diverge from what the serial path (and the cache)
    returns, so any other dtype fails loudly instead.
    """
    descriptor = [
        [(name, int(vector.size)) for name, vector in errors.items()]
        for errors in dicts
    ]
    vectors = [
        np.asarray(vector).ravel()
        for errors in dicts
        for vector in errors.values()
    ]
    for vector in vectors:
        if vector.dtype != np.float64:
            raise TypeError(
                "packed transport requires float64 error vectors, got "
                f"{vector.dtype}"
            )
    if vectors:
        buffer = np.concatenate(vectors)
    else:
        buffer = np.empty(0, dtype=np.float64)
    return descriptor, buffer


def _unpack_error_dicts(
    descriptor: list[list[tuple[str, int]]],
    buffer: np.ndarray,
    *,
    copy: bool = True,
) -> list[dict[str, np.ndarray]]:
    """Inverse of :func:`_pack_error_dicts`.

    Per-trial vectors are copied out of the chunk buffer by default: a
    view would pin the whole chunk transport buffer in memory for the
    lifetime of every result that references it (and read-only buffers,
    e.g. ones wrapped from socket bytes, would leak their immutability
    into the results).  Pass ``copy=False`` only when the results are
    consumed before the buffer is dropped.
    """
    dicts: list[dict[str, np.ndarray]] = []
    offset = 0
    for entry in descriptor:
        errors: dict[str, np.ndarray] = {}
        for name, size in entry:
            vector = buffer[offset : offset + size]
            errors[name] = vector.copy() if copy else vector
            offset += size
        dicts.append(errors)
    return dicts


# Worker-process state installed once by the pool initializer: the
# instance/config/options triple is shipped a single time per worker and
# shared read-only by every chunk that worker executes.
_WORKER_STATE: tuple | None = None


def _init_worker(instance, config, options) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (instance, config, options)


def _run_in_worker(task: ScenarioTask) -> dict[str, np.ndarray]:
    """Single-task entry point (the PR-1 per-trial-pickle transport).

    Kept for benchmark baselines; the engine itself submits chunks.
    """
    instance, config, options = _WORKER_STATE
    return _execute_task(instance, config, options, task)


def _run_chunk_in_worker(
    chunk: list[ScenarioTask],
) -> tuple[list[list[tuple[str, int]]], np.ndarray]:
    instance, config, options = _WORKER_STATE
    return _pack_error_dicts(
        [_execute_task(instance, config, options, task) for task in chunk]
    )


def _chunk_tasks(
    tasks: list[ScenarioTask],
    n_workers: int,
    *,
    chunks_per_worker: int = 4,
) -> list[list[ScenarioTask]]:
    """Split the task list into contiguous chunks (~4 per worker).

    Contiguity preserves task order after concatenating chunk results;
    several chunks per worker keep the pool load-balanced when trial
    durations vary (and bound what a dead remote worker can lose).
    """
    chunk_size = max(1, -(-len(tasks) // (chunks_per_worker * n_workers)))
    return [
        tasks[start : start + chunk_size]
        for start in range(0, len(tasks), chunk_size)
    ]


# ----------------------------------------------------------------------
# Executor interface
# ----------------------------------------------------------------------
class ChunkExecutionError(RuntimeError):
    """One or more chunks failed after every chunk settled.

    Raised by an executor's :meth:`TaskExecutor.map_chunks` *after* all
    successful chunks have been yielded, so callers keep (and cache)
    every completed chunk.  ``failures`` maps each failed chunk index to
    the exception (or exception description) that killed it.
    """

    def __init__(
        self, message: str, failures: list[tuple[int, BaseException]]
    ) -> None:
        super().__init__(message)
        self.failures = failures

    @property
    def chunk_indices(self) -> list[int]:
        return [index for index, _ in self.failures]


class ScenarioTaskError(RuntimeError):
    """A sweep lost tasks; ``task_indices`` names them.

    Raised by :func:`run_scenario_tasks` once every chunk has settled:
    results for every *other* chunk were already written back to the
    cache (when one is attached), so a crashed sweep loses at most the
    failing chunks — rerunning it recomputes only those.
    """

    def __init__(self, message: str, task_indices: list[int]) -> None:
        super().__init__(message)
        self.task_indices = task_indices


class TaskExecutor:
    """Strategy for executing chunks of :class:`ScenarioTask` lists.

    ``plan`` splits a task list into the chunks the backend wants to
    schedule.  Chunks must be **contiguous, in-order slices** of the
    input (``chunks[0] + chunks[1] + ... == tasks``): the engine maps
    chunk results back to task indices positionally, so a plan that
    reorders or rebalances tasks would silently mis-assign results
    (``run_scenario_tasks`` verifies the slicing and raises otherwise).
    ``map_chunks`` executes the chunks and yields
    ``(chunk_index, results)`` pairs *as chunks complete*, in any order.
    Implementations must settle every chunk before raising, and raise
    :class:`ChunkExecutionError` listing the chunks that failed — this
    is what lets :func:`run_scenario_tasks` write completed chunks back
    to the cache even when the sweep ultimately errors.
    """

    def plan(self, tasks: list[ScenarioTask]) -> list[list[ScenarioTask]]:
        raise NotImplementedError

    def map_chunks(self, context: tuple, chunks: list[list[ScenarioTask]]):
        raise NotImplementedError


class SerialExecutor(TaskExecutor):
    """In-process execution, one task per chunk (finest write-back)."""

    def plan(self, tasks):
        return [[task] for task in tasks]

    def map_chunks(self, context, chunks):
        instance, config, options = context
        failures: list[tuple[int, BaseException]] = []
        for index, chunk in enumerate(chunks):
            try:
                computed = [
                    _execute_task(instance, config, options, task)
                    for task in chunk
                ]
            except Exception as exc:
                failures.append((index, exc))
                continue
            yield index, computed
        if failures:
            raise ChunkExecutionError(
                f"{len(failures)} of {len(chunks)} serial chunks failed",
                failures,
            ) from failures[0][1]


class LocalExecutor(TaskExecutor):
    """:class:`ProcessPoolExecutor`-backed execution on this host.

    Chunks are submitted as individual futures and yielded as they
    complete (not in submission order), so the caller can write each
    chunk's cache entries back while others are still running; a chunk
    that raises — or a worker process that dies, which breaks the pool
    and fails every still-pending future — costs only the chunks that
    had not completed.
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers

    def plan(self, tasks):
        return _chunk_tasks(tasks, self.n_workers)

    def map_chunks(self, context, chunks):
        failures: list[tuple[int, BaseException]] = []
        with ProcessPoolExecutor(
            max_workers=min(self.n_workers, len(chunks)),
            initializer=_init_worker,
            initargs=context,
        ) as pool:
            futures = {
                pool.submit(_run_chunk_in_worker, chunk): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    descriptor, buffer = future.result()
                except Exception as exc:
                    failures.append((index, exc))
                else:
                    yield index, _unpack_error_dicts(descriptor, buffer)
        if failures:
            failures.sort(key=lambda entry: entry[0])
            raise ChunkExecutionError(
                f"{len(failures)} of {len(chunks)} pooled chunks failed",
                failures,
            ) from failures[0][1]


def _default_executor(workers: int | None, n_tasks: int) -> TaskExecutor:
    """Map the legacy ``workers`` knob onto an executor."""
    n_workers = min(resolve_workers(workers), n_tasks)
    if n_workers <= 1 or n_tasks <= 1:
        return SerialExecutor()
    return LocalExecutor(n_workers)


def run_scenario_tasks(
    instance: TomographyInstance,
    tasks: list[ScenarioTask],
    *,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
    workers: int | None = None,
    cache=None,
    executor: TaskExecutor | None = None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> list[dict[str, np.ndarray]]:
    """Execute tasks, preserving task order in the result list.

    Each result is the per-algorithm absolute-error dict of one trial
    (:attr:`repro.eval.runner.ComparisonResult.errors`).

    ``executor`` picks the backend: :class:`SerialExecutor`,
    :class:`LocalExecutor`, or
    :class:`repro.eval.dist.RemoteExecutor`.  When omitted, the legacy
    ``workers`` knob resolves to serial or local execution.  Executors
    only change *where* chunks run, never what they return: results are
    bit-identical across backends for the same task list.

    With ``cache`` (a :class:`repro.eval.cache.TrialCache`), tasks whose
    key is already stored load from disk without executing; the rest run
    and are written back atomically *as each chunk completes*, so a
    sweep that dies mid-flight keeps everything it finished.  When a
    chunk fails, the remaining chunks still settle (and are cached)
    before a :class:`ScenarioTaskError` naming the lost task indices is
    raised.

    With ``journal`` (a :class:`repro.eval.dist.journal.SweepJournal`),
    every settled chunk is additionally appended — fsync'd — to an
    append-only journal file; a journal opened with ``resume=True``
    replays its settled chunks first, exactly like cache hits, so a run
    whose *coordinator* died mid-sweep (SIGKILL, OOM) restarts without
    recomputing settled work and finishes bit-identically.

    ``registry`` scopes the prepared-state registry the equation builder
    resolves against for in-process execution (serial chunks); pool and
    dist workers keep their own per-process default registry.  Either
    way results are bit-identical — the registry only changes where the
    measurement-independent prep is cached.
    """
    results: list[dict[str, np.ndarray] | None] = [None] * len(tasks)
    keys: list[str | None] | None = None
    if cache is not None:
        fingerprint = instance_fingerprint(instance)
        # Tasks with a None seed draw fresh entropy on every execution:
        # they are irreproducible, and distinct trials would collide on
        # one key, so they bypass the cache entirely.
        keys = [
            cache.task_key(
                fingerprint, task, config=config, options=options
            )
            if task.scenario_seed is not None and task.run_seed is not None
            else None
            for task in tasks
        ]
        miss_indices = []
        for index, key in enumerate(keys):
            hit = cache.get(key) if key is not None else None
            if hit is None:
                miss_indices.append(index)
            else:
                results[index] = hit
    else:
        miss_indices = list(range(len(tasks)))

    if journal is not None:
        # Journaled tasks replay like cache hits: a settled chunk from
        # a crashed run (resume) — or an earlier settle of this run —
        # never executes twice.  The journal validates its sweep
        # fingerprint here and fails loudly on a mismatch.
        for index, errors in journal.open(
            instance, tasks, config=config, options=options
        ).items():
            if results[index] is None:
                results[index] = errors
        miss_indices = [
            index for index in miss_indices if results[index] is None
        ]

    if miss_indices:
        miss_tasks = [tasks[index] for index in miss_indices]
        if executor is None:
            executor = _default_executor(workers, len(miss_tasks))
        chunks = executor.plan(miss_tasks)
        # Chunks must be contiguous in-order slices of miss_tasks; the
        # positional mapping below silently mis-assigns results for any
        # other plan shape, so verify task identity per chunk.
        chunk_to_indices: list[list[int]] = []
        cursor = 0
        for chunk in chunks:
            if any(
                cursor + offset >= len(miss_tasks)
                or chunk[offset] is not miss_tasks[cursor + offset]
                for offset in range(len(chunk))
            ):
                raise ValueError(
                    "executor.plan() must return contiguous in-order "
                    "slices of the task list"
                )
            chunk_to_indices.append(
                miss_indices[cursor : cursor + len(chunk)]
            )
            cursor += len(chunk)
        if cursor != len(miss_tasks):
            raise ValueError(
                "executor.plan() must partition the task list"
            )

        def _settle(chunk_index: int, errors_list) -> None:
            for index, errors in zip(
                chunk_to_indices[chunk_index], errors_list
            ):
                results[index] = errors
                if cache is not None and keys[index] is not None:
                    cache.put(keys[index], errors)
            if journal is not None:
                # Durable before "settled": the record hits disk
                # (fsync) before the engine counts the chunk done.
                journal.record(chunk_to_indices[chunk_index], errors_list)

        context = (instance, config, options)
        try:
            with use_registry(registry):
                for chunk_index, errors_list in executor.map_chunks(
                    context, chunks
                ):
                    _settle(chunk_index, errors_list)
        except ChunkExecutionError as exc:
            lost = sorted(
                index
                for chunk_index in exc.chunk_indices
                for index in chunk_to_indices[chunk_index]
            )
            raise ScenarioTaskError(
                f"sweep lost {len(lost)} of {len(tasks)} tasks "
                f"(indices {lost}); completed chunks were retained"
                + (" in the cache" if cache is not None else "")
                + f": {exc}",
                lost,
            ) from exc
        finally:
            if journal is not None:
                journal.close()
    elif journal is not None:
        journal.close()
    return results


def pool_errors(
    tasks: list[ScenarioTask],
    results: list[dict[str, np.ndarray]],
    n_groups: int,
) -> list[dict[str, np.ndarray]]:
    """Concatenate per-trial error vectors per task group.

    Trials pool in task order within each group, matching the historical
    serial accumulation: a stable sort by group index yields the
    group-major trial order, and each algorithm's vectors concatenate
    once and split at the per-group boundaries — no per-trial Python
    appends.
    """
    if n_groups < 0:
        raise ValueError(f"n_groups must be >= 0, got {n_groups}")
    pooled: list[dict[str, np.ndarray]] = [{} for _ in range(n_groups)]
    if not tasks:
        return pooled
    groups = np.fromiter(
        (task.group for task in tasks), dtype=np.int64, count=len(tasks)
    )
    # Out-of-range groups would either crash deep inside the bincount /
    # split plumbing (negative) or silently drop trials past the last
    # group (>= n_groups); reject them up front with the offending
    # values named.
    out_of_range = (groups < 0) | (groups >= n_groups)
    if out_of_range.any():
        bad = sorted(set(groups[out_of_range].tolist()))
        raise ValueError(
            f"task group indices must lie in [0, {n_groups}); "
            f"got out-of-range group(s) {bad}"
        )
    order = np.argsort(groups, kind="stable")
    names: list[str] = []
    seen: set[str] = set()
    for errors in results:
        for name in errors:
            if name not in seen:
                seen.add(name)
                names.append(name)
    for name in names:
        indices = np.array(
            [index for index in order if name in results[index]],
            dtype=np.int64,
        )
        if indices.size == 0:
            continue
        lengths = np.fromiter(
            (results[index][name].size for index in indices),
            dtype=np.int64,
            count=indices.size,
        )
        per_group = np.bincount(
            groups[indices], weights=lengths, minlength=n_groups
        ).astype(np.int64)
        trials_per_group = np.bincount(
            groups[indices], minlength=n_groups
        )
        values = np.concatenate(
            [results[index][name] for index in indices]
        )
        pieces = np.split(values, np.cumsum(per_group)[:-1])
        for group, piece in enumerate(pieces):
            if trials_per_group[group]:
                pooled[group][name] = piece
    return pooled
