"""One evaluation experiment: simulate, infer with both algorithms, score.

This is the paper's per-figure inner loop: given a scenario (ground-truth
model + algorithm-visible correlation structure), run the snapshot
simulator, hand the observations to the correlation algorithm and the
independence algorithm, and compute per-link absolute errors over the
potentially congested links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation_algorithm import (
    AlgorithmOptions,
    infer_congestion,
)
from repro.core.independence_algorithm import infer_congestion_independent
from repro.core.prepared import PreparedRegistry
from repro.core.results import InferenceResult
from repro.core.topology import Topology
from repro.eval.metrics import (
    ErrorStats,
    absolute_error_stats,
    error_cdf,
    potentially_congested_links,
)
from repro.eval.scenario import CongestionScenario
from repro.simulate.experiment import (
    ExperimentConfig,
    SimulationRun,
    run_experiment,
)
from repro.utils.rng import spawn_children

__all__ = ["ComparisonResult", "run_comparison"]


@dataclass(frozen=True)
class ComparisonResult:
    """Scores of both algorithms on one simulated experiment.

    Attributes:
        truth: True per-link congestion probabilities.
        scored_links: The potentially congested links (score population).
        errors: Per-algorithm absolute-error vectors over scored links.
        results: Per-algorithm full inference results.
        run: The simulation run (observations + ground-truth states).
    """

    truth: np.ndarray
    scored_links: np.ndarray
    errors: dict[str, np.ndarray]
    results: dict[str, InferenceResult]
    run: SimulationRun = field(repr=False)

    def stats(self, algorithm: str) -> ErrorStats:
        """Mean/90th-percentile summary for one algorithm."""
        return absolute_error_stats(self.errors[algorithm])

    def cdf(self, algorithm: str, grid=None) -> tuple[np.ndarray, np.ndarray]:
        """Error CDF for one algorithm (paper Figures 3(c,d), 4, 5)."""
        if grid is None:
            return error_cdf(self.errors[algorithm])
        return error_cdf(self.errors[algorithm], grid)


def run_comparison(
    topology: Topology,
    scenario: CongestionScenario,
    *,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
    seed=None,
    registry: PreparedRegistry | None = None,
) -> ComparisonResult:
    """Simulate one experiment and score both algorithms.

    Args:
        topology: The measurement topology.
        scenario: Ground truth + algorithm-visible correlation.
        config: Simulation parameters (snapshots, probes).
        options: Algorithm knobs (shared by both algorithms).
        seed: RNG seed / generator; the simulation consumes a child
            stream, so identical seeds reproduce identical experiments.
        registry: Prepared-state registry for the equation builder;
            ``None`` uses the ambient/default registry.
    """
    (sim_rng,) = spawn_children(seed, 1)
    run = run_experiment(
        topology, scenario.truth_model, config=config, seed=sim_rng
    )
    truth = scenario.truth_model.link_marginals()
    scored = potentially_congested_links(topology, run.observations)

    results = {
        "correlation": infer_congestion(
            topology,
            scenario.algorithm_correlation,
            run.observations,
            options=options,
            registry=registry,
        ),
        "independence": infer_congestion_independent(
            topology, run.observations, options=options
        ),
    }
    errors = {
        name: result.absolute_errors(truth)[scored]
        for name, result in results.items()
    }
    return ComparisonResult(
        truth=truth,
        scored_links=scored,
        errors=errors,
        results=results,
        run=run,
    )
