"""Figure-5 scenarios: unknown correlation patterns ("mislabeled" links).

The paper's scenario: "a worm has infected a large number of end-hosts and
periodically orders them to flood a set of otherwise uncorrelated links;
as a result, these links become correlated ... there is no practical way
for an operator to know of this correlation pattern", so the algorithm
treats the flooded links as uncorrelated — they are *mislabeled*.

Construction: pick the flood targets among links the operator's structure
holds as singletons ("otherwise uncorrelated"); the *true* model moves
them into one hidden common-cause set (the worm's periodic flood), while
the structure handed to the algorithm is left untouched.  The remaining
congestion budget follows the ordinary Figure-3 clustering, so both known
correlation and the unknown pattern are present simultaneously.
"""

from __future__ import annotations

from repro.core.correlation import CorrelationStructure
from repro.exceptions import GenerationError
from repro.model.cluster import make_cluster_model
from repro.model.common_cause import CommonCauseModel
from repro.model.network import NetworkCongestionModel
from repro.topogen.instance import TomographyInstance
from repro.eval.scenario import (
    HIGH_CORRELATION_RANGE,
    CongestionScenario,
)
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction

__all__ = ["make_mislabeled_scenario"]


def make_mislabeled_scenario(
    instance: TomographyInstance,
    *,
    congested_fraction: float = 0.10,
    mislabeled_fraction: float = 0.25,
    flood_cause_range: tuple[float, float] = (0.2, 0.6),
    per_set_range: tuple[int, int] = HIGH_CORRELATION_RANGE,
    cause_probability_range: tuple[float, float] = (0.15, 0.6),
    background_range: tuple[float, float] = (0.02, 0.2),
    seed=None,
) -> CongestionScenario:
    """Build a Figure-5 scenario.

    Args:
        instance: Base topology + the operator-visible correlation.
        congested_fraction: Total congested-link budget (paper: 10%).
        mislabeled_fraction: Fraction *of the congested links* targeted by
            the hidden flood (0.25 for Fig. 5(a,c), 0.5 for 5(b,d)).
        flood_cause_range: Activation probability of the worm's periodic
            flood (all targeted links congest together when it fires).
        per_set_range / cause_probability_range / background_range: The
            Figure-3 knobs for the correctly-labeled remainder.
        seed: RNG seed / generator.
    """
    check_fraction(congested_fraction, "congested_fraction")
    check_fraction(mislabeled_fraction, "mislabeled_fraction")
    rng = as_generator(seed)
    topology = instance.topology
    correlation = instance.correlation
    n_links = topology.n_links
    target_total = max(1, round(congested_fraction * n_links))
    target_flood = round(mislabeled_fraction * target_total)

    singleton_sets = [
        set_index
        for set_index, group in enumerate(correlation.sets)
        if len(group) == 1
    ]
    if target_flood > 0 and not singleton_sets:
        raise GenerationError(
            "the instance has no singleton correlation sets to flood; "
            "generate it with a cluster_fraction < 1"
        )
    rng.shuffle(singleton_sets)
    flood_set_indices = singleton_sets[:target_flood]
    flood_links = frozenset(
        next(iter(correlation.sets[i])) for i in flood_set_indices
    )
    shortfall = target_flood - len(flood_links)

    # ------------------------------------------------------------------
    # True structure: flooded singletons fuse into one hidden set.
    # ------------------------------------------------------------------
    true_sets: list[set[int]] = [
        set(group)
        for set_index, group in enumerate(correlation.sets)
        if set_index not in set(flood_set_indices)
    ]
    if flood_links:
        true_sets.append(set(flood_links))
    true_correlation = CorrelationStructure(topology, true_sets)

    # ------------------------------------------------------------------
    # Congestion: hidden flood + ordinary clustering for the rest.
    # ------------------------------------------------------------------
    remaining_budget = max(target_total - len(flood_links), 0)
    lo, hi = per_set_range
    n_true_sets = len(true_sets)
    flood_index = n_true_sets - 1 if flood_links else None
    set_order = list(range(n_true_sets))
    rng.shuffle(set_order)
    active_by_set: dict[int, frozenset[int]] = {}
    total = 0
    for set_index in set_order:
        if total >= remaining_budget:
            break
        if set_index == flood_index:
            continue
        members = sorted(true_sets[set_index] - flood_links)
        if not members:
            continue
        count = min(len(members), hi, max(remaining_budget - total, 0))
        if len(members) >= lo:
            count = min(
                count, int(rng.integers(lo, min(hi, len(members)) + 1))
            )
        if count < 1:
            continue
        picks = rng.choice(len(members), size=count, replace=False)
        active_by_set[set_index] = frozenset(members[int(i)] for i in picks)
        total += count

    models = []
    congested: set[int] = set(flood_links)
    for set_index, group in enumerate(true_correlation.sets):
        if flood_index is not None and set_index == flood_index:
            cause = float(rng.uniform(*flood_cause_range))
            backgrounds = {
                link_id: float(rng.uniform(*background_range))
                for link_id in group
            }
            models.append(
                CommonCauseModel(
                    frozenset(group),
                    cause_probability=cause,
                    background=backgrounds,
                )
            )
            continue
        active = active_by_set.get(set_index, frozenset())
        if active:
            cause = float(rng.uniform(*cause_probability_range))
            backgrounds = {
                link_id: float(rng.uniform(*background_range))
                for link_id in active
            }
            models.append(
                make_cluster_model(
                    frozenset(group),
                    active,
                    cause_probability=cause,
                    background=backgrounds,
                )
            )
            congested.update(active)
        else:
            models.append(
                make_cluster_model(
                    frozenset(group),
                    frozenset(),
                    cause_probability=0.0,
                    background=0.0,
                )
            )
    truth = NetworkCongestionModel(true_correlation, models)

    return CongestionScenario(
        truth_model=truth,
        # The operator never learns about the worm: unchanged structure.
        algorithm_correlation=correlation,
        congested_links=frozenset(congested),
        metadata={
            "congested_fraction": congested_fraction,
            "mislabeled_fraction": mislabeled_fraction,
            "target_total": target_total,
            "target_flood": target_flood,
            "flood_links": flood_links,
            "flood_shortfall": shortfall,
            "achieved_total": len(congested),
        },
    )
