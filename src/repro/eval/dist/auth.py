"""Shared-secret authentication for the distributed sweep wire.

The dist protocol ships pickles, so any socket that completes a
handshake can make the receiving process execute attacker-controlled
bytecode.  This module closes that hole for fleets that cannot live on
a loopback/private interface: when a shared secret is configured, every
connection must complete an HMAC-SHA256 challenge/response **before a
single pickled byte is read** on either side.

Auth frames use their own fixed binary framing — no pickle anywhere::

    AUTH_MAGIC (4 bytes) | kind (u8) | body length (u32 BE) | body

and the handshake is four frames (protocol version 3)::

    coordinator                         worker
    ----------------------------------- ----------------------------
    HELLO  nonce_c, protocol_max  ---->
                                  <---- CHALLENGE  nonce_w, protocol_max
    PROVE  HMAC(secret, "C"|nonce_c|nonce_w|version)  ---->
                                  <---- OK  HMAC(secret, "W"|nonce_c|nonce_w|version)

``version`` is ``min(both protocol_max)`` — the version the session
will negotiate in the subsequent ``init``/``ready`` exchange — so a
man-in-the-middle cannot downgrade the session below what both ends
speak (both sides re-check the ``init``-negotiated version against the
authenticated one).  Both nonces are fresh 16-byte values per
connection, so a recorded handshake replays against a *new* challenge
and its MAC no longer verifies: replay is rejected without any state.
The MACs are mutual — the worker refuses to compute before the
coordinator proves knowledge, and the coordinator refuses to ship the
(pickled) ``init`` payload before the worker proves it back.

Failure behaviour is fail-closed and symmetric:

* secret on the worker only → the worker refuses any legacy frame at
  the magic bytes (nothing read, nothing unpickled) and answers with a
  plain error frame naming the requirement;
* secret on the coordinator only → the worker (v3, secretless) rejects
  the HELLO with a reason; older workers simply drop the connection —
  either way the coordinator raises
  :class:`~repro.exceptions.DistSecurityError` instead of proceeding;
* wrong secret → ``REJECT`` after the PROVE frame; the reason string
  never says *which* side of the MAC mismatched.

Scope: the handshake authenticates *session establishment*.  Frames
after it carry no per-frame MAC, so the secret alone defeats
unsolicited connections (scanners, misconfigured peers) but not an
attacker who can inject into an established TCP stream — pair it with
TLS (:mod:`repro.eval.dist.certs`), whose record layer provides the
in-stream integrity, whenever the network itself is untrusted.

Secrets are provisioned out-of-band: the ``REPRO_DIST_SECRET``
environment variable or a ``--secret-file`` — never argv, which any
local user can read from the process table.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pathlib
import struct

from repro.eval.dist.protocol import (
    AUTH_PROTOCOL_VERSION,
    MAGIC,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    _recv_exact,
    bad_magic_error,
)
from repro.exceptions import DistSecurityError

__all__ = [
    "AUTH_MAGIC",
    "AuthError",
    "DistSecurityError",
    "client_handshake",
    "server_handshake",
    "compute_mac",
    "resolve_secret",
    "normalize_secret",
]

#: Distinct magic so a server can dispatch auth vs. legacy frames from
#: the first 4 bytes of a connection.
AUTH_MAGIC = b"RTA3"

_AUTH_PREFIX = struct.Struct("!4sBI")  # magic | kind | body length
_HELLO_BODY = struct.Struct("!16sI")  # nonce | protocol_max

_HELLO = 1
_CHALLENGE = 2
_PROVE = 3
_OK = 4
_REJECT = 5

_KIND_NAMES = {
    _HELLO: "hello",
    _CHALLENGE: "challenge",
    _PROVE: "prove",
    _OK: "ok",
    _REJECT: "reject",
}

NONCE_BYTES = 16
MAC_BYTES = hashlib.sha256().digest_size

#: Auth bodies are a nonce+version or one MAC; reject reasons are short.
MAX_AUTH_BODY = 1024

#: Domain separation for the handshake MACs — never reuse the secret
#: for anything keyed differently.
_MAC_CONTEXT = b"repro-dist-auth-v3\x00"


class AuthError(DistSecurityError):
    """The shared-secret handshake failed (or was refused)."""


def compute_mac(
    secret: bytes, role: bytes, nonce_c: bytes, nonce_w: bytes, version: int
) -> bytes:
    """The handshake proof for one role (``b"C"`` / ``b"W"``).

    Binds both per-connection nonces and the negotiated protocol
    version, so a transcript neither replays on a fresh connection nor
    authenticates a downgraded session.
    """
    message = (
        _MAC_CONTEXT
        + role
        + nonce_c
        + nonce_w
        + struct.pack("!I", version)
    )
    return hmac.new(secret, message, hashlib.sha256).digest()


def _send_auth(sock, kind: int, body: bytes) -> None:
    sock.sendall(_AUTH_PREFIX.pack(AUTH_MAGIC, kind, len(body)) + body)


def _recv_auth(sock, *, preread_magic: bytes | None = None):
    """Receive one auth frame; returns ``(kind, body)``.

    Only fixed-layout binary is parsed — this is the receive path both
    sides use while the peer is still untrusted.
    """
    if preread_magic is None:
        magic = _recv_exact(sock, 4, at_boundary=True)
    else:
        magic = preread_magic
    if magic == MAGIC:
        # The peer answered the auth exchange with a legacy pickled
        # frame.  Refusing to parse it (this path runs pre-trust) costs
        # the detail, but the situation is unambiguous enough to guide:
        # a TLS worker refusing a plaintext socket, or a peer that does
        # not speak the auth handshake at all.
        raise AuthError(
            "peer answered the authenticated handshake with a legacy "
            "plaintext frame — it refuses auth or requires TLS; align "
            "the secret and TLS configuration on both sides"
        )
    if magic != AUTH_MAGIC:
        raise bad_magic_error(magic, f"auth magic {AUTH_MAGIC!r}")
    rest = _recv_exact(
        sock, _AUTH_PREFIX.size - 4, at_boundary=False
    )
    kind, body_len = struct.unpack("!BI", rest)
    if body_len > MAX_AUTH_BODY:
        raise ProtocolError(
            f"auth frame body of {body_len} bytes exceeds {MAX_AUTH_BODY}"
        )
    body = _recv_exact(sock, body_len, at_boundary=False)
    return kind, body


def _reject_reason(body: bytes) -> str:
    return body.decode("utf-8", errors="replace") or "no reason given"


def _unpack_hello_body(kind: int, body: bytes) -> tuple[bytes, int]:
    if len(body) != _HELLO_BODY.size:
        raise ProtocolError(
            f"auth {_KIND_NAMES.get(kind, kind)} body must be "
            f"{_HELLO_BODY.size} bytes, got {len(body)}"
        )
    nonce, protocol_max = _HELLO_BODY.unpack(body)
    return nonce, protocol_max


def _auth_version(peer_max: int, local_max: int) -> int:
    """Session version an authenticated connection will run at."""
    version = min(local_max, peer_max)
    if version < AUTH_PROTOCOL_VERSION:
        raise AuthError(
            f"peer's highest protocol version ({peer_max}) predates "
            f"authenticated sessions (version {AUTH_PROTOCOL_VERSION}); "
            "upgrade the peer or remove the shared secret"
        )
    return version


def _clamp_local_max(protocol_max: int | None) -> int:
    if protocol_max is None:
        return PROTOCOL_VERSION
    return min(PROTOCOL_VERSION, protocol_max)


def client_handshake(
    sock, secret: bytes, *, protocol_max: int | None = None
) -> int:
    """Run the coordinator side of the handshake; returns the version.

    Raises :class:`AuthError` on refusal/mismatch and
    :class:`ProtocolError` on a malformed exchange.  Nothing pickled is
    read at any point; the caller only sends the ``init`` payload after
    this returns (i.e. after the worker proved secret knowledge).
    ``protocol_max`` pins the advertised maximum below this build's
    (wire-version pinning); the MAC then binds the pinned version — the
    same one the subsequent ``init`` will offer — so the downgrade check
    stays sound under pinning.
    """
    try:
        return _client_handshake(sock, secret, _clamp_local_max(protocol_max))
    except (ConnectionResetError, BrokenPipeError) as exc:
        # A worker that chokes on the auth magic closes with our hello
        # bytes unread, which surfaces here as a reset rather than a
        # clean EOF.
        raise AuthError(
            "worker reset the connection during the shared-secret "
            "handshake — it is an older (pre-v3) build, or refused "
            "the auth hello"
        ) from exc


def _client_handshake(sock, secret: bytes, local_max: int) -> int:
    nonce_c = os.urandom(NONCE_BYTES)
    _send_auth(sock, _HELLO, _HELLO_BODY.pack(nonce_c, local_max))
    try:
        kind, body = _recv_auth(sock)
    except ConnectionClosed:
        raise AuthError(
            "worker closed the connection during the shared-secret "
            "handshake — it is an older (pre-v3) build, or refused the "
            "auth hello"
        ) from None
    if kind == _REJECT:
        raise AuthError(
            f"worker rejected authentication: {_reject_reason(body)}"
        )
    if kind != _CHALLENGE:
        raise ProtocolError(
            f"expected an auth challenge, got "
            f"{_KIND_NAMES.get(kind, kind)!r}"
        )
    nonce_w, worker_max = _unpack_hello_body(kind, body)
    version = _auth_version(worker_max, local_max)
    _send_auth(
        sock, _PROVE, compute_mac(secret, b"C", nonce_c, nonce_w, version)
    )
    try:
        kind, body = _recv_auth(sock)
    except ConnectionClosed:
        raise AuthError(
            "worker closed the connection after the auth proof "
            "(secret mismatch?)"
        ) from None
    if kind == _REJECT:
        raise AuthError(
            f"worker rejected the authentication proof "
            f"({_reject_reason(body)}) — do both sides hold the same "
            f"secret?"
        )
    if kind != _OK:
        raise ProtocolError(
            f"expected auth ok, got {_KIND_NAMES.get(kind, kind)!r}"
        )
    expected = compute_mac(secret, b"W", nonce_c, nonce_w, version)
    if len(body) != MAC_BYTES or not hmac.compare_digest(body, expected):
        raise AuthError(
            "worker failed to prove knowledge of the shared secret; "
            "refusing to ship the sweep payload"
        )
    return version


def server_handshake(
    sock,
    secret: bytes | None,
    *,
    preread_magic: bytes | None = None,
    protocol_max: int | None = None,
) -> int:
    """Run the worker side of the handshake; returns the version.

    ``secret=None`` (a coordinator demanding auth from a secretless
    worker) rejects with a reason instead of hanging the peer.  A wrong
    proof is rejected with a deliberately symmetric message, before any
    payload frame is read.  ``protocol_max`` pins the advertised
    maximum below this build's, mirroring
    :func:`client_handshake`'s pinning semantics.
    """
    local_max = _clamp_local_max(protocol_max)
    kind, body = _recv_auth(sock, preread_magic=preread_magic)
    if kind != _HELLO:
        raise ProtocolError(
            f"expected an auth hello, got {_KIND_NAMES.get(kind, kind)!r}"
        )
    if secret is None:
        _send_auth(
            sock,
            _REJECT,
            b"no shared secret configured on this worker "
            b"(set REPRO_DIST_SECRET or --secret-file)",
        )
        raise AuthError(
            "coordinator requested authentication but this worker has "
            "no shared secret configured"
        )
    nonce_c, coordinator_max = _unpack_hello_body(kind, body)
    version = _auth_version(coordinator_max, local_max)
    nonce_w = os.urandom(NONCE_BYTES)
    _send_auth(
        sock, _CHALLENGE, _HELLO_BODY.pack(nonce_w, local_max)
    )
    kind, body = _recv_auth(sock)
    if kind != _PROVE:
        raise ProtocolError(
            f"expected an auth proof, got {_KIND_NAMES.get(kind, kind)!r}"
        )
    expected = compute_mac(secret, b"C", nonce_c, nonce_w, version)
    if len(body) != MAC_BYTES or not hmac.compare_digest(body, expected):
        _send_auth(sock, _REJECT, b"shared-secret authentication failed")
        raise AuthError(
            "peer failed shared-secret authentication; session "
            "rejected before any payload was read"
        )
    _send_auth(
        sock, _OK, compute_mac(secret, b"W", nonce_c, nonce_w, version)
    )
    return version


def normalize_secret(secret) -> bytes | None:
    """Coerce a configured secret to non-empty bytes (or ``None``)."""
    if secret is None:
        return None
    if isinstance(secret, str):
        secret = secret.encode("utf-8")
    elif not isinstance(secret, (bytes, bytearray)):
        raise TypeError(
            f"secret must be str or bytes, got {type(secret).__name__}"
        )
    secret = bytes(secret).strip()
    if not secret:
        raise ValueError("shared secret must not be empty")
    return secret


def resolve_secret(
    secret_file=None, *, env: dict | None = None
) -> bytes | None:
    """Pick the shared secret for a CLI/launcher invocation.

    Precedence: an explicit ``--secret-file`` (first line, stripped),
    then the ``REPRO_DIST_SECRET`` environment variable; otherwise no
    secret (``None`` — authentication off).  Files keep the token out
    of argv and shell history; the env var is how launchers hand the
    token to autolaunched workers.
    """
    if env is None:
        env = os.environ
    if secret_file is not None:
        text = pathlib.Path(secret_file).read_text(encoding="utf-8")
        secret = text.splitlines()[0].strip() if text.strip() else ""
        if not secret:
            raise ValueError(f"secret file {secret_file!r} is empty")
        return normalize_secret(secret)
    from_env = env.get("REPRO_DIST_SECRET", "").strip()
    if from_env:
        return normalize_secret(from_env)
    return None
