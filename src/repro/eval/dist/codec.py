"""Schema'd binary codecs for protocol v4 session payloads.

Protocol v4 replaces the three pickled payloads of a sweep session with
explicit, versioned encodings — the last deserialization surface of the
distributed backend after v3 closed the unauthenticated one:

* **init context** (:func:`encode_context` / :func:`decode_context`):
  one canonical-JSON document carrying the instance in its
  :func:`repro.io.instance_to_dict` form, the coordinator-computed
  :func:`repro.io.instance_fingerprint` (so worker-side cache keys are
  equal to the coordinator's by construction, not by re-derivation),
  and the config/options dataclasses as plain field dicts;
* **task chunks** (:func:`encode_tasks` / :func:`decode_tasks`):
  fixed-width struct records per :class:`repro.eval.parallel.ScenarioTask`
  with deduplicated side tables for factory names, factory kwargs and
  seed entropy, and the PCG64 generator state packed as two 128-bit
  integers plus the :class:`numpy.random.SeedSequence` coordinates
  (:func:`repro.utils.rng.generator_spec`) — bit-exact for both draw
  and spawn behaviour.  Decode returns seeds as lazy
  :class:`repro.utils.rng.SeedSpec` values: every consumer coerces
  through :func:`repro.utils.rng.as_generator`, so the ~15µs-per-seed
  numpy reconstruction is deferred into the pool children at execution
  time instead of serialising chunk decode;
* **chunk results** reuse the packed float64 transport that predates
  v4 (:func:`repro.eval.parallel._pack_error_dicts`); the descriptor
  rides in the v4 JSON frame header, so results were already
  pickle-free and only needed the header encoding to change.

Fallback contract: :class:`CodecError` means "this payload cannot be
carried losslessly by the v4 codec" — a non-JSON-native factory kwarg,
an exotic node id, a non-PCG64 seed.  The coordinator catches it while
*encoding* and offers protocol 3 for the sweep instead (pickled wire,
unchanged semantics); it is never acceptable to coerce and ship, since
a lossy wire could silently break the bit-identity guarantee between
serial and remote execution.

The codec is versioned independently of the protocol handshake: every
encoded payload leads with :data:`CODEC_VERSION`, so a future v5 frame
can carry a v1 codec payload during upgrades.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.eval.dist.protocol import ProtocolError
from repro.eval.parallel import ScenarioTask
from repro.io import instance_fingerprint, instance_from_dict, instance_to_dict
from repro.simulate.experiment import ExperimentConfig
from repro.topogen.instance import TomographyInstance
from repro.utils.rng import SeedSpec, generator_spec

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "encode_context",
    "decode_context",
    "encode_tasks",
    "decode_tasks",
]

#: Version tag leading every encoded payload (context and chunk alike).
CODEC_VERSION = 1


class CodecError(ProtocolError):
    """The payload cannot be carried losslessly by the v4 codec.

    On the encoding side this is a *fallback signal* (the coordinator
    offers the pickled v3 wire instead); on the decoding side it means
    a corrupt or version-skewed payload and aborts the session.
    """


# ----------------------------------------------------------------------
# JSON exactness
# ----------------------------------------------------------------------
#: Reserved object key marking a tuple in the wire form.  JSON has no
#: tuple type and a silent tuple→list rewrite would change what the
#: scenario factories receive, so tuples are tagged explicitly and
#: restored on decode; a payload that uses the tag as a real key is
#: rejected rather than mis-decoded.
_TUPLE_TAG = "__tuple__"


def _to_wire_value(value, where: str):
    """Convert ``value`` to a JSON document that decodes back *exactly*.

    JSON-native scalars pass through; tuples become tagged objects
    (:data:`_TUPLE_TAG`) so :func:`_from_wire_value` restores their
    type; anything else — sets, numpy values, arbitrary objects, or
    dicts with non-string keys, all of which JSON would drop or rewrite
    — raises :class:`CodecError` and the caller falls back to the
    pickled wire.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {
            _TUPLE_TAG: [
                _to_wire_value(item, f"{where}[{index}]")
                for index, item in enumerate(value)
            ]
        }
    if isinstance(value, list):
        return [
            _to_wire_value(item, f"{where}[{index}]")
            for index, item in enumerate(value)
        ]
    if isinstance(value, dict):
        if _TUPLE_TAG in value:
            raise CodecError(
                f"{where} uses the reserved key {_TUPLE_TAG!r}"
            )
        converted = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise CodecError(
                    f"{where} has a non-string key {key!r}; JSON would "
                    "rewrite it and break the exact round-trip"
                )
            converted[key] = _to_wire_value(item, f"{where}[{key!r}]")
        return converted
    raise CodecError(
        f"{where} contains a {type(value).__name__}, which does not "
        "round-trip exactly through JSON"
    )


def _from_wire_value(value):
    """Inverse of :func:`_to_wire_value`."""
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(
                _from_wire_value(item) for item in value[_TUPLE_TAG]
            )
        return {key: _from_wire_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_from_wire_value(item) for item in value]
    return value


def _encode_json(value) -> bytes:
    return json.dumps(value, separators=(",", ":")).encode("utf-8")


# ----------------------------------------------------------------------
# Init context
# ----------------------------------------------------------------------
def _dataclass_doc(value, expected_type, where: str):
    if value is None:
        return None
    if type(value) is not expected_type:
        raise CodecError(
            f"{where} must be {expected_type.__name__} or None for the "
            f"v4 wire, got {type(value).__name__}"
        )
    return _to_wire_value(asdict(value), where)


def encode_context(context) -> bytes:
    """Encode the ``(instance, config, options)`` init triple.

    Returns the canonical-JSON context document as UTF-8 bytes.  Raises
    :class:`CodecError` when any compute-relevant part would not
    survive the JSON round-trip exactly: exotic node ids, or config /
    options objects that are not the stock dataclasses.  Instance
    *metadata* rides in its :func:`repro.io.instance_to_dict` coerced
    form — the same coercion the on-disk instance format applies — and
    is deliberately exempt from the exactness rule: nothing downstream
    of the wire consumes it for compute, and cache keys use the shipped
    coordinator-side fingerprint, never a worker-side re-derivation.
    """
    try:
        instance, config, options = context
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed context triple: {exc}") from exc
    if not isinstance(instance, TomographyInstance):
        raise CodecError(
            f"context instance must be a TomographyInstance, got "
            f"{type(instance).__name__}"
        )
    for link in instance.topology.links:
        if not isinstance(link.src, (str, int)) or not isinstance(
            link.dst, (str, int)
        ):
            raise CodecError(
                f"link {link.name!r} has non-JSON node ids "
                f"({type(link.src).__name__}/{type(link.dst).__name__}); "
                "the pickled wire is the only lossless transport for them"
            )
    doc = {
        "codec": CODEC_VERSION,
        "fingerprint": instance_fingerprint(instance),
        "instance": instance_to_dict(instance),
        "config": _dataclass_doc(config, ExperimentConfig, "config"),
        "options": _dataclass_doc(options, AlgorithmOptions, "options"),
    }
    return _encode_json(doc)


def decode_context(data) -> tuple[tuple, str]:
    """Decode :func:`encode_context` output.

    Returns ``((instance, config, options), fingerprint)``.  The
    fingerprint is the coordinator's, shipped rather than recomputed,
    so worker cache keys cannot drift from the coordinator's even if
    fingerprinting details ever change between builds.
    """
    try:
        doc = json.loads(bytes(data).decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CodecError(f"malformed v4 context payload: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("codec") != CODEC_VERSION:
        raise CodecError(
            f"unsupported v4 context codec "
            f"{doc.get('codec') if isinstance(doc, dict) else doc!r}"
        )
    fingerprint = doc.get("fingerprint")
    if not isinstance(fingerprint, str):
        raise CodecError("v4 context is missing its instance fingerprint")
    try:
        instance = instance_from_dict(doc["instance"])
        config = (
            ExperimentConfig(**_from_wire_value(doc["config"]))
            if doc.get("config") is not None
            else None
        )
        options = (
            AlgorithmOptions(**_from_wire_value(doc["options"]))
            if doc.get("options") is not None
            else None
        )
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"malformed v4 context document: {exc!r}") from exc
    return (instance, config, options), fingerprint


# ----------------------------------------------------------------------
# Task chunks
# ----------------------------------------------------------------------
_CHUNK_HEAD = struct.Struct("!BIHII")  # codec | n_tasks | n_fac | n_kw | n_ent
_TASK_HEAD = struct.Struct("!qHI")  # group | factory idx | kwargs idx
_SEED_STATE = struct.Struct("!16s16sBQ")  # state | inc | has_uint32 | uinteger
_SEED_SEQ = struct.Struct("!IBQB")  # entropy idx | pool | n_spawned | key len
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

_SEED_NONE = 0
_SEED_PCG64 = 1


class _Table:
    """Deduplicating byte-string side table (insertion-ordered)."""

    def __init__(self) -> None:
        self.index: dict[bytes, int] = {}
        self.entries: list[bytes] = []

    def add(self, entry: bytes) -> int:
        slot = self.index.get(entry)
        if slot is None:
            slot = len(self.entries)
            self.index[entry] = slot
            self.entries.append(entry)
        return slot


class _ValueTable:
    """Side table deduplicated on the (hashable) value itself.

    Entries are JSON-serialized once, at assembly time, instead of once
    per occurrence — the sweep's seed entropies are a handful of ints
    repeated across thousands of task records, so encoding before
    deduplicating dominated the original encoder's profile.
    """

    def __init__(self) -> None:
        self.index: dict = {}
        self.values: list = []

    def add(self, value) -> int:
        slot = self.index.get(value)
        if slot is None:
            slot = len(self.values)
            self.index[value] = slot
            self.values.append(value)
        return slot

    def serialized(self) -> list[bytes]:
        return [_encode_json(value) for value in self.values]


def _encode_seed(parts: list, seed, entropy_table: _ValueTable) -> None:
    if seed is None:
        parts.append(b"\x00")
        return
    if isinstance(seed, SeedSpec):
        # Re-encoding a decoded task: the lazy seed already carries the
        # exact wire fields, no generator to describe.
        state, inc = seed.state, seed.inc
        has_uint32, uinteger = seed.has_uint32, seed.uinteger
        entropy_idx = entropy_table.add(seed.entropy)
        spawn_key = seed.spawn_key
        pool_size = seed.pool_size
        n_spawned = seed.n_children_spawned
    else:
        try:
            spec = generator_spec(seed)
        except ValueError as exc:
            raise CodecError(
                f"task seed not v4-encodable: {exc}"
            ) from exc
        state, inc = spec["state"], spec["inc"]
        has_uint32, uinteger = spec["has_uint32"], spec["uinteger"]
        entropy_idx = entropy_table.add(spec["entropy"])
        spawn_key = spec["spawn_key"]
        pool_size = spec["pool_size"]
        n_spawned = spec["n_children_spawned"]
    try:
        parts.append(bytes([_SEED_PCG64]))
        parts.append(
            _SEED_STATE.pack(
                state.to_bytes(16, "big"),
                inc.to_bytes(16, "big"),
                has_uint32,
                uinteger,
            )
        )
        parts.append(
            _SEED_SEQ.pack(
                entropy_idx,
                pool_size,
                n_spawned,
                len(spawn_key),
            )
        )
        if spawn_key:
            parts.append(
                struct.pack(f"!{len(spawn_key)}Q", *spawn_key)
            )
    except (struct.error, OverflowError) as exc:
        raise CodecError(
            f"task seed coordinates overflow the v4 record: {exc}"
        ) from exc


def encode_tasks(tasks) -> bytes:
    """Encode one chunk's :class:`ScenarioTask` list as binary records.

    Factory names, kwargs documents and seed entropies are deduplicated
    into side tables (tasks of one sweep share them almost entirely);
    each task is then a fixed-width record of table indices plus its
    two packed generator states.  Raises :class:`CodecError` whenever a
    field would not round-trip exactly — the coordinator then falls
    back to the pickled v3 wire for the whole sweep.
    """
    factories = _Table()
    kwargs_table = _Table()
    entropy_table = _ValueTable()
    # Identity-keyed kwargs dedup: tasks of one sweep point share their
    # kwargs *value objects* (scenario_tasks copies the dict shallowly),
    # so a hit here skips re-encoding without any equality subtlety —
    # identical objects serialize identically by construction.  The
    # task list keeps every value alive for the duration of the encode,
    # so ids cannot be recycled under the cache.  Anything that defeats
    # the identity key (non-string keys, unsortable mixes) just takes
    # the encode-then-dedup path below.
    ident_index: dict = {}
    records: list[bytes] = []
    for task in tasks:
        if not isinstance(task, ScenarioTask):
            raise CodecError(
                f"v4 chunks carry ScenarioTask records, got "
                f"{type(task).__name__}"
            )
        factory_idx = factories.add(task.factory.encode("utf-8"))
        kwargs = task.factory_kwargs
        try:
            ident_key = tuple(
                sorted((key, id(value)) for key, value in kwargs.items())
            )
        except TypeError:
            ident_key = None
        kwargs_idx = (
            ident_index.get(ident_key) if ident_key is not None else None
        )
        if kwargs_idx is None:
            kwargs_idx = kwargs_table.add(
                _encode_json(
                    _to_wire_value(
                        kwargs,
                        f"factory_kwargs of {task.factory!r}",
                    )
                )
            )
            if ident_key is not None:
                ident_index[ident_key] = kwargs_idx
        try:
            records.append(
                _TASK_HEAD.pack(task.group, factory_idx, kwargs_idx)
            )
        except struct.error as exc:
            raise CodecError(
                f"task record overflows the v4 layout: {exc}"
            ) from exc
        _encode_seed(records, task.scenario_seed, entropy_table)
        _encode_seed(records, task.run_seed, entropy_table)
    parts = [
        _CHUNK_HEAD.pack(
            CODEC_VERSION,
            len(tasks),
            len(factories.entries),
            len(kwargs_table.entries),
            len(entropy_table.values),
        )
    ]
    for entry in factories.entries:
        parts.append(_U16.pack(len(entry)))
        parts.append(entry)
    for entries in (kwargs_table.entries, entropy_table.serialized()):
        for entry in entries:
            parts.append(_U32.pack(len(entry)))
            parts.append(entry)
    parts.extend(records)
    return b"".join(parts)


def _decode_seed(buffer, offset: int, entropies: list):
    kind = buffer[offset]
    offset += 1
    if kind == _SEED_NONE:
        return None, offset
    if kind != _SEED_PCG64:
        raise CodecError(f"unknown v4 seed kind {kind}")
    state, inc, has_uint32, uinteger = _SEED_STATE.unpack_from(
        buffer, offset
    )
    offset += _SEED_STATE.size
    entropy_idx, pool_size, n_spawned, key_len = _SEED_SEQ.unpack_from(
        buffer, offset
    )
    offset += _SEED_SEQ.size
    spawn_key = struct.unpack_from(f"!{key_len}Q", buffer, offset)
    offset += 8 * key_len
    if entropy_idx >= len(entropies):
        raise CodecError(
            f"v4 seed references entropy entry {entropy_idx} of "
            f"{len(entropies)}"
        )
    # Decode to a lazy SeedSpec rather than an eager Generator: numpy
    # reconstruction (~15µs per seed) dominates chunk decode, and every
    # consumer coerces seeds through as_generator(), so materialisation
    # defers to the pool children at execution time where it parallelises.
    spec = SeedSpec(
        int.from_bytes(state, "big"),
        int.from_bytes(inc, "big"),
        has_uint32,
        uinteger,
        entropies[entropy_idx],
        spawn_key,
        pool_size,
        n_spawned,
    )
    return spec, offset


def decode_tasks(data) -> list[ScenarioTask]:
    """Decode :func:`encode_tasks` output back into task records."""
    buffer = memoryview(data)
    try:
        codec, n_tasks, n_factories, n_kwargs, n_entropy = (
            _CHUNK_HEAD.unpack_from(buffer, 0)
        )
        if codec != CODEC_VERSION:
            raise CodecError(f"unsupported v4 chunk codec {codec}")
        offset = _CHUNK_HEAD.size
        factories: list[str] = []
        for _ in range(n_factories):
            (length,) = _U16.unpack_from(buffer, offset)
            offset += _U16.size
            factories.append(
                bytes(buffer[offset : offset + length]).decode("utf-8")
            )
            offset += length
        kwargs_docs: list[dict] = []
        for _ in range(n_kwargs):
            (length,) = _U32.unpack_from(buffer, offset)
            offset += _U32.size
            kwargs_docs.append(
                _from_wire_value(
                    json.loads(bytes(buffer[offset : offset + length]))
                )
            )
            offset += length
        entropies: list = []
        for _ in range(n_entropy):
            (length,) = _U32.unpack_from(buffer, offset)
            offset += _U32.size
            entropies.append(
                json.loads(bytes(buffer[offset : offset + length]))
            )
            offset += length
        tasks: list[ScenarioTask] = []
        for _ in range(n_tasks):
            group, factory_idx, kwargs_idx = _TASK_HEAD.unpack_from(
                buffer, offset
            )
            offset += _TASK_HEAD.size
            scenario_seed, offset = _decode_seed(buffer, offset, entropies)
            run_seed, offset = _decode_seed(buffer, offset, entropies)
            if factory_idx >= len(factories) or kwargs_idx >= len(
                kwargs_docs
            ):
                raise CodecError(
                    "v4 task record references a missing table entry"
                )
            tasks.append(
                ScenarioTask(
                    group=group,
                    factory=factories[factory_idx],
                    # Each task gets a private kwargs dict, matching
                    # scenario_tasks(); a shared dict would let one
                    # task's consumer mutate another's.
                    factory_kwargs=dict(kwargs_docs[kwargs_idx]),
                    scenario_seed=scenario_seed,
                    run_seed=run_seed,
                )
            )
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"malformed v4 chunk payload: {exc!r}") from exc
    if offset != len(buffer):
        raise CodecError(
            f"v4 chunk payload has {len(buffer) - offset} trailing bytes"
        )
    return tasks
