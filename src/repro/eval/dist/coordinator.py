"""Coordinator side of the distributed sweep backend.

:class:`RemoteExecutor` implements the engine's
:class:`repro.eval.parallel.TaskExecutor` interface over a set of
workers — either already-listening ``host:port`` endpoints (started by
hand, by CI, or via ``ssh host repro-tomography worker``) or a fleet it
launches itself through a :mod:`repro.eval.dist.launch` launcher and
tears down when the sweep ends.  One thread per worker drives a
request/response session:

* the (instance, config, options) triple is shipped **once** per worker
  session, never per chunk — as the pickled ``init`` payload on legacy
  (v1–v3) sessions, and as a canonical-JSON ``context`` frame on
  protocol-v4 sessions (:mod:`repro.eval.dist.codec`), which are
  pickle-free in both directions;
* v4 sessions with a same-host worker (loopback endpoint, or a
  ``LocalLauncher`` fleet) can further move chunk and result payloads
  through shared-memory rings (:mod:`repro.eval.dist.shm`) — frames
  then carry ``slot``/``size`` references while the bytes skip the
  socket entirely (``transport=`` selects; ``"auto"`` detects);
* the handshake negotiates a protocol version
  (:func:`repro.eval.dist.protocol.negotiate_version`); version-2
  workers advertise a *capacity* (parallel chunk slots, CPU count by
  default) and the session thread keeps up to that many chunks in
  flight, so a capacity-2 host computes two chunks while a capacity-1
  host computes one — claims are sized proportionally to capacity;
* each thread claims chunks from the shared :class:`ChunkBoard`, sends
  them, and settles results as they come back — chunk results are one
  packed float64 payload (the in-host pool's transport) and are yielded
  to the engine as they complete, in whatever order they finish;
* when a worker dies (connection reset, torn frame, handshake failure),
  its outstanding chunks are requeued at the *front* of the pending
  queue and the surviving workers absorb them — a death costs at most
  the chunks that were in flight;
* with ``straggler_timeout`` set, an idle worker speculatively re-runs a
  chunk that has been outstanding longer than the timeout (up to
  ``max_attempts`` total executions); the board steers the duplicate
  toward the fastest idle worker, the first result wins, and duplicates
  are discarded, which is safe because chunks are pure functions of
  their tasks.

Determinism: the schedule never touches the tasks — every task carries
its own pre-spawned generators and results are keyed by chunk index —
so remote execution is bit-identical to serial execution no matter how
chunks land on workers, how many die, or how many duplicates race.

Wire security (protocol v3): ``secret=`` arms the mutual HMAC
handshake of :mod:`repro.eval.dist.auth` — run before the pickled init
payload is sent and before anything a worker says is unpickled — and
``ssl_context=`` TLS-wraps every worker socket
(:func:`repro.eval.dist.certs.client_context`).  A sweep whose *every*
worker is refused on security grounds raises
:class:`~repro.exceptions.DistSecurityError` with the refusal reason
instead of the generic lost-chunks error: a misconfigured secret
refuses identically on every retry, so it must fail closed and
loudly.

Failure contract (shared with the serial and local executors): every
chunk settles before :meth:`RemoteExecutor.map_chunks` raises, so the
engine writes completed chunks back to the cache even when the sweep
ultimately fails.  Application errors reported by a worker surface as
:class:`RemoteTaskError` entries in the
:class:`repro.eval.parallel.ChunkExecutionError`; losing *all* workers
surfaces the last transport error.
"""

from __future__ import annotations

import dataclasses
import pickle
import queue
import random
import select
import socket
import ssl
import threading
import time
from collections import deque
from typing import NamedTuple

from repro.eval.dist.auth import (
    AuthError,
    client_handshake,
    normalize_secret,
)
from repro.eval.dist.codec import CodecError, encode_context, encode_tasks
from repro.eval.dist.protocol import (
    CAPACITY_PROTOCOL_VERSION,
    CODEC_PROTOCOL_VERSION,
    MAGIC_V4,
    PROTOCOL_BASE_VERSION,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    TlsMismatchError,
    disable_nagle,
    payload_to_buffer,
    read_magic,
    recv_json_message,
    recv_message,
    send_json_message,
    send_message,
)
from repro.eval.dist.shm import (
    ShmError,
    create_ring,
    host_is_loopback,
)
from repro.eval.parallel import (
    ChunkExecutionError,
    TaskExecutor,
    _chunk_tasks,
    _execute_task,
    _unpack_error_dicts,
)
from repro.exceptions import DistSecurityError

__all__ = [
    "ChunkBoard",
    "ChunkDeadlineExceeded",
    "HostSpec",
    "RemoteExecutor",
    "RemoteTaskError",
    "SweepStats",
    "WorkerUnresponsiveError",
    "parse_hosts",
]


def _is_security_failure(exc: BaseException) -> bool:
    """Does this worker-down error mean a security misconfiguration?

    Auth refusals and TLS failures are configuration problems that will
    refuse identically on every retry, so a sweep that loses *all* its
    workers to them fails closed with operator guidance instead of the
    generic lost-chunks report.
    """
    return isinstance(exc, (DistSecurityError, ssl.SSLError))


class RemoteTaskError(RuntimeError):
    """A worker reported an application error while executing a chunk.

    ``remote_traceback`` carries the worker-side traceback text.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


class WorkerUnresponsiveError(RuntimeError):
    """A heartbeat-armed worker went silent past the liveness budget.

    The socket is still connected — a SIGSTOP'd process, a hung VM, or
    a worker wedged inside a stalled shm ring all keep their TCP
    session alive — but no frame (result, pong, anything) has arrived
    within the silence threshold.  The session is torn down and its
    chunks requeued exactly like a socket death.
    """


class ChunkDeadlineExceeded(RuntimeError):
    """An in-flight chunk outlived the per-chunk deadline budget.

    Distinct from heartbeat silence: the worker may be demonstrably
    alive (pongs flowing) yet never able to finish — e.g. its data
    plane is stalled while its control thread beats.  The deadline is
    the per-session hard bound; cross-worker speculation
    (``straggler_timeout``) stays the soft one.
    """


@dataclasses.dataclass
class SweepStats:
    """Fault-tolerance and transport counters for one sweep.

    Collected by :meth:`RemoteExecutor.map_chunks` (one fresh object
    per sweep, exposed as ``executor.last_sweep_stats``) so silent
    degradation — shm sessions quietly falling back to inline socket
    payloads, retried connects, requeued chunks — is visible instead of
    being inferred from wall-clock anomalies.  Increments take the
    stats lock: session threads report concurrently.
    """

    workers: int = 0
    sessions: int = 0
    shm_sessions: int = 0
    #: Result frames that arrived inline on a session that *had* shm
    #: rings (slot exhausted or payload outgrew the slot) — the
    #: degradation satellite counter, also broken out per session in
    #: :attr:`inline_by_session`.
    shm_inline_results: int = 0
    #: Chunk payloads sent inline on an shm session (chunk ring full).
    shm_inline_chunks: int = 0
    connect_retries: int = 0
    worker_losses: int = 0
    heartbeat_timeouts: int = 0
    deadline_timeouts: int = 0
    requeued_chunks: int = 0
    serial_fallback_chunks: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        #: ``address → inline fallback frames`` for shm sessions.
        self.inline_by_session: dict[str, int] = {}

    def count(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def note_inline(self, address: str, *, kind: str = "result") -> None:
        with self._lock:
            if kind == "result":
                self.shm_inline_results += 1
            else:
                self.shm_inline_chunks += 1
            self.inline_by_session[address] = (
                self.inline_by_session.get(address, 0) + 1
            )

    def render(self) -> str:
        lines = [
            f"{self.workers} workers, {self.sessions} sessions "
            f"({self.shm_sessions} shm), "
            f"{self.connect_retries} connect retries, "
            f"{self.worker_losses} worker losses",
            f"{self.heartbeat_timeouts} heartbeat timeouts, "
            f"{self.deadline_timeouts} deadline timeouts, "
            f"{self.requeued_chunks} chunks requeued, "
            f"{self.serial_fallback_chunks} chunks finished in-process",
        ]
        inline = self.shm_inline_results + self.shm_inline_chunks
        if self.shm_sessions or inline:
            per_session = ", ".join(
                f"{address}: {count}"
                for address, count in sorted(self.inline_by_session.items())
            )
            lines.append(
                f"shm inline fallbacks: {self.shm_inline_results} "
                f"results, {self.shm_inline_chunks} chunks"
                + (f" ({per_session})" if per_session else "")
            )
        return "\n".join(lines)


def _backoff_delays(
    attempts: int,
    *,
    base: float = 0.5,
    cap: float = 8.0,
    jitter: float = 0.5,
    rng: random.Random | None = None,
):
    """Exponential backoff delays with jitter for ``attempts`` tries.

    Yields ``attempts - 1`` sleep durations (there is no sleep after
    the final failure): ``base * 2^i`` capped at ``cap``, scaled by a
    uniform ±``jitter`` factor so a fleet of session threads retrying a
    rebooting worker doesn't reconnect in lockstep.  Jitter affects
    timing only — never results — so it needs no seeding for
    determinism.
    """
    rng = rng if rng is not None else random
    for attempt in range(max(0, attempts - 1)):
        delay = min(cap, base * (2.0 ** attempt))
        yield delay * (1.0 + jitter * (2.0 * rng.random() - 1.0))


def _wait_readable(sock, timeout: float) -> bool:
    """Bounded wait for the next frame byte, TLS-buffer aware.

    An ``SSLSocket`` may hold already-decrypted frames in its internal
    buffer while the underlying fd shows nothing readable — a plain
    ``select`` there would idle until the *next* TLS record and
    misdiagnose a healthy session as silent — so buffered TLS data
    short-circuits the poll.  Errors report "readable" so the actual
    ``recv`` raises the real, classified exception.
    """
    pending = getattr(sock, "pending", None)
    if pending is not None:
        try:
            if pending():
                return True
        except (OSError, ValueError):
            return True
    try:
        readable, _, _ = select.select([sock], [], [], timeout)
    except (OSError, ValueError):
        return True
    return bool(readable)


class HostSpec(NamedTuple):
    """One worker host: connect endpoint plus an optional SSH login."""

    host: str
    port: int
    user: str | None = None

    @property
    def endpoint(self) -> tuple[str, int]:
        """The ``(host, port)`` pair sockets connect to."""
        return (self.host, self.port)

    @property
    def ssh_target(self) -> str:
        """The ``[user@]host`` argument an SSH launcher logs in with."""
        if self.user is None:
            return self.host
        return f"{self.user}@{self.host}"

    @property
    def address(self) -> str:
        host = f"[{self.host}]" if ":" in self.host else self.host
        return f"{host}:{self.port}"


def parse_hosts(hosts) -> list[HostSpec]:
    """Normalise a hosts spec into :class:`HostSpec` entries.

    Accepts a comma-separated string (``"a:7100,b:7100"``), an iterable
    of ``"[user@]host:port"`` strings, or an iterable of ``(host, port)``
    pairs / :class:`HostSpec` records.  IPv6 literals use brackets:
    ``"[::1]:7100"``; the optional ``user@`` prefix is carried for SSH
    launchers and ignored when connecting.  Duplicate ``host:port``
    endpoints and out-of-range ports are rejected up front — a duplicate
    would silently double-assign the same worker, and a bad port would
    only surface later as an opaque socket error.
    """
    if isinstance(hosts, str):
        hosts = [piece for piece in hosts.split(",") if piece.strip()]
    specs: list[HostSpec] = []
    for entry in hosts:
        user = None
        if isinstance(entry, HostSpec):
            host, port, user = entry
        elif isinstance(entry, (tuple, list)):
            host, port = entry
        else:
            text = str(entry).strip()
            if "@" in text:
                user, _, text = text.partition("@")
                user = user.strip() or None
            if text.startswith("["):
                bracket = text.find("]")
                if bracket < 0 or not text[bracket + 1 :].startswith(":"):
                    raise ValueError(
                        f"malformed IPv6 endpoint {text!r}; expected "
                        "'[addr]:port'"
                    )
                host, port = text[1:bracket], text[bracket + 2 :]
            else:
                host, _, port = text.rpartition(":")
                if not host:
                    raise ValueError(
                        f"malformed endpoint {text!r}; expected 'host:port'"
                    )
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise ValueError(
                f"malformed endpoint port in {entry!r}"
            ) from None
        if not 0 < port < 65536:
            raise ValueError(
                f"endpoint port out of range in {entry!r}: port must be "
                f"in [1, 65535], got {port}"
            )
        spec = HostSpec(str(host), port, user)
        if any(other.endpoint == spec.endpoint for other in specs):
            raise ValueError(
                f"duplicate worker endpoint {spec.address} in hosts "
                "spec; every worker must be listed exactly once"
            )
        specs.append(spec)
    if not specs:
        raise ValueError("at least one worker endpoint is required")
    return specs


def _enable_keepalive(sock: socket.socket) -> None:
    """Arm TCP keepalive so a host that vanishes without a FIN/RST
    (power loss, network partition) surfaces as a socket error in
    minutes rather than blocking ``recv`` forever.

    The aggressive probe schedule (idle 60 s, 10 s interval, 3 probes
    → dead-host detection in ~90 s) uses Linux/BSD option names and is
    skipped wholesale where unavailable; plain ``SO_KEEPALIVE`` with
    kernel defaults still bounds the hang.
    """
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for name, value in (
        ("TCP_KEEPIDLE", 60),
        ("TCP_KEEPINTVL", 10),
        ("TCP_KEEPCNT", 3),
    ):
        option = getattr(socket, name, None)
        if option is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, option, value)
            except OSError:
                pass




#: How long a claimer that is deferring a ripe straggler duplicate to a
#: faster idle peer sleeps between checks.  The faster peer normally
#: takes the chunk (or stops being idle) within one notify, so this
#: only bounds the rare window where its wakeup is delayed.
_DEFER_GRACE = 0.05


class ChunkBoard:
    """Thread-shared chunk scheduler (claim/settle/requeue).

    The board hands pending chunks to claiming worker threads, sizes a
    worker's pipeline by its advertised capacity (the session thread
    calls :meth:`claim` until it holds ``capacity`` chunks), and — once
    the pending queue drains — speculatively duplicates the
    longest-outstanding chunk onto *idle* workers, steering the
    duplicate toward the fastest idle claimer.
    """

    def __init__(self, n_chunks: int, max_attempts: int) -> None:
        self.condition = threading.Condition()
        self.pending: deque[int] = deque(range(n_chunks))
        self.settled: set[int] = set()
        self.outstanding: dict[int, float] = {}
        self.attempts: dict[int, int] = {}
        self.n_chunks = n_chunks
        self.max_attempts = max_attempts
        self.live_workers = 0
        self.aborted = False
        # Capacities of claimers currently blocked in claim(), keyed by
        # a per-wait token: straggler duplicates are granted only to the
        # fastest idle claimer.
        self._idle: dict[object, int] = {}

    def all_settled(self) -> bool:
        return len(self.settled) == self.n_chunks

    # -- internals (callers hold self.condition) ------------------------
    def _fastest_idle_capacity(self) -> int:
        return max(self._idle.values(), default=0)

    def _speculation_eligible(self, holding=()) -> list[tuple[float, int]]:
        """(started, chunk) pairs this caller could ever duplicate.

        The single definition of speculation eligibility — not
        settled, under the attempts budget, and not already held by
        the caller — shared by the ripeness check and the wait
        computation so "when do we duplicate" and "when do we wake"
        can never drift apart.
        """
        return [
            (started, chunk)
            for chunk, started in self.outstanding.items()
            if chunk not in self.settled
            and chunk not in holding
            and self.attempts.get(chunk, 0) < self.max_attempts
        ]

    def _speculation_candidates(
        self, now: float, straggler_timeout: float, holding=()
    ) -> list[tuple[float, int]]:
        """(started, chunk) pairs ripe for a speculative duplicate."""
        return [
            (started, chunk)
            for started, chunk in self._speculation_eligible(holding)
            if now - started >= straggler_timeout
        ]

    def _speculation_wait(
        self, now: float, straggler_timeout: float, holding=()
    ) -> float | None:
        """Seconds until the oldest in-flight chunk becomes ripe.

        ``None`` when no running chunk can ever become a speculation
        candidate *for this caller* (nothing outstanding, every
        outstanding chunk has exhausted its attempts, or the caller
        itself holds them) — the claimer then sleeps until a
        settle/requeue/claim notification instead of polling.  Without
        the ``holding`` filter, a blocking claimer holding the only
        ripe chunk would be handed a zero wait and spin.
        """
        starts = [
            started
            for started, _ in self._speculation_eligible(holding)
        ]
        if not starts:
            return None
        return max(min(starts) + straggler_timeout - now, 0.0)

    # -- worker-thread API ----------------------------------------------
    def claim(
        self,
        straggler_timeout: float | None = None,
        *,
        capacity: int = 1,
        block: bool = True,
        holding=(),
    ) -> int | None:
        """Claim the next chunk; ``None`` means nothing (more) to do.

        Pending chunks are handed out first.  ``holding`` is the set of
        chunks the caller already has in flight: those are never handed
        back to it — a requeued duplicate of a chunk the caller is
        still computing stays on the queue (uncharged) for *another*
        worker to pick up, instead of being double-sent or burning a
        phantom attempt.  With ``block=False`` the call returns
        ``None`` as soon as nothing claimable is immediately pending —
        worker threads with chunks already in flight use this to top up
        their pipeline without stalling on the straggler clock.  A
        blocking claimer that finds the queue empty waits for work;
        with ``straggler_timeout`` set it wakes exactly when the oldest
        in-flight chunk crosses the timeout (not on a fixed poll), and
        duplicates it if no faster claimer is idle — bounded by
        ``max_attempts`` total executions per chunk.  A blocking
        ``None`` means the sweep is complete (or aborted).
        """
        with self.condition:
            while True:
                if self.aborted or self.all_settled():
                    return None
                granted = None
                skipped: list[int] = []
                while self.pending:
                    chunk = self.pending.popleft()
                    if chunk in self.settled:
                        continue
                    if chunk in holding:
                        skipped.append(chunk)
                        continue
                    granted = chunk
                    break
                for chunk in reversed(skipped):
                    self.pending.appendleft(chunk)
                if granted is not None:
                    self.outstanding[granted] = time.monotonic()
                    self.attempts[granted] = (
                        self.attempts.get(granted, 0) + 1
                    )
                    # A new in-flight chunk moves the straggler clock:
                    # wake waiters so they recompute their deadline.
                    self.condition.notify_all()
                    return granted
                if not block:
                    return None
                wait = None
                if straggler_timeout is not None:
                    now = time.monotonic()
                    ripe = self._speculation_candidates(
                        now, straggler_timeout, holding
                    )
                    if ripe:
                        if capacity >= self._fastest_idle_capacity():
                            _, chunk = min(ripe)
                            self.outstanding[chunk] = now
                            self.attempts[chunk] += 1
                            self.condition.notify_all()
                            return chunk
                        # A faster worker is idle right now; give it a
                        # moment to take the duplicate instead.
                        wait = _DEFER_GRACE
                    else:
                        wait = self._speculation_wait(
                            now, straggler_timeout, holding
                        )
                token = object()
                self._idle[token] = capacity
                try:
                    self.condition.wait(timeout=wait)
                finally:
                    del self._idle[token]

    def settle(self, chunk: int) -> bool:
        """Mark a chunk done; ``False`` if it already was (duplicate)."""
        with self.condition:
            if chunk in self.settled:
                return False
            self.settled.add(chunk)
            self.outstanding.pop(chunk, None)
            self.condition.notify_all()
            return True

    def requeue(self, chunk: int) -> None:
        with self.condition:
            if chunk in self.settled:
                return
            self.outstanding.pop(chunk, None)
            if chunk not in self.pending:
                self.pending.appendleft(chunk)
            self.condition.notify_all()

    def worker_started(self) -> None:
        with self.condition:
            self.live_workers += 1

    def worker_stopped(self) -> None:
        with self.condition:
            self.live_workers -= 1
            self.condition.notify_all()

    def abort(self) -> None:
        with self.condition:
            self.aborted = True
            self.condition.notify_all()


class _ChunkEncodings:
    """Per-wire-generation chunk payloads, encoded once per sweep.

    A mixed fleet needs the same chunk in both encodings: v4 workers
    read struct-codec records, v3 workers read the legacy pickle.  v4
    encodings are computed eagerly when the sweep offers v4 — the shm
    chunk ring is sized to the largest one before any session starts —
    while legacy pickles are produced lazily (and memoized) only for
    the sessions that actually negotiate down.
    """

    def __init__(self, chunks, *, with_v4: bool) -> None:
        self._chunks = chunks
        self._lock = threading.Lock()
        self._legacy: list[bytes | None] = [None] * len(chunks)
        self._v4: list[bytes] | None = None
        if with_v4:
            self._v4 = [encode_tasks(chunk) for chunk in chunks]

    @property
    def max_v4_size(self) -> int:
        return max((len(data) for data in self._v4), default=0)

    def get(self, version: int, index: int) -> bytes:
        if version >= CODEC_PROTOCOL_VERSION:
            return self._v4[index]
        data = self._legacy[index]
        if data is None:
            encoded = pickle.dumps(
                self._chunks[index], protocol=pickle.HIGHEST_PROTOCOL
            )
            with self._lock:
                if self._legacy[index] is None:
                    self._legacy[index] = encoded
                data = self._legacy[index]
        return data


class _SweepWire(NamedTuple):
    """Everything a session thread needs to speak its peer's wire."""

    offer: int  # highest protocol version this sweep offers
    init_payload: bytes  # pickled context for legacy (v1–v3) sessions
    context_v4: bytes | None  # codec'd context for v4 sessions
    encodings: _ChunkEncodings


class _Session(NamedTuple):
    """A connected, handshaken worker session (no chunks sent yet).

    Splitting the connect/handshake prologue from the chunk pipeline is
    what makes connect retry safe: everything up to here is
    side-effect-free with respect to the sweep (no chunk has been
    claimed or sent), so a failed attempt can be thrown away and redone
    on a fresh socket.
    """

    sock: socket.socket
    raw_sock: socket.socket
    version: int
    session_v4: bool
    capacity: int
    features: tuple  # worker feature advertisement from its ready frame


class RemoteExecutor(TaskExecutor):
    """Fan chunks out to socket-connected workers on other hosts.

    Parameters:
        hosts: Worker endpoints (see :func:`parse_hosts`).  Mutually
            exclusive with ``launcher``.
        launcher: A :class:`repro.eval.dist.launch.WorkerLauncher` that
            starts the worker fleet when the sweep begins and tears it
            down (even on failure) when it ends.
        connect_timeout: Seconds allowed for connect + handshake I/O.
        io_timeout: Per-frame socket timeout while a chunk is in flight
            (``None`` = wait forever; rely on ``straggler_timeout`` for
            hung-but-alive workers).
        straggler_timeout: Seconds before an idle worker speculatively
            re-runs an outstanding chunk (``None`` disables).
        max_attempts: Total executions allowed per chunk across
            speculative duplicates.
        chunks_per_worker: Planning granularity — chunks per worker
            *slot* in :meth:`plan`; more chunks mean finer
            requeue/load-balance units at slightly more framing
            overhead.
        capacity_aware: When ``False``, ignore worker capacity
            advertisements and keep one chunk in flight per worker (the
            version-1 schedule); the benchmark uses this as the uniform
            baseline.
        secret: Shared secret (str or bytes) for the v3 HMAC handshake
            (:mod:`repro.eval.dist.auth`).  When set, every worker must
            prove knowledge of the same secret before the coordinator
            ships it the (pickled) sweep payload; a sweep whose every
            worker fails the handshake raises
            :class:`~repro.exceptions.DistSecurityError` instead of the
            generic lost-chunks error.
        ssl_context: Optional client-side :class:`ssl.SSLContext`
            (see :func:`repro.eval.dist.certs.client_context`); worker
            sockets are TLS-wrapped right after connecting, before any
            frame is exchanged.
        wire_version: Wire-generation pin.  ``None`` (default) offers
            the library's best (v4) and serves whatever each worker
            negotiates; a sweep whose payloads the v4 codec cannot
            express falls back to offering v3 for the whole sweep.
            ``3`` forces the legacy pickled wire (the benchmark's
            baseline); ``4`` *requires* the pickle-free wire — a worker
            that cannot speak it, or a payload the codec rejects, fails
            the session/sweep instead of downgrading.
        transport: Data-plane selection for v4 sessions.  ``"auto"``
            (default) uses shared-memory rings for workers on this host
            (loopback endpoints, or a launcher with ``same_host=True``)
            and the socket elsewhere; ``"shm"`` offers rings to every
            v4 worker (a worker that cannot attach nacks back to the
            socket); ``"socket"`` never offers rings.  Legacy sessions
            always use the socket.
        shm_slot_bytes: Result-ring slot size for shm sessions.  Slots
            are virtual memory — untouched pages cost nothing — so the
            default (16 MiB) is generous; a result that outgrows its
            slot simply arrives inline on the socket.
        heartbeat_interval: Liveness budget (seconds) for v4 workers
            that advertise the ``heartbeat`` feature: such workers emit
            unsolicited pong frames twice per interval, the coordinator
            pings once a silence exceeds one interval, and a session
            silent past 1.5× the interval is torn down
            (:class:`WorkerUnresponsiveError`) with its chunks
            requeued — so a hung-but-connected worker (SIGSTOP, wedged
            VM) is detected within 2× the interval instead of hanging
            the sweep.  ``None`` disables liveness and restores the
            pure blocking-recv behaviour.
        chunk_deadline: Hard per-chunk wall-clock budget (seconds) on a
            session.  A chunk still unanswered past the deadline fails
            the session (:class:`ChunkDeadlineExceeded`) and requeues
            its chunks — catching workers that are demonstrably alive
            (heartbeats flowing) yet never able to finish, e.g. a
            stalled shm ring.  ``None`` (default) disables; set it
            comfortably above the slowest expected chunk.
        connect_attempts: Total connect/handshake attempts per worker
            session (default 3) with exponential backoff + jitter
            between them.  Only transient transport errors are
            retried; security refusals (bad secret, TLS mismatch) and
            deterministic protocol errors still fail closed on the
            first attempt.
        on_fleet_loss: What to do with chunks no worker completed
            because the entire fleet was lost.  ``"fail"`` (default)
            raises the usual lost-chunks error; ``"serial"`` finishes
            the remaining chunks in-process — the sweep degrades to
            serial speed instead of discarding its settled work, and
            stays bit-identical.
    """

    def __init__(
        self,
        hosts=None,
        *,
        launcher=None,
        connect_timeout: float = 10.0,
        io_timeout: float | None = None,
        straggler_timeout: float | None = None,
        max_attempts: int = 3,
        chunks_per_worker: int = 4,
        capacity_aware: bool = True,
        secret=None,
        ssl_context: ssl.SSLContext | None = None,
        wire_version: int | None = None,
        transport: str = "auto",
        shm_slot_bytes: int = 16 << 20,
        heartbeat_interval: float | None = 15.0,
        chunk_deadline: float | None = None,
        connect_attempts: int = 3,
        on_fleet_loss: str = "fail",
    ) -> None:
        if (hosts is None) == (launcher is None):
            raise ValueError(
                "exactly one of hosts= and launcher= is required"
            )
        self.endpoints = parse_hosts(hosts) if hosts is not None else None
        self.launcher = launcher
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        if straggler_timeout is not None and straggler_timeout <= 0:
            raise ValueError(
                f"straggler_timeout must be positive or None, got "
                f"{straggler_timeout}"
            )
        self.straggler_timeout = straggler_timeout
        self.max_attempts = max(1, max_attempts)
        self.chunks_per_worker = max(1, chunks_per_worker)
        self.capacity_aware = capacity_aware
        self.secret = normalize_secret(secret)
        self.ssl_context = ssl_context
        if wire_version not in (None, CODEC_PROTOCOL_VERSION - 1,
                                CODEC_PROTOCOL_VERSION):
            raise ValueError(
                f"wire_version must be None, "
                f"{CODEC_PROTOCOL_VERSION - 1} or "
                f"{CODEC_PROTOCOL_VERSION}, got {wire_version!r}"
            )
        if transport not in ("auto", "shm", "socket"):
            raise ValueError(
                f"transport must be 'auto', 'shm' or 'socket', got "
                f"{transport!r}"
            )
        if shm_slot_bytes < 1:
            raise ValueError(
                f"shm_slot_bytes must be positive, got {shm_slot_bytes}"
            )
        self.wire_version = wire_version
        self.transport = transport
        self.shm_slot_bytes = shm_slot_bytes
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive or None, got "
                f"{heartbeat_interval}"
            )
        if chunk_deadline is not None and chunk_deadline <= 0:
            raise ValueError(
                f"chunk_deadline must be positive or None, got "
                f"{chunk_deadline}"
            )
        if on_fleet_loss not in ("fail", "serial"):
            raise ValueError(
                f"on_fleet_loss must be 'fail' or 'serial', got "
                f"{on_fleet_loss!r}"
            )
        self.heartbeat_interval = heartbeat_interval
        self.chunk_deadline = chunk_deadline
        self.connect_attempts = max(1, int(connect_attempts))
        self.on_fleet_loss = on_fleet_loss
        #: :class:`SweepStats` of the most recent sweep (one fresh
        #: object per :meth:`map_chunks` call).
        self.last_sweep_stats: SweepStats | None = None

    # -- TaskExecutor --------------------------------------------------
    def _worker_slots(self) -> int:
        """Parallel chunk slots the fleet is expected to offer.

        Static endpoints count one slot per worker (capacities are only
        learned at handshake); a launcher knows the capacities it will
        ask for, so planning granularity scales with the fleet's total
        capacity and a capacity-2 worker has enough chunks to fill its
        pipeline.
        """
        if self.endpoints is not None:
            return len(self.endpoints)
        return max(1, self.launcher.worker_slots)

    def plan(self, tasks):
        return _chunk_tasks(
            tasks,
            self._worker_slots(),
            chunks_per_worker=self.chunks_per_worker,
        )

    def map_chunks(self, context, chunks):
        if not chunks:
            return
        if self.launcher is None:
            yield from self._run_sweep(self.endpoints, context, chunks)
            return
        specs = self.launcher.launch()
        try:
            yield from self._run_sweep(specs, context, chunks)
        finally:
            self.launcher.shutdown()

    def _build_wire(self, context, chunks) -> _SweepWire:
        """Choose the sweep's offered wire generation and encode for it.

        Offering v4 requires the whole sweep to be expressible in the
        codec (context *and* every chunk): a payload the codec rejects
        downgrades the offer to v3 up front — never mid-sweep, so a
        fleet can't end up split across generations by accident — unless
        ``wire_version=4`` pinned the codec wire, in which case the
        :class:`~repro.eval.dist.codec.CodecError` propagates.
        """
        offer = (
            PROTOCOL_VERSION
            if self.wire_version is None
            else self.wire_version
        )
        context_v4 = None
        encodings = None
        if offer >= CODEC_PROTOCOL_VERSION:
            try:
                context_v4 = encode_context(context)
                encodings = _ChunkEncodings(chunks, with_v4=True)
            except CodecError:
                if self.wire_version is not None:
                    raise
                offer = CODEC_PROTOCOL_VERSION - 1
                context_v4 = None
        if encodings is None:
            encodings = _ChunkEncodings(chunks, with_v4=False)
        init_payload = pickle.dumps(
            context, protocol=pickle.HIGHEST_PROTOCOL
        )
        return _SweepWire(offer, init_payload, context_v4, encodings)

    def _run_sweep(self, specs, context, chunks):
        wire = self._build_wire(context, chunks)
        board = ChunkBoard(len(chunks), self.max_attempts)
        stats = SweepStats(workers=len(specs))
        self.last_sweep_stats = stats
        events: queue.Queue = queue.Queue()
        sockets: dict[int, socket.socket] = {}
        socket_lock = threading.Lock()
        threads = []
        for worker_id, spec in enumerate(specs):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(
                    worker_id,
                    spec,
                    wire,
                    board,
                    events,
                    sockets,
                    socket_lock,
                    stats,
                ),
                name=f"remote-sweep-{spec.address}",
                daemon=True,
            )
            board.worker_started()
            threads.append(thread)
        for thread in threads:
            thread.start()

        yielded: set[int] = set()
        task_errors: dict[int, RemoteTaskError] = {}
        last_transport_error: BaseException | None = None
        down_events = 0
        security_failures: list[tuple[HostSpec, BaseException]] = []
        try:
            while len(yielded) + len(task_errors) < len(chunks):
                with board.condition:
                    no_workers = board.live_workers == 0
                if no_workers and events.empty():
                    break
                try:
                    event = events.get(timeout=1.0)
                except queue.Empty:
                    continue
                kind = event[0]
                if kind == "result":
                    _, chunk_index, results = event
                    if chunk_index not in yielded:
                        yielded.add(chunk_index)
                        yield chunk_index, results
                elif kind == "task_error":
                    _, chunk_index, error = event
                    task_errors.setdefault(chunk_index, error)
                elif kind == "down":
                    _, spec, exc = event
                    last_transport_error = exc
                    down_events += 1
                    stats.count("worker_losses")
                    if _is_security_failure(exc):
                        security_failures.append((spec, exc))
        finally:
            board.abort()
            with socket_lock:
                # Unblock any thread still parked in recv (e.g. the
                # original owner of a chunk a speculative duplicate
                # already settled).
                for sock in sockets.values():
                    try:
                        sock.close()
                    except OSError:
                        pass
            for thread in threads:
                thread.join(timeout=5.0)

        failures: list[tuple[int, BaseException]] = sorted(
            task_errors.items()
        )
        lost = [
            index
            for index in range(len(chunks))
            if index not in yielded and index not in task_errors
        ]
        if (
            lost
            and not yielded
            and not task_errors
            and security_failures
            and len(security_failures) == down_events
        ):
            # Nothing executed and every worker was refused on security
            # grounds: this is a configuration problem, not a flaky
            # fleet.  Fail closed with the refusal reason — retrying
            # would refuse identically, and nothing was deserialized.
            spec, exc = security_failures[0]
            raise DistSecurityError(
                f"sweep aborted: no worker passed the security "
                f"handshake ({len(security_failures)} of {len(specs)} "
                f"refused; first: {spec.address}: {exc})"
            ) from exc
        if lost and self.on_fleet_loss == "serial":
            # Graceful degradation: the whole fleet is gone, but the
            # context and the chunks are right here.  Finish the
            # remaining chunks in-process — serial speed, identical
            # results — instead of throwing away the settled work.
            # (The security fail-closed path above still wins: a
            # misconfigured secret should be fixed, not absorbed.)
            instance, config, options = context
            for index in lost:
                try:
                    computed = [
                        _execute_task(instance, config, options, task)
                        for task in chunks[index]
                    ]
                except Exception as exc:
                    task_errors.setdefault(
                        index,
                        RemoteTaskError(
                            f"chunk {index} failed during in-process "
                            f"fleet-loss fallback: {exc}"
                        ),
                    )
                    continue
                stats.count("serial_fallback_chunks")
                yielded.add(index)
                yield index, computed
            failures = sorted(task_errors.items())
            lost = []
        for index in lost:
            failures.append(
                (
                    index,
                    RemoteTaskError(
                        "chunk never completed: every worker was lost "
                        f"(last transport error: {last_transport_error!r})"
                    ),
                )
            )
        if failures:
            failures.sort(key=lambda entry: entry[0])
            raise ChunkExecutionError(
                f"{len(failures)} of {len(chunks)} remote chunks failed",
                failures,
            ) from failures[0][1]

    # -- per-worker session thread -------------------------------------
    def _offer_shm(self, sock, spec, wire, capacity, *, checksum=False):
        """Create and offer this session's shm rings where they apply.

        Returns ``(chunk_ring, result_ring)``, or ``(None, None)``
        whenever the session stays on socket payloads: transport policy
        says so, the worker is not on this host (``"auto"``), the rings
        cannot be created (e.g. ``/dev/shm`` exhausted), or the worker
        nacks the attach (e.g. a loopback-looking endpoint that is
        really an SSH tunnel).  ``checksum`` selects the CRC32 slot
        layout — only offered to workers advertising the ``shm-crc``
        feature, so pre-checksum peers keep the plain geometry.
        """
        if self.transport == "socket":
            return None, None
        if self.transport == "auto":
            same_host = host_is_loopback(spec.host) or (
                self.launcher is not None
                and getattr(self.launcher, "same_host", False)
            )
            if not same_host:
                return None, None
        chunk_ring = result_ring = None
        try:
            # One spare chunk slot beyond the pipeline depth: a slot is
            # reclaimed when its chunk is answered, so capacity + 1
            # guarantees a free slot at every send without an ack
            # protocol in that direction.
            chunk_ring = create_ring(
                capacity + 1,
                max(1, wire.encodings.max_v4_size),
                checksum=checksum,
            )
            result_ring = create_ring(
                capacity + 2, self.shm_slot_bytes, checksum=checksum
            )
        except ShmError:
            if chunk_ring is not None:
                chunk_ring.close()
            return None, None
        send_json_message(
            sock,
            {
                "type": "shm",
                "chunk_ring": chunk_ring.describe(),
                "result_ring": result_ring.describe(),
            },
        )
        header, _ = recv_json_message(sock)
        if header["type"] == "shm-ok":
            return chunk_ring, result_ring
        chunk_ring.close()
        result_ring.close()
        if header["type"] != "shm-nack":
            raise ProtocolError(
                f"expected shm-ok or shm-nack from {spec.address}, "
                f"got {header['type']!r}"
            )
        return None, None

    def _open_session(self, spec: HostSpec, wire: _SweepWire) -> _Session:
        """Connect and handshake one worker session (no chunks yet).

        Raises with both sockets closed on any failure; the caller
        classifies the exception and decides whether another attempt
        (fresh socket, backoff) is worthwhile.
        """
        sock = socket.create_connection(
            spec.endpoint, timeout=self.connect_timeout
        )
        raw_sock = sock
        try:
            _enable_keepalive(sock)
            disable_nagle(sock)
            if self.ssl_context is not None:
                # Wrap before any frame: the TLS handshake runs under
                # the connect timeout still armed on the socket, so a
                # plaintext worker surfaces as a bounded error, not a
                # hang.  ``server_hostname`` feeds SNI (and matching,
                # for contexts that enable hostname checks).  Both an
                # SSL-layer failure and a reset mid-handshake mean the
                # endpoint is not the TLS worker we were configured
                # for — classify as a security misconfiguration so the
                # sweep fails closed with guidance.
                try:
                    sock = self.ssl_context.wrap_socket(
                        sock, server_hostname=spec.host
                    )
                except (ssl.SSLError, ConnectionError) as exc:
                    raise TlsMismatchError(
                        f"TLS handshake with worker {spec.address} "
                        f"failed ({exc}); is the worker serving TLS "
                        f"with a certificate the configured CA signs?"
                    ) from exc
            authenticated_version = None
            if self.secret is not None:
                # Prove the secret both ways before any sweep payload
                # leaves this process; nothing the worker sends before
                # its own proof is ever deserialized here.
                authenticated_version = client_handshake(
                    sock, self.secret, protocol_max=wire.offer
                )
            session_v4 = False
            if (
                authenticated_version is not None
                and authenticated_version >= CODEC_PROTOCOL_VERSION
            ):
                # The handshake bound a pickle-free version for both
                # sides, so the legacy init frame (whose payload exists
                # only for pre-v4 workers) is skipped entirely: the
                # worker's v4 ready frame comes first.
                header, _ = recv_json_message(sock)
                session_v4 = True
            else:
                send_message(
                    sock,
                    {
                        "type": "init",
                        "protocol": PROTOCOL_BASE_VERSION,
                        "protocol_max": wire.offer,
                    },
                    wire.init_payload,
                )
                magic = read_magic(sock)
                if magic == MAGIC_V4:
                    # A v4-capable worker answers the legacy init with
                    # a v4-framed ready (discarding the pickled payload
                    # unparsed); the reply's magic is what moves the
                    # session onto the new wire.
                    header, _ = recv_json_message(
                        sock, preread_magic=magic
                    )
                    session_v4 = True
                else:
                    header, _ = recv_message(sock, preread_magic=magic)
            if header.get("type") == "error" and header.get("error") in (
                "auth-required",
                "tls-required",
            ):
                # A secured worker refusing our plain session (no
                # secret, or no TLS): surface operator guidance, fail
                # closed.
                refusal = header.get("error")
                exc_type = (
                    AuthError
                    if refusal == "auth-required"
                    else TlsMismatchError
                )
                raise exc_type(
                    f"worker {spec.address} refused the connection: "
                    f"{header.get('message', refusal)}"
                )
            version = header.get("protocol")
            if (
                header.get("type") != "ready"
                or not isinstance(version, int)
                or not (PROTOCOL_BASE_VERSION <= version <= wire.offer)
            ):
                raise ProtocolError(
                    f"bad handshake from {spec.address}: {header}"
                )
            if session_v4 != (version >= CODEC_PROTOCOL_VERSION):
                raise ProtocolError(
                    f"worker {spec.address} framed its ready frame for "
                    f"the wrong wire generation (protocol {version})"
                )
            if (
                self.wire_version is not None
                and version < self.wire_version
            ):
                raise ProtocolError(
                    f"worker {spec.address} only speaks protocol "
                    f"{version} but wire_version={self.wire_version} "
                    f"was pinned"
                )
            if (
                authenticated_version is not None
                and version != authenticated_version
            ):
                raise ProtocolError(
                    f"worker {spec.address} negotiated version "
                    f"{version} but the authenticated handshake bound "
                    f"version {authenticated_version}; refusing the "
                    f"downgrade"
                )
            capacity = 1
            if (
                self.capacity_aware
                and version >= CAPACITY_PROTOCOL_VERSION
            ):
                try:
                    capacity = max(1, int(header.get("capacity", 1)))
                except (TypeError, ValueError):
                    raise ProtocolError(
                        f"bad capacity in ready frame from "
                        f"{spec.address}: {header.get('capacity')!r}"
                    ) from None
            features = header.get("features")
            if not isinstance(features, (list, tuple)):
                features = ()
            sock.settimeout(self.io_timeout)
            return _Session(
                sock,
                raw_sock,
                version,
                session_v4,
                capacity,
                tuple(str(feature) for feature in features),
            )
        except BaseException:
            for stale in (sock, raw_sock):
                try:
                    stale.close()
                except OSError:
                    pass
            raise

    def _worker_loop(
        self,
        worker_id: int,
        spec: HostSpec,
        wire: _SweepWire,
        board: ChunkBoard,
        events: queue.Queue,
        sockets: dict,
        socket_lock: threading.Lock,
        stats: SweepStats,
    ) -> None:
        # -- connect + handshake, with bounded jittered retry ----------
        delays = _backoff_delays(self.connect_attempts)
        attempt = 0
        session = None
        while session is None:
            attempt += 1
            try:
                session = self._open_session(spec, wire)
            except Exception as exc:
                # Security refusals (wrong secret, TLS mismatch) and
                # deterministic protocol errors refuse identically on
                # every retry — those fail closed immediately.
                # Transient transport failures (refused or reset
                # connects, timeouts, a listener that closed us
                # mid-handshake) get another attempt on a fresh socket
                # after a jittered exponential backoff.
                retriable = isinstance(
                    exc, (OSError, ConnectionClosed)
                ) and not _is_security_failure(exc)
                with board.condition:
                    halted = board.aborted or board.all_settled()
                if (
                    retriable
                    and not halted
                    and attempt < self.connect_attempts
                ):
                    stats.count("connect_retries")
                    time.sleep(next(delays, 0.0))
                    continue
                # Event first, then the live-count decrement: the main
                # loop treats "no live workers + empty queue" as
                # terminal, so the reverse order could drop this error
                # from the report.
                events.put(("down", spec, exc))
                board.worker_stopped()
                return
        stats.count("sessions")
        sock = session.sock
        raw_sock = session.raw_sock
        version = session.version
        session_v4 = session.session_v4
        capacity = session.capacity
        # Liveness is negotiated per session: armed only when this
        # executor wants it *and* the worker advertised the heartbeat
        # feature, so mixed fleets with pre-heartbeat workers keep
        # working (those sessions just keep the old blocking recv).
        heartbeat = None
        if (
            session_v4
            and self.heartbeat_interval is not None
            and "heartbeat" in session.features
        ):
            heartbeat = float(self.heartbeat_interval)
        inflight: set[int] = set()
        sent_at: dict[int, float] = {}
        chunk_ring = None
        result_ring = None
        try:
            if session_v4:
                # Uniform v4 order regardless of entry path: worker
                # ready (just parsed) → coordinator context → chunks.
                # The protocol echo lets the worker cross-check the
                # negotiated version against what its handshake bound.
                context_frame = {"type": "context", "protocol": version}
                if heartbeat is not None:
                    # Arms the worker's unsolicited heartbeat sender; a
                    # worker that never sees this key never beats, and
                    # pre-heartbeat coordinators never send it.
                    context_frame["heartbeat"] = heartbeat
                send_json_message(sock, context_frame, wire.context_v4)
                chunk_ring, result_ring = self._offer_shm(
                    sock,
                    spec,
                    wire,
                    capacity,
                    checksum="shm-crc" in session.features,
                )
                if result_ring is not None:
                    stats.count("shm_sessions")
            with socket_lock:
                sockets[worker_id] = sock

            chunk_slots = (
                list(range(chunk_ring.n_slots))
                if chunk_ring is not None
                else []
            )
            slot_of_chunk: dict[int, int] = {}
            pending_acks: list[int] = []

            def _send_chunk(chunk: int) -> None:
                payload = wire.encodings.get(version, chunk)
                if not session_v4:
                    send_message(
                        sock, {"type": "chunk", "chunk": chunk}, payload
                    )
                    return
                frame = {"type": "chunk", "chunk": chunk}
                if pending_acks:
                    # Piggyback result-ring acknowledgements on the
                    # next outbound frame; a dedicated ack frame per
                    # result would cost a round of syscalls for
                    # bookkeeping the worker only needs eventually.
                    frame["ack"] = pending_acks.copy()
                    pending_acks.clear()
                if chunk_ring is not None and chunk_slots:
                    slot = chunk_slots.pop()
                    chunk_ring.write(slot, payload)
                    slot_of_chunk[chunk] = slot
                    frame["slot"] = slot
                    frame["size"] = len(payload)
                    send_json_message(sock, frame)
                else:
                    if chunk_ring is not None:
                        stats.note_inline(spec.address, kind="chunk")
                    send_json_message(sock, frame, payload)

            def _release_chunk_slot(chunk: int) -> None:
                slot = slot_of_chunk.pop(chunk, None)
                if slot is not None:
                    chunk_slots.append(slot)

            def _resolve_result_payload(frame: dict, payload: bytes):
                if "slot" not in frame:
                    if result_ring is not None:
                        # The worker fell back to inline socket bytes
                        # for this result (slots exhausted, or the
                        # payload outgrew its slot): correct but
                        # slower, so count it instead of degrading
                        # silently.
                        stats.note_inline(spec.address, kind="result")
                    return payload
                if result_ring is None:
                    raise ProtocolError(
                        "result frame references a shm slot but the "
                        "session has no shared-memory rings"
                    )
                slot = int(frame["slot"])
                view = result_ring.read(slot, int(frame["size"]))
                try:
                    # Copied out before the slot is acked: the worker
                    # may rewrite the slot the moment it gets it back.
                    data = bytes(view)
                finally:
                    view.release()
                pending_acks.append(slot)
                return data

            # Liveness bookkeeping.  ``last_rx`` is any frame from the
            # worker (results, pongs); ``last_ping`` rate-limits our
            # explicit pings to one per silent interval.  The tick is
            # the poll granularity of the bounded-recv loop below —
            # fine enough that a silent worker is detected within 2×
            # the heartbeat interval (threshold 1.5×, tick ≤ 0.25×).
            last_rx = [time.monotonic()]
            last_ping = [0.0]
            tick_candidates = [
                interval / 4.0
                for interval in (heartbeat, self.chunk_deadline)
                if interval is not None
            ]
            tick = max(0.02, min(tick_candidates, default=1.0))

            def _recv_frame():
                if heartbeat is None and self.chunk_deadline is None:
                    return (
                        recv_json_message(sock)
                        if session_v4
                        else recv_message(sock)
                    )
                while True:
                    if _wait_readable(sock, tick):
                        header, payload = (
                            recv_json_message(sock)
                            if session_v4
                            else recv_message(sock)
                        )
                        last_rx[0] = time.monotonic()
                        if header.get("type") == "pong":
                            continue  # liveness only; not a result
                        return header, payload
                    now = time.monotonic()
                    if heartbeat is not None:
                        silence = now - last_rx[0]
                        if silence >= 1.5 * heartbeat:
                            stats.count("heartbeat_timeouts")
                            raise WorkerUnresponsiveError(
                                f"worker {spec.address} has been "
                                f"silent for {silence:.1f}s (heartbeat "
                                f"interval {heartbeat:g}s); presumed "
                                f"hung — requeueing its chunks"
                            )
                        if (
                            silence >= heartbeat
                            and now - last_ping[0] >= heartbeat
                        ):
                            # One explicit ping per silent window: a
                            # live-but-quiet worker answers from its
                            # recv loop even when its own beat thread
                            # is wedged.
                            send_json_message(sock, {"type": "ping"})
                            last_ping[0] = now
                    if self.chunk_deadline is not None:
                        overdue = [
                            chunk
                            for chunk, started in sent_at.items()
                            if now - started >= self.chunk_deadline
                            and chunk not in board.settled
                        ]
                        if overdue:
                            stats.count("deadline_timeouts")
                            raise ChunkDeadlineExceeded(
                                f"worker {spec.address} exceeded the "
                                f"{self.chunk_deadline:g}s chunk "
                                f"deadline on chunk(s) "
                                f"{sorted(overdue)}; requeueing"
                            )

            while True:
                # Top up the pipeline: claims are sized by the worker's
                # advertised capacity.  Only a fully-idle worker blocks
                # (and is then eligible for straggler duplicates).
                while len(inflight) < capacity:
                    # holding=inflight: a requeued duplicate of a chunk
                    # this worker is still computing must not be handed
                    # back to it (double-send → ProtocolError); the
                    # token stays queued for another worker.
                    chunk = board.claim(
                        self.straggler_timeout,
                        capacity=capacity,
                        block=not inflight,
                        holding=inflight,
                    )
                    if chunk is None:
                        break
                    # Register the claim *before* sending: a dead peer
                    # (RST) makes the send raise, and a chunk that was
                    # claimed but not yet tracked would never be
                    # requeued — permanently hanging the sweep.
                    inflight.add(chunk)
                    sent_at[chunk] = time.monotonic()
                    _send_chunk(chunk)
                if not inflight:
                    try:
                        if session_v4:
                            end = {"type": "end"}
                            if pending_acks:
                                end["ack"] = pending_acks.copy()
                                pending_acks.clear()
                            send_json_message(sock, end)
                        else:
                            send_message(sock, {"type": "end"})
                    except (OSError, ProtocolError):
                        pass
                    return
                header, payload = _recv_frame()
                if header["type"] == "result":
                    chunk_id = header["chunk"]
                    if chunk_id not in inflight:
                        raise ProtocolError(
                            f"worker answered chunk {chunk_id} which "
                            f"was not in flight ({sorted(inflight)})"
                        )
                    inflight.discard(chunk_id)
                    sent_at.pop(chunk_id, None)
                    _release_chunk_slot(chunk_id)
                    results = _unpack_error_dicts(
                        header["descriptor"],
                        payload_to_buffer(
                            _resolve_result_payload(header, payload)
                        ),
                    )
                    if board.settle(chunk_id):
                        events.put(("result", chunk_id, results))
                elif header["type"] == "error":
                    chunk_id = header.get("chunk")
                    if chunk_id not in inflight:
                        raise ProtocolError(
                            f"worker reported an error for chunk "
                            f"{chunk_id} which was not in flight"
                        )
                    inflight.discard(chunk_id)
                    sent_at.pop(chunk_id, None)
                    _release_chunk_slot(chunk_id)
                    error = RemoteTaskError(
                        f"worker {spec.address} failed chunk "
                        f"{chunk_id}: {header.get('message', '')}",
                        header.get("traceback", ""),
                    )
                    if board.settle(chunk_id):
                        events.put(("task_error", chunk_id, error))
                else:
                    raise ProtocolError(
                        f"unexpected frame type {header['type']!r}"
                    )
        except Exception as exc:
            # Any escape — transport errors, torn frames, but also
            # malformed headers from a version-skewed worker — must
            # requeue the in-flight chunks and report the worker down;
            # a silently dead thread would leave claimers blocked and
            # hang the sweep.
            requeued = sorted(inflight, reverse=True)
            for chunk in requeued:
                board.requeue(chunk)
            if requeued:
                stats.count("requeued_chunks", len(requeued))
            events.put(("down", spec, exc))
        finally:
            board.worker_stopped()
            with socket_lock:
                sockets.pop(worker_id, None)
            for stale in (sock, raw_sock):
                try:
                    stale.close()
                except OSError:
                    pass
            # This side created the rings, so this side unlinks them —
            # on every exit path, success or torn session.
            for ring in (chunk_ring, result_ring):
                if ring is not None:
                    ring.close()
