"""Coordinator side of the distributed sweep backend.

:class:`RemoteExecutor` implements the engine's
:class:`repro.eval.parallel.TaskExecutor` interface over a set of
already-listening workers (``host:port`` endpoints — started by hand,
by CI, or via ``ssh host repro-tomography worker``).  One thread per
worker drives a synchronous request/response session:

* the (instance, config, options) triple is pickled **once** and shipped
  in the ``init`` frame of every worker session, never per chunk;
* each thread claims the next pending chunk, sends it, and blocks on the
  result frame — chunk results come back as one packed float64 payload
  (the in-host pool's transport) and are yielded to the engine as they
  complete, in whatever order they finish;
* when a worker dies (connection reset, torn frame, handshake failure),
  its outstanding chunk is requeued at the *front* of the pending queue
  and the surviving workers absorb it — a death costs at most the one
  chunk that was in flight;
* with ``straggler_timeout`` set, an idle worker speculatively re-runs a
  chunk that has been outstanding longer than the timeout (up to
  ``max_attempts`` total executions); the first result wins and
  duplicates are discarded, which is safe because chunks are pure
  functions of their tasks.

Determinism: the schedule never touches the tasks — every task carries
its own pre-spawned generators and results are keyed by chunk index —
so remote execution is bit-identical to serial execution no matter how
chunks land on workers, how many die, or how many duplicates race.

Failure contract (shared with the serial and local executors): every
chunk settles before :meth:`RemoteExecutor.map_chunks` raises, so the
engine writes completed chunks back to the cache even when the sweep
ultimately fails.  Application errors reported by a worker surface as
:class:`RemoteTaskError` entries in the
:class:`repro.eval.parallel.ChunkExecutionError`; losing *all* workers
surfaces the last transport error.
"""

from __future__ import annotations

import pickle
import queue
import socket
import threading
import time
from collections import deque

from repro.eval.dist.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    payload_to_buffer,
    recv_message,
    send_message,
)
from repro.eval.parallel import (
    ChunkExecutionError,
    TaskExecutor,
    _chunk_tasks,
    _unpack_error_dicts,
)

__all__ = ["RemoteExecutor", "RemoteTaskError", "parse_hosts"]


class RemoteTaskError(RuntimeError):
    """A worker reported an application error while executing a chunk.

    ``remote_traceback`` carries the worker-side traceback text.
    """

    def __init__(self, message: str, remote_traceback: str = "") -> None:
        super().__init__(message)
        self.remote_traceback = remote_traceback


def parse_hosts(hosts) -> list[tuple[str, int]]:
    """Normalise a hosts spec into ``(host, port)`` endpoints.

    Accepts a comma-separated string (``"a:7100,b:7100"``), an iterable
    of ``"host:port"`` strings, or an iterable of ``(host, port)``
    pairs.  IPv6 literals use brackets: ``"[::1]:7100"``.
    """
    if isinstance(hosts, str):
        hosts = [piece for piece in hosts.split(",") if piece.strip()]
    endpoints: list[tuple[str, int]] = []
    for entry in hosts:
        if isinstance(entry, (tuple, list)):
            host, port = entry
        else:
            text = str(entry).strip()
            if text.startswith("["):
                bracket = text.find("]")
                if bracket < 0 or not text[bracket + 1 :].startswith(":"):
                    raise ValueError(
                        f"malformed IPv6 endpoint {text!r}; expected "
                        "'[addr]:port'"
                    )
                host, port = text[1:bracket], text[bracket + 2 :]
            else:
                host, _, port = text.rpartition(":")
                if not host:
                    raise ValueError(
                        f"malformed endpoint {text!r}; expected 'host:port'"
                    )
        try:
            port = int(port)
        except (TypeError, ValueError):
            raise ValueError(
                f"malformed endpoint port in {entry!r}"
            ) from None
        if not 0 < port < 65536:
            raise ValueError(f"endpoint port out of range in {entry!r}")
        endpoints.append((str(host), port))
    if not endpoints:
        raise ValueError("at least one worker endpoint is required")
    return endpoints


def _enable_keepalive(sock: socket.socket) -> None:
    """Arm TCP keepalive so a host that vanishes without a FIN/RST
    (power loss, network partition) surfaces as a socket error in
    minutes rather than blocking ``recv`` forever.

    The aggressive probe schedule (idle 60 s, 10 s interval, 3 probes
    → dead-host detection in ~90 s) uses Linux/BSD option names and is
    skipped wholesale where unavailable; plain ``SO_KEEPALIVE`` with
    kernel defaults still bounds the hang.
    """
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for name, value in (
        ("TCP_KEEPIDLE", 60),
        ("TCP_KEEPINTVL", 10),
        ("TCP_KEEPCNT", 3),
    ):
        option = getattr(socket, name, None)
        if option is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, option, value)
            except OSError:
                pass


class _SweepState:
    """Thread-shared chunk scheduler state (claim/settle/requeue)."""

    def __init__(self, n_chunks: int, max_attempts: int) -> None:
        self.condition = threading.Condition()
        self.pending: deque[int] = deque(range(n_chunks))
        self.settled: set[int] = set()
        self.outstanding: dict[int, float] = {}
        self.attempts: dict[int, int] = {}
        self.n_chunks = n_chunks
        self.max_attempts = max_attempts
        self.live_workers = 0
        self.aborted = False

    def all_settled(self) -> bool:
        return len(self.settled) == self.n_chunks

    def claim(self, straggler_timeout: float | None) -> int | None:
        """Block until a chunk is claimable; ``None`` means no more work.

        Prefers pending chunks; with ``straggler_timeout`` set, an
        otherwise-idle caller duplicates the longest-outstanding chunk
        that exceeded the timeout (bounded by ``max_attempts``).
        """
        with self.condition:
            while True:
                if self.aborted or self.all_settled():
                    return None
                while self.pending:
                    chunk = self.pending.popleft()
                    if chunk in self.settled:
                        continue
                    self.outstanding[chunk] = time.monotonic()
                    self.attempts[chunk] = self.attempts.get(chunk, 0) + 1
                    return chunk
                if straggler_timeout is not None:
                    now = time.monotonic()
                    candidates = [
                        (started, chunk)
                        for chunk, started in self.outstanding.items()
                        if chunk not in self.settled
                        and now - started >= straggler_timeout
                        and self.attempts.get(chunk, 0)
                        < self.max_attempts
                    ]
                    if candidates:
                        _, chunk = min(candidates)
                        self.outstanding[chunk] = now
                        self.attempts[chunk] += 1
                        return chunk
                    # Floor the poll so tiny timeouts cannot busy-spin
                    # an idle worker thread on the condition.
                    wait = max(straggler_timeout / 2, 0.05)
                else:
                    wait = None
                self.condition.wait(timeout=wait)

    def settle(self, chunk: int) -> bool:
        """Mark a chunk done; ``False`` if it already was (duplicate)."""
        with self.condition:
            if chunk in self.settled:
                return False
            self.settled.add(chunk)
            self.outstanding.pop(chunk, None)
            self.condition.notify_all()
            return True

    def requeue(self, chunk: int) -> None:
        with self.condition:
            if chunk in self.settled:
                return
            self.outstanding.pop(chunk, None)
            if chunk not in self.pending:
                self.pending.appendleft(chunk)
            self.condition.notify_all()

    def worker_started(self) -> None:
        with self.condition:
            self.live_workers += 1

    def worker_stopped(self) -> None:
        with self.condition:
            self.live_workers -= 1
            self.condition.notify_all()

    def abort(self) -> None:
        with self.condition:
            self.aborted = True
            self.condition.notify_all()


class RemoteExecutor(TaskExecutor):
    """Fan chunks out to socket-connected workers on other hosts.

    Parameters:
        hosts: Worker endpoints (see :func:`parse_hosts`).
        connect_timeout: Seconds allowed for connect + handshake I/O.
        io_timeout: Per-frame socket timeout while a chunk is in flight
            (``None`` = wait forever; rely on ``straggler_timeout`` for
            hung-but-alive workers).
        straggler_timeout: Seconds before an idle worker speculatively
            re-runs an outstanding chunk (``None`` disables).
        max_attempts: Total executions allowed per chunk across
            speculative duplicates.
        chunks_per_worker: Planning granularity — chunks per worker in
            :meth:`plan`; more chunks mean finer requeue/load-balance
            units at slightly more framing overhead.
    """

    def __init__(
        self,
        hosts,
        *,
        connect_timeout: float = 10.0,
        io_timeout: float | None = None,
        straggler_timeout: float | None = None,
        max_attempts: int = 3,
        chunks_per_worker: int = 4,
    ) -> None:
        self.endpoints = parse_hosts(hosts)
        self.connect_timeout = connect_timeout
        self.io_timeout = io_timeout
        if straggler_timeout is not None and straggler_timeout <= 0:
            raise ValueError(
                f"straggler_timeout must be positive or None, got "
                f"{straggler_timeout}"
            )
        self.straggler_timeout = straggler_timeout
        self.max_attempts = max(1, max_attempts)
        self.chunks_per_worker = max(1, chunks_per_worker)

    # -- TaskExecutor --------------------------------------------------
    def plan(self, tasks):
        return _chunk_tasks(
            tasks,
            len(self.endpoints),
            chunks_per_worker=self.chunks_per_worker,
        )

    def map_chunks(self, context, chunks):
        if not chunks:
            return
        init_payload = pickle.dumps(
            context, protocol=pickle.HIGHEST_PROTOCOL
        )
        chunk_payloads = [
            pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
            for chunk in chunks
        ]
        state = _SweepState(len(chunks), self.max_attempts)
        events: queue.Queue = queue.Queue()
        sockets: dict[int, socket.socket] = {}
        socket_lock = threading.Lock()
        threads = []
        for worker_id, endpoint in enumerate(self.endpoints):
            thread = threading.Thread(
                target=self._worker_loop,
                args=(
                    worker_id,
                    endpoint,
                    init_payload,
                    chunk_payloads,
                    state,
                    events,
                    sockets,
                    socket_lock,
                ),
                name=f"remote-sweep-{endpoint[0]}:{endpoint[1]}",
                daemon=True,
            )
            state.worker_started()
            threads.append(thread)
        for thread in threads:
            thread.start()

        yielded: set[int] = set()
        task_errors: dict[int, RemoteTaskError] = {}
        last_transport_error: BaseException | None = None
        try:
            while len(yielded) + len(task_errors) < len(chunks):
                with state.condition:
                    no_workers = state.live_workers == 0
                if no_workers and events.empty():
                    break
                try:
                    event = events.get(timeout=1.0)
                except queue.Empty:
                    continue
                kind = event[0]
                if kind == "result":
                    _, chunk_index, results = event
                    if chunk_index not in yielded:
                        yielded.add(chunk_index)
                        yield chunk_index, results
                elif kind == "task_error":
                    _, chunk_index, error = event
                    task_errors.setdefault(chunk_index, error)
                elif kind == "down":
                    _, endpoint, exc = event
                    last_transport_error = exc
        finally:
            state.abort()
            with socket_lock:
                # Unblock any thread still parked in recv (e.g. the
                # original owner of a chunk a speculative duplicate
                # already settled).
                for sock in sockets.values():
                    try:
                        sock.close()
                    except OSError:
                        pass
            for thread in threads:
                thread.join(timeout=5.0)

        failures: list[tuple[int, BaseException]] = sorted(
            task_errors.items()
        )
        lost = [
            index
            for index in range(len(chunks))
            if index not in yielded and index not in task_errors
        ]
        for index in lost:
            failures.append(
                (
                    index,
                    RemoteTaskError(
                        "chunk never completed: every worker was lost "
                        f"(last transport error: {last_transport_error!r})"
                    ),
                )
            )
        if failures:
            failures.sort(key=lambda entry: entry[0])
            raise ChunkExecutionError(
                f"{len(failures)} of {len(chunks)} remote chunks failed",
                failures,
            ) from failures[0][1]

    # -- per-worker session thread -------------------------------------
    def _worker_loop(
        self,
        worker_id: int,
        endpoint: tuple[str, int],
        init_payload: bytes,
        chunk_payloads: list[bytes],
        state: _SweepState,
        events: queue.Queue,
        sockets: dict,
        socket_lock: threading.Lock,
    ) -> None:
        try:
            sock = socket.create_connection(
                endpoint, timeout=self.connect_timeout
            )
            _enable_keepalive(sock)
        except OSError as exc:
            # Event first, then the live-count decrement: the main loop
            # treats "no live workers + empty queue" as terminal, so the
            # reverse order could drop this error from the report.
            events.put(("down", endpoint, exc))
            state.worker_stopped()
            return
        current: int | None = None
        try:
            send_message(
                sock,
                {"type": "init", "protocol": PROTOCOL_VERSION},
                init_payload,
            )
            header, _ = recv_message(sock)
            if (
                header.get("type") != "ready"
                or header.get("protocol") != PROTOCOL_VERSION
            ):
                raise ProtocolError(
                    f"bad handshake from {endpoint[0]}:{endpoint[1]}: "
                    f"{header}"
                )
            sock.settimeout(self.io_timeout)
            with socket_lock:
                sockets[worker_id] = sock
            while True:
                current = state.claim(self.straggler_timeout)
                if current is None:
                    try:
                        send_message(sock, {"type": "end"})
                    except (OSError, ProtocolError):
                        pass
                    return
                send_message(
                    sock,
                    {"type": "chunk", "chunk": current},
                    chunk_payloads[current],
                )
                header, payload = recv_message(sock)
                if header["type"] == "result":
                    if header["chunk"] != current:
                        raise ProtocolError(
                            f"worker answered chunk {header['chunk']} "
                            f"while {current} was in flight"
                        )
                    results = _unpack_error_dicts(
                        header["descriptor"], payload_to_buffer(payload)
                    )
                    if state.settle(current):
                        events.put(("result", current, results))
                elif header["type"] == "error":
                    error = RemoteTaskError(
                        f"worker {endpoint[0]}:{endpoint[1]} failed "
                        f"chunk {current}: {header.get('message', '')}",
                        header.get("traceback", ""),
                    )
                    if state.settle(current):
                        events.put(("task_error", current, error))
                else:
                    raise ProtocolError(
                        f"unexpected frame type {header['type']!r}"
                    )
                current = None
        except Exception as exc:
            # Any escape — transport errors, torn frames, but also
            # malformed headers from a version-skewed worker — must
            # requeue the in-flight chunk and report the worker down;
            # a silently dead thread would leave claimers blocked and
            # hang the sweep.
            if current is not None:
                state.requeue(current)
            events.put(("down", endpoint, exc))
        finally:
            state.worker_stopped()
            with socket_lock:
                sockets.pop(worker_id, None)
            try:
                sock.close()
            except OSError:
                pass
