"""Worker side of the distributed sweep backend.

A :class:`WorkerServer` listens on one TCP port and serves coordinator
sessions: each accepted connection is one sweep session.  The
coordinator ships the (instance, config, options) triple exactly once
per session; every subsequent ``chunk`` frame carries a list of
:class:`repro.eval.parallel.ScenarioTask` records, and the worker
answers with the chunk's error vectors as one packed float64 payload
(the same transport the in-host pool uses).

Wire generations: sessions that negotiate protocol v4
(:data:`repro.eval.dist.protocol.CODEC_PROTOCOL_VERSION`) are
pickle-free — the context arrives as a canonical-JSON frame and chunks
as fixed-width struct records (:mod:`repro.eval.dist.codec`), framed by
:func:`repro.eval.dist.protocol.recv_json_message`.  v1–v3 sessions
keep the legacy pickled frames end to end.  A v4 session may
additionally move its chunk and result payloads through same-host
shared-memory rings (:mod:`repro.eval.dist.shm`): the coordinator
offers the rings in a ``shm`` frame, the worker attaches (or nacks back
to inline socket payloads), and from then on data-plane frames carry
``slot``/``size`` references instead of bytes.

Capacity: the handshake negotiates a protocol version
(:func:`repro.eval.dist.protocol.negotiate_version`); at version 2 the
``ready`` frame advertises the worker's *capacity* — how many chunks it
can compute at once (``repro-tomography worker`` defaults to the CPU
count; ``--capacity`` overrides).  A capacity-``C`` session executes up
to ``C`` in-flight chunks concurrently on a process pool (results may
return out of order; the coordinator keys them by chunk index), while a
version-1 coordinator — which never pipelines — gets the strict
sequential request/response loop regardless of capacity.

Cache semantics: when the worker is given a cache directory (its own
``--cache-dir`` flag or ``REPRO_CACHE_DIR``; typically a store shared
across workers via a network filesystem), each task is looked up before
executing — hits are served without compute — and each miss is written
back *as the task completes*, not after the sweep.  A worker killed
mid-chunk therefore still leaves every finished trial in the store, and
the retry only pays for what was genuinely lost.

Fault injection: ``fail_after_chunks=N`` makes the worker accept ``N``
chunks and then drop the connection without replying to the next one,
which is exactly what a worker killed mid-chunk looks like to the
coordinator.  The deterministic requeue tests and the distributed
benchmark's kill leg are built on it.  ``throttle=S`` sleeps ``S``
seconds before each task — latency injection that simulates a slower
or I/O-bound host without burning CPU, so the benchmark's
heterogeneous-capacity scenario reproduces on any machine; results are
delayed, never changed.

Run a worker from the CLI::

    repro-tomography worker --port 7100 --cache-dir /shared/store

or over SSH (the coordinator connects to ``host:7100``)::

    ssh host repro-tomography worker --bind 0.0.0.0 --port 7100
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import socket
import ssl
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.eval.dist.auth import (
    AUTH_MAGIC,
    AuthError,
    normalize_secret,
    server_handshake,
)
from repro.eval.dist.codec import decode_context, decode_tasks
from repro.eval.dist.protocol import (
    CAPACITY_PROTOCOL_VERSION,
    CODEC_PROTOCOL_VERSION,
    MAGIC_V4,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    _FRAME_REST,
    _recv_exact,
    bad_magic_error,
    buffer_payload,
    disable_nagle,
    negotiate_version,
    read_magic,
    recv_json_message,
    recv_message,
    send_json_message,
    send_message,
)
from repro.eval.dist.protocol import MAGIC as FRAME_MAGIC
from repro.eval.dist.faults import active_plan
from repro.eval.dist.shm import ShmError, attach_ring
from repro.eval.parallel import _execute_task, _pack_error_dicts
from repro.io import instance_fingerprint

__all__ = ["WorkerServer"]


# Pool-process state installed once by the initializer: each process
# opens its own cache handle so write-back happens task-by-task inside
# the process that computed the task, exactly like the sequential path.
_POOL_STATE: tuple | None = None


#: How many frame bytes a refusal will read-and-discard so its error
#: message survives.  Closing a socket with unread inbound data sends
#: RST, which can destroy the refusal frame mid-flight — so the worker
#: drains (never parses) the refused frame first.  A peer whose frame
#: exceeds the cap still fails closed; it just gets a reset instead of
#: the message.
_REFUSAL_DRAIN_CAP = 256 * 1024 * 1024


def _drain_refused_frame(connection, magic: bytes) -> None:
    """Consume — never parse — the frame a refused peer already sent.

    Only the plain-integer length fields are interpreted; header and
    payload bytes go straight to the bit bucket, so nothing a rejected
    peer sends is ever unpickled.
    """
    try:
        if magic in (FRAME_MAGIC, MAGIC_V4):
            header_len, payload_len = _FRAME_REST.unpack(
                _recv_exact(
                    connection, _FRAME_REST.size, at_boundary=False
                )
            )
            pending = header_len + payload_len
        elif magic == AUTH_MAGIC:
            # kind (u8) | body length (u32): auth bodies are tiny.
            rest = _recv_exact(connection, 5, at_boundary=False)
            pending = int.from_bytes(rest[1:], "big")
        else:
            return
        pending = min(pending, _REFUSAL_DRAIN_CAP)
        while pending:
            piece = connection.recv(min(1 << 16, pending))
            if not piece:
                return
            pending -= len(piece)
    except (OSError, ProtocolError):
        pass


def _pool_initializer(
    instance, config, options, cache_dir, throttle, fingerprint=None
) -> None:
    # v4 sessions pass the coordinator's shipped fingerprint so remote
    # cache keys are byte-for-byte the keys the coordinator would
    # compute; legacy sessions derive it from the unpickled instance.
    global _POOL_STATE
    cache = None
    if cache_dir is not None:
        from repro.eval.cache import TrialCache

        cache = TrialCache(cache_dir)
        if fingerprint is None:
            fingerprint = instance_fingerprint(instance)
    _POOL_STATE = (instance, config, options, cache, fingerprint, throttle)


def _run_chunk_tasks(
    tasks, instance, config, options, cache, fingerprint, throttle
):
    """Execute one chunk's tasks (cache-aware, throttle-aware), packed.

    The single definition of per-task semantics — the sequential
    session path and the pool path must never diverge on e.g. where
    the throttle sleeps relative to the cache lookup.
    """
    results = []
    for task in tasks:
        if throttle:
            time.sleep(throttle)
        results.append(
            WorkerServer._run_task(
                instance, config, options, task, cache, fingerprint
            )
        )
    return _pack_error_dicts(results)


def _pool_run_chunk(payload: bytes):
    # The chunk's task list crosses the pool boundary as the raw frame
    # payload and is unpickled here, in the child — unpickling in the
    # session thread would just re-pickle the tasks for the submit.
    tasks = pickle.loads(payload)
    instance, config, options, cache, fingerprint, throttle = _POOL_STATE
    return _run_chunk_tasks(
        tasks, instance, config, options, cache, fingerprint, throttle
    )


def _pool_run_chunk_v4(payload: bytes):
    # v4 twin of :func:`_pool_run_chunk`: the payload is struct-codec
    # task records, decoded in the child so the session thread stays a
    # pure frame pump (and never touches pickle for wire data).
    tasks = decode_tasks(payload)
    instance, config, options, cache, fingerprint, throttle = _POOL_STATE
    return _run_chunk_tasks(
        tasks, instance, config, options, cache, fingerprint, throttle
    )


#: Optional capabilities this worker advertises in its v4 ``ready``
#: frame.  Unknown-key tolerance makes the list forward-compatible:
#: old coordinators ignore it, new coordinators only use what both
#: sides understand (``heartbeat`` liveness pongs, CRC32-checksummed
#: shm slots).
WORKER_FEATURES = ("heartbeat", "shm-crc")


class _HeartbeatSender:
    """Unsolicited liveness pongs, one per half heartbeat interval.

    Armed when the coordinator's context frame carries a ``heartbeat``
    key: a daemon thread sends ``{"type": "pong"}`` frames every
    ``interval / 2`` under the session's send lock, so the coordinator
    observes traffic at least twice per interval from a healthy worker
    no matter how long a chunk computes.  A worker that is stopped
    (SIGSTOP), swapped to death, or wedged in a non-Python stall stops
    beating — which is the whole point: silence, not a closed socket,
    is what the coordinator's liveness monitor detects.

    ``freeze`` suppresses the beats for a bounded window (the chaos
    plane's in-process SIGSTOP lookalike).  Send failures end the
    thread quietly; the serve loop notices the dead session on its own.
    """

    def __init__(self, connection, send_lock, interval, log) -> None:
        self._connection = connection
        self._send_lock = send_lock
        self._interval = float(interval)
        self._log = log
        self._stop = threading.Event()
        self._frozen = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="worker-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._log(
            f"heartbeat armed: pong every {self._interval / 2.0:g}s"
        )
        self._thread.start()

    def _run(self) -> None:
        beat = 0
        while not self._stop.wait(self._interval / 2.0):
            if self._frozen.is_set():
                continue
            beat += 1
            try:
                with self._send_lock:
                    send_json_message(
                        self._connection, {"type": "pong", "beat": beat}
                    )
            except (OSError, ProtocolError):
                return  # session is gone; the serve loop handles it

    def freeze(self, seconds: float) -> None:
        """Suppress beats for ``seconds`` (caller's thread sleeps too)."""
        self._frozen.set()
        try:
            time.sleep(seconds)
        finally:
            self._frozen.clear()

    def stop(self) -> None:
        self._stop.set()


class _V4Transport:
    """One v4 session's data plane: inline socket bytes, or shm rings.

    Starts inline; an accepted ``shm`` frame attaches the
    coordinator-created rings, after which chunk payloads are read from
    ``slot``/``size`` references and results are written into the
    result ring whenever a free slot fits them (inline fallback
    otherwise — shm is an optimisation, never a correctness
    dependency).  The worker owns the result ring's free list; the
    coordinator returns consumed slots in the ``ack`` field of its
    chunk/end frames.
    """

    def __init__(self, connection, send_lock=None) -> None:
        self._connection = connection
        # All session sends — results, errors, control replies, and the
        # heartbeat sender's pongs — serialize on this one lock so
        # frames never interleave on the socket.
        self._send_lock = (
            send_lock if send_lock is not None else threading.Lock()
        )
        self._chunk_ring = None
        self._result_ring = None
        self._free_slots: list[int] = []
        self._free_lock = threading.Lock()

    @property
    def using_shm(self) -> bool:
        return self._chunk_ring is not None

    def open(self, header: dict) -> dict:
        """Attach the offered rings; returns the shm-ok/shm-nack reply."""
        if self.using_shm:
            return {
                "type": "shm-nack",
                "message": "session already has shared-memory rings",
            }
        chunk_ring = None
        try:
            chunk_spec = header["chunk_ring"]
            result_spec = header["result_ring"]
            chunk_ring = attach_ring(
                chunk_spec["name"],
                int(chunk_spec["slots"]),
                int(chunk_spec["slot_size"]),
                layout=chunk_spec.get("layout"),
            )
            result_ring = attach_ring(
                result_spec["name"],
                int(result_spec["slots"]),
                int(result_spec["slot_size"]),
                layout=result_spec.get("layout"),
            )
        except (ShmError, KeyError, TypeError, ValueError) as exc:
            if chunk_ring is not None:
                chunk_ring.close()
            return {"type": "shm-nack", "message": str(exc)}
        self._chunk_ring = chunk_ring
        self._result_ring = result_ring
        self._free_slots = list(range(result_ring.n_slots))
        return {"type": "shm-ok"}

    def collect_acks(self, header: dict) -> None:
        """Return coordinator-consumed result slots to the free list."""
        slots = header.get("ack")
        if not slots:
            return
        with self._free_lock:
            self._free_slots.extend(int(slot) for slot in slots)

    def chunk_payload(self, header: dict, payload: bytes) -> bytes:
        """The chunk's encoded tasks, wherever the frame put them.

        Shm slots are copied out immediately: the coordinator reuses a
        chunk slot as soon as this chunk is answered, and the
        concurrent path answers from pool callbacks long after this
        read.
        """
        if "slot" not in header:
            return payload
        if self._chunk_ring is None:
            raise ProtocolError(
                "chunk frame references a shm slot but the session "
                "has no shared-memory rings"
            )
        view = self._chunk_ring.read(
            int(header["slot"]), int(header["size"])
        )
        try:
            return bytes(view)
        finally:
            view.release()

    def send(self, header: dict, payload: bytes = b"") -> None:
        """Send one control frame under the session's send lock."""
        with self._send_lock:
            send_json_message(self._connection, header, payload)

    def send_result(self, header: dict, buffer) -> None:
        """Ship one result: via a free shm slot if it fits, else inline.

        Socket sends hold the session's send lock (pool callbacks and
        the heartbeat sender share the socket); the free list has its
        own lock because acks return slots from the session thread
        while callbacks claim them.
        """
        payload = buffer_payload(buffer)
        size = len(payload)
        slot = None
        if (
            self._result_ring is not None
            and size <= self._result_ring.slot_size
        ):
            with self._free_lock:
                if self._free_slots:
                    slot = self._free_slots.pop()
        if slot is None:
            self.send(header, payload)
            return
        try:
            self._result_ring.write(slot, payload)
        except ShmError:
            with self._free_lock:
                self._free_slots.append(slot)
            self.send(header, payload)
            return
        self.send(dict(header, slot=slot, size=size))

    def close(self) -> None:
        for ring in (self._chunk_ring, self._result_ring):
            if ring is not None:
                ring.close()
        self._chunk_ring = None
        self._result_ring = None


class WorkerServer:
    """Serve sweep sessions on ``host:port`` (``port=0`` → ephemeral).

    Parameters:
        capacity: Parallel chunk slots advertised to version-2
            coordinators; sessions with ``capacity > 1`` execute their
            in-flight chunks on a process pool of that size.  Defaults
            to 1 (the sequential version-1 behaviour); the CLI worker
            defaults to the CPU count instead.  The pool (and the
            advertisement) is per *session*: a worker shared by two
            overlapping sweeps runs up to ``2 × capacity`` compute
            processes, so size ``--capacity`` for the share of the
            host each concurrent sweep should get on shared-fleet
            deployments.
        cache_dir: Optional :class:`repro.eval.cache.TrialCache` root;
            tasks are looked up before executing and written back as
            they complete.
        max_sessions: Stop accepting after this many sessions (``None``
            = serve forever).  CI and tests use it to bound lifetime.
        fail_after_chunks: Fault-injection hook — accept this many
            chunks per session, then drop the connection without
            replying.
        throttle: Latency-injection hook — sleep this many seconds
            before each task (a simulated slower host; results are
            delayed, never changed).
        secret: Shared secret (str or bytes).  When set, every session
            must complete the v3 HMAC handshake
            (:func:`repro.eval.dist.auth.server_handshake`) before the
            worker reads — let alone unpickles — any payload frame;
            v1/v2 and unauthenticated peers are refused at the magic
            bytes.  ``None`` keeps the historical trust-the-network
            behaviour.
        ssl_context: Optional server-side :class:`ssl.SSLContext`
            (see :func:`repro.eval.dist.certs.server_context`); every
            accepted connection is TLS-wrapped before any frame is
            read, and a plaintext peer is dropped at the TLS handshake.
        handshake_timeout: Seconds a new connection gets to finish
            TLS + auth + ``init``; a half-open or stalling peer is
            dropped instead of pinning a session thread forever.
        protocol_max: Highest protocol version this worker will
            negotiate (clamped to the library's
            :data:`repro.eval.dist.protocol.PROTOCOL_VERSION`).
            ``protocol_max=3`` makes a current worker behave exactly
            like a pre-v4 deployment — the mixed-fleet tests and the
            benchmark's wire-generation baselines are built on it.
        log: Callable for one-line status messages (``None`` = silent).

    Attributes:
        negotiated_versions: Protocol version of each served session,
            in acceptance order (diagnostic; the interop tests assert
            mixed fleets really split across wire generations).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        capacity: int = 1,
        cache_dir=None,
        max_sessions: int | None = None,
        fail_after_chunks: int | None = None,
        throttle: float = 0.0,
        secret=None,
        ssl_context: ssl.SSLContext | None = None,
        handshake_timeout: float = 30.0,
        protocol_max: int | None = None,
        log=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if throttle < 0:
            raise ValueError(f"throttle must be >= 0, got {throttle}")
        if handshake_timeout <= 0:
            raise ValueError(
                f"handshake_timeout must be positive, got "
                f"{handshake_timeout}"
            )
        if protocol_max is not None and protocol_max < 1:
            raise ValueError(
                f"protocol_max must be >= 1, got {protocol_max}"
            )
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self.capacity = capacity
        self._cache_dir = cache_dir
        self._max_sessions = max_sessions
        self._fail_after_chunks = fail_after_chunks
        self._throttle = throttle
        self._secret = normalize_secret(secret)
        self._ssl_context = ssl_context
        self._handshake_timeout = handshake_timeout
        self._protocol_max = (
            PROTOCOL_VERSION
            if protocol_max is None
            else min(PROTOCOL_VERSION, protocol_max)
        )
        self._log = log or (lambda message: None)
        self._closed = False
        self.negotiated_versions: list[int] = []

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self._closed = True
        try:
            self._server.close()
        except OSError:
            pass

    def serve_forever(self) -> int:
        """Accept sessions until ``max_sessions`` or :meth:`close`.

        Sessions run concurrently, one thread each, so a worker busy
        with a long sweep still handshakes a second coordinator
        immediately (two overlapping sweeps sharing a worker fleet is
        the documented shared-cache deployment).  Active sessions are
        joined before returning, so ``max_sessions=N`` never cuts a
        running sweep short.
        """
        sessions = 0
        threads: list[threading.Thread] = []
        self._log(f"worker listening on {self.address}")
        if self._secret is not None or self._ssl_context is not None:
            tls = "on" if self._ssl_context is not None else "off"
            secret = "configured" if self._secret is not None else "off"
            self._log(f"worker security: tls={tls} secret={secret}")
        try:
            while (
                self._max_sessions is None
                or sessions < self._max_sessions
            ):
                try:
                    connection, peer = self._server.accept()
                except OSError:
                    break  # closed from another thread
                plan = active_plan()
                if plan is not None and plan.refuse_connect():
                    # Chaos: look exactly like a crashed listener —
                    # accept then reset, no frame ever sent.  Does not
                    # count against max_sessions, so the retried
                    # connect still finds a session slot.
                    self._log(
                        f"chaos: refusing connection from "
                        f"{peer[0]}:{peer[1]}"
                    )
                    try:
                        connection.close()
                    except OSError:
                        pass
                    continue
                sessions += 1
                self._log(f"session {sessions} from {peer[0]}:{peer[1]}")
                thread = threading.Thread(
                    target=self._session_thread,
                    args=(connection,),
                    name=f"worker-session-{sessions}",
                )
                thread.start()
                threads.append(thread)
        finally:
            for thread in threads:
                thread.join()
            self.close()
        return sessions

    def _refuse_plaintext(self, raw: socket.socket) -> None:
        """Tell a plaintext peer it hit a TLS listener, then hang up.

        Sent *instead of* attempting the TLS accept (which would
        consume the peer's frame as a garbled ClientHello and close
        without a word), so the coordinator can render a configuration
        error rather than a bare connection reset.
        """
        try:
            send_message(
                raw,
                {
                    "type": "error",
                    "error": "tls-required",
                    "chunk": None,
                    "message": (
                        "this worker serves TLS; configure --tls-ca "
                        "(and --tls-cert/--tls-key for mutual TLS) on "
                        "the coordinator"
                    ),
                    "traceback": "",
                },
            )
        except OSError:
            pass
        self._log(
            "refused plaintext session on the TLS listener; no payload "
            "was read"
        )

    def _session_thread(self, raw: socket.socket) -> None:
        disable_nagle(raw)
        wrapped = None
        live = [raw]
        handshake_done = threading.Event()

        def _reap_stalled_handshake() -> None:
            # The per-recv socket timeout alone is not a deadline: a
            # peer dripping one byte per interval restarts it forever.
            # This timer enforces the absolute window — close the
            # socket(s), and whatever recv the session thread is
            # parked in raises.
            if not handshake_done.is_set():
                for sock in list(live):
                    try:
                        sock.close()
                    except OSError:
                        pass

        reaper = threading.Timer(
            self._handshake_timeout, _reap_stalled_handshake
        )
        reaper.daemon = True
        reaper.start()
        try:
            try:
                # A bounded handshake window: a half-open peer (or a
                # plaintext client staring at a TLS listener) is
                # dropped instead of pinning this thread forever.  The
                # session switches to blocking mode once it is up.
                raw.settimeout(self._handshake_timeout)
                if self._ssl_context is not None:
                    # Sniff (without consuming) the first bytes: our
                    # own plaintext magics mean a peer that forgot TLS
                    # and deserves a readable refusal.
                    first = raw.recv(4, socket.MSG_PEEK)
                    if first and first in (
                        FRAME_MAGIC[: len(first)],
                        MAGIC_V4[: len(first)],
                        AUTH_MAGIC[: len(first)],
                    ):
                        _drain_refused_frame(raw, read_magic(raw))
                        self._refuse_plaintext(raw)
                        return
                    wrapped = self._ssl_context.wrap_socket(
                        raw, server_side=True
                    )
                    live.append(wrapped)
                self._serve_session(
                    wrapped if wrapped is not None else raw,
                    handshake_done,
                )
            except Exception as exc:
                # A torn session never takes the worker down — not just
                # transport errors but anything a mismatched coordinator
                # can provoke (unpicklable payloads, malformed headers,
                # failed TLS or auth handshakes): log and keep serving
                # other sessions.
                self._log(f"session aborted: {exc!r}")
        finally:
            reaper.cancel()
            for sock in (wrapped, raw):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass

    # -- one session ---------------------------------------------------
    def _open_cache(self):
        if self._cache_dir is None:
            return None
        from repro.eval.cache import TrialCache

        return TrialCache(self._cache_dir)

    def _serve_session(
        self, connection: socket.socket, handshake_done=None
    ) -> None:
        # Dispatch on the first 4 bytes so the secured path decides
        # before any pickled byte — header included — is consumed.
        magic = read_magic(connection)
        authenticated_version = None
        payload = b""
        if magic == AUTH_MAGIC:
            try:
                authenticated_version = server_handshake(
                    connection,
                    self._secret,
                    preread_magic=magic,
                    protocol_max=self._protocol_max,
                )
            except AuthError as exc:
                # The rejection frame is already on the wire; log and
                # drop without ever touching a payload.
                self._log(f"auth refused: {exc}")
                return
            if authenticated_version >= CODEC_PROTOCOL_VERSION:
                # The handshake already bound a pickle-free version for
                # both sides; no legacy init frame exists on this
                # session, so go straight to the v4 exchange.
                self.negotiated_versions.append(authenticated_version)
                self._serve_v4(
                    connection, authenticated_version, handshake_done
                )
                return
            header, payload = recv_message(connection)
        elif magic == FRAME_MAGIC:
            if self._secret is not None:
                # Refuse legacy/unauthenticated peers at the magic
                # bytes: the init frame's pickled header and payload
                # are never parsed — only drained, so the refusal
                # below is not destroyed by a reset.  The reply uses
                # the legacy error framing so v1/v2 coordinators can
                # render it.
                _drain_refused_frame(connection, magic)
                send_message(
                    connection,
                    {
                        "type": "error",
                        "error": "auth-required",
                        "chunk": None,
                        "message": (
                            "this worker requires shared-secret "
                            "authentication (protocol v3); configure "
                            "the same secret on the coordinator "
                            "(REPRO_DIST_SECRET or --secret-file)"
                        ),
                        "traceback": "",
                    },
                )
                self._log(
                    "refused unauthenticated session (shared secret "
                    "required); no payload was read"
                )
                return
            header, payload = recv_message(
                connection, preread_magic=magic
            )
        else:
            raise bad_magic_error(magic, "an init or auth frame")
        if header["type"] != "init":
            raise ProtocolError(
                f"expected an init frame, got {header['type']!r}"
            )
        try:
            version = negotiate_version(header, limit=self._protocol_max)
        except ProtocolError as exc:
            send_message(
                connection,
                {
                    "type": "error",
                    "chunk": None,
                    "message": str(exc),
                    "traceback": "",
                },
            )
            return
        if (
            authenticated_version is not None
            and version != authenticated_version
        ):
            # The HMAC bound the negotiated version; an init that
            # negotiates anything else is a downgrade attempt.
            raise ProtocolError(
                f"init negotiated version {version} but the "
                f"authenticated handshake bound version "
                f"{authenticated_version}; refusing the downgrade"
            )
        self.negotiated_versions.append(version)
        if version >= CODEC_PROTOCOL_VERSION:
            # The init frame's pickled payload is a compatibility
            # vehicle for older workers; this one negotiated the
            # pickle-free wire, so the bytes are discarded *unparsed*
            # and the context arrives again as a v4 JSON frame.
            del payload
            self._serve_v4(connection, version, handshake_done)
            return
        instance, config, options = pickle.loads(payload)
        ready = {
            "type": "ready",
            "protocol": version,
            "host": socket.gethostname(),
        }
        if version >= CAPACITY_PROTOCOL_VERSION:
            ready["capacity"] = self.capacity
        send_message(connection, ready)
        if handshake_done is not None:
            handshake_done.set()  # disarm the stalled-handshake reaper
        connection.settimeout(None)  # handshake done: blocking session
        if version >= CAPACITY_PROTOCOL_VERSION and self.capacity > 1:
            self._serve_concurrent(connection, instance, config, options)
        else:
            self._serve_sequential(connection, instance, config, options)

    # -- protocol v4 sessions ------------------------------------------
    def _serve_v4(self, connection, version, handshake_done) -> None:
        """The pickle-free session: v4 ready, context frame, then serve.

        Frame order is uniform across the auth and legacy-init entry
        paths: the worker's v4 ``ready`` goes first (its magic is what
        tells the coordinator the reply is v4), the coordinator answers
        with the codec'd ``context`` frame, and only then does the
        chunk loop start.
        """
        send_json_message(
            connection,
            {
                "type": "ready",
                "protocol": version,
                "host": socket.gethostname(),
                "capacity": self.capacity,
                "features": list(WORKER_FEATURES),
            },
        )
        header, payload = recv_json_message(connection)
        if header["type"] != "context":
            raise ProtocolError(
                f"expected a context frame, got {header['type']!r}"
            )
        if header.get("protocol") != version:
            raise ProtocolError(
                f"context frame claims protocol "
                f"{header.get('protocol')!r} on a version-{version} "
                f"session; refusing the mismatch"
            )
        (instance, config, options), fingerprint = decode_context(payload)
        if handshake_done is not None:
            handshake_done.set()  # disarm the stalled-handshake reaper
        connection.settimeout(None)  # handshake done: blocking session
        send_lock = threading.Lock()
        heartbeat = None
        interval = header.get("heartbeat")
        if isinstance(interval, (int, float)) and interval > 0:
            # The coordinator armed liveness for this session: beat
            # unsolicited pongs so long chunks never read as silence.
            heartbeat = _HeartbeatSender(
                connection, send_lock, interval, self._log
            )
            heartbeat.start()
        try:
            if self.capacity > 1:
                self._serve_concurrent_v4(
                    connection,
                    instance,
                    config,
                    options,
                    fingerprint,
                    send_lock,
                    heartbeat,
                )
            else:
                self._serve_sequential_v4(
                    connection,
                    instance,
                    config,
                    options,
                    fingerprint,
                    send_lock,
                    heartbeat,
                )
        finally:
            if heartbeat is not None:
                heartbeat.stop()

    def _apply_chunk_fault(self, ordinal: int, heartbeat) -> bool:
        """Chaos hook at chunk arrival; ``True`` = drop the session.

        ``worker-kill`` and ``worker-sigstop`` act on the whole process
        only when the installed plan has ``allow_process_faults`` (the
        worker CLI grants it); an in-process plan — a coordinator-side
        test that also reaches this code — degrades them to a dropped
        session, which exercises the same requeue path without killing
        the test runner.
        """
        plan = active_plan()
        if plan is None:
            return False
        fault = plan.chunk_fault(ordinal)
        if fault is None:
            return False
        kind = fault[0]
        if kind == "kill":
            if plan.allow_process_faults:
                self._log(f"chaos: killing process at chunk {ordinal}")
                os._exit(23)
            self._log(f"chaos: dropping session at chunk {ordinal}")
            return True
        if kind == "sigstop":
            if plan.allow_process_faults:
                self._log(f"chaos: SIGSTOP at chunk {ordinal}")
                os.kill(os.getpid(), signal.SIGSTOP)
                # Resumes here on SIGCONT; the session continues if the
                # coordinator has not already torn it down.
                return False
            self._log(f"chaos: dropping session at chunk {ordinal}")
            return True
        if kind == "freeze":
            # SIGSTOP lookalike scoped to this session: heartbeats are
            # suppressed and the serve loop sleeps, so the coordinator
            # sees total silence for the window.
            self._log(
                f"chaos: freezing for {fault[1]:g}s at chunk {ordinal}"
            )
            if heartbeat is not None:
                heartbeat.freeze(fault[1])
            else:
                time.sleep(fault[1])
            return False
        # "stall": compute takes forever but the worker stays live —
        # heartbeats keep flowing; only a chunk deadline catches this.
        self._log(
            f"chaos: stalling {fault[1]:g}s at chunk {ordinal}"
        )
        time.sleep(fault[1])
        return False

    def _serve_sequential_v4(
        self,
        connection,
        instance,
        config,
        options,
        fingerprint,
        send_lock,
        heartbeat,
    ) -> None:
        """v4 twin of :meth:`_serve_sequential` (one chunk in flight)."""
        cache = self._open_cache()
        transport = _V4Transport(connection, send_lock)
        chunks_accepted = 0
        try:
            while True:
                try:
                    header, payload = recv_json_message(connection)
                except ConnectionClosed:
                    return
                kind = header["type"]
                if kind == "ping":
                    # Coordinator liveness probe: answer immediately,
                    # even between heartbeat beats.
                    transport.send({"type": "pong"})
                    continue
                if kind == "shm":
                    transport.send(transport.open(header))
                    continue
                if kind == "end":
                    transport.collect_acks(header)
                    if cache is not None:
                        self._log(
                            f"session done — {cache.stats.render()}"
                        )
                    return
                if kind != "chunk":
                    raise ProtocolError(
                        f"expected a chunk frame, got {kind!r}"
                    )
                transport.collect_acks(header)
                if (
                    self._fail_after_chunks is not None
                    and chunks_accepted >= self._fail_after_chunks
                ):
                    self._log(
                        f"fault injection: dropping connection before "
                        f"chunk {header['chunk']}"
                    )
                    return
                if self._apply_chunk_fault(chunks_accepted + 1, heartbeat):
                    return
                chunk_id = header["chunk"]
                tasks = decode_tasks(
                    transport.chunk_payload(header, payload)
                )
                try:
                    descriptor, buffer = _run_chunk_tasks(
                        tasks,
                        instance,
                        config,
                        options,
                        cache,
                        fingerprint if cache is not None else None,
                        self._throttle,
                    )
                except Exception as exc:
                    transport.send(
                        {
                            "type": "error",
                            "chunk": chunk_id,
                            "message": repr(exc),
                            "traceback": traceback.format_exc(),
                        },
                    )
                else:
                    transport.send_result(
                        {
                            "type": "result",
                            "chunk": chunk_id,
                            "descriptor": descriptor,
                        },
                        buffer,
                    )
                chunks_accepted += 1
        finally:
            transport.close()

    def _serve_concurrent_v4(
        self,
        connection,
        instance,
        config,
        options,
        fingerprint,
        send_lock,
        heartbeat,
    ) -> None:
        """v4 twin of :meth:`_serve_concurrent` (pooled chunk slots)."""
        pool = ProcessPoolExecutor(
            max_workers=self.capacity,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_pool_initializer,
            initargs=(
                instance,
                config,
                options,
                self._cache_dir,
                self._throttle,
                fingerprint,
            ),
        )
        transport = _V4Transport(connection, send_lock)
        chunks_accepted = 0
        try:
            while True:
                try:
                    header, payload = recv_json_message(connection)
                except ConnectionClosed:
                    return
                kind = header["type"]
                if kind == "ping":
                    transport.send({"type": "pong"})
                    continue
                if kind == "shm":
                    transport.send(transport.open(header))
                    continue
                if kind == "end":
                    transport.collect_acks(header)
                    self._log("session done")
                    return
                if kind != "chunk":
                    raise ProtocolError(
                        f"expected a chunk frame, got {kind!r}"
                    )
                transport.collect_acks(header)
                if (
                    self._fail_after_chunks is not None
                    and chunks_accepted >= self._fail_after_chunks
                ):
                    self._log(
                        f"fault injection: dropping connection before "
                        f"chunk {header['chunk']}"
                    )
                    return
                if self._apply_chunk_fault(chunks_accepted + 1, heartbeat):
                    return
                chunk_id = header["chunk"]
                data = transport.chunk_payload(header, payload)
                future = pool.submit(_pool_run_chunk_v4, data)
                future.add_done_callback(
                    lambda done, chunk=chunk_id: (
                        self._send_chunk_result_v4(
                            connection, transport, chunk, done
                        )
                    )
                )
                chunks_accepted += 1
        finally:
            # Abandon rather than join (see _serve_concurrent); close
            # the transport only after the pool can no longer call back
            # into it.
            pool.shutdown(wait=False, cancel_futures=True)
            transport.close()

    def _send_chunk_result_v4(
        self, connection, transport, chunk_id, future
    ) -> None:
        """v4 twin of :meth:`_send_chunk_result` (same failure policy).

        The transport serializes its own sends (one lock shared with
        the session thread and the heartbeat sender).
        """
        try:
            try:
                descriptor, buffer = future.result()
            except BrokenProcessPool as exc:
                self._log(
                    f"process pool broke on chunk {chunk_id}: {exc!r}"
                )
                try:
                    connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    connection.close()
                except OSError:
                    pass
                return
            except Exception as exc:
                transport.send(
                    {
                        "type": "error",
                        "chunk": chunk_id,
                        "message": repr(exc),
                        "traceback": "".join(
                            traceback.format_exception(exc)
                        ),
                    },
                )
            else:
                transport.send_result(
                    {
                        "type": "result",
                        "chunk": chunk_id,
                        "descriptor": descriptor,
                    },
                    buffer,
                )
        except BaseException as exc:
            # The session is gone (connection closed mid-send) or the
            # future was cancelled by a tearing-down pool; either way
            # the coordinator requeues the chunk elsewhere.
            self._log(f"result send failed for chunk {chunk_id}: {exc!r}")

    def _serve_sequential(
        self, connection, instance, config, options
    ) -> None:
        """One chunk in flight, computed in the session thread."""
        cache = self._open_cache()
        fingerprint = (
            instance_fingerprint(instance) if cache is not None else None
        )
        chunks_accepted = 0
        while True:
            try:
                header, payload = recv_message(connection)
            except ConnectionClosed:
                return
            if header["type"] == "end":
                if cache is not None:
                    self._log(f"session done — {cache.stats.render()}")
                return
            if header["type"] != "chunk":
                raise ProtocolError(
                    f"expected a chunk frame, got {header['type']!r}"
                )
            if (
                self._fail_after_chunks is not None
                and chunks_accepted >= self._fail_after_chunks
            ):
                # Fault injection: vanish mid-chunk, exactly like a
                # worker killed while computing.
                self._log(
                    f"fault injection: dropping connection before "
                    f"chunk {header['chunk']}"
                )
                return
            chunk_id = header["chunk"]
            tasks = pickle.loads(payload)
            try:
                descriptor, buffer = _run_chunk_tasks(
                    tasks,
                    instance,
                    config,
                    options,
                    cache,
                    fingerprint,
                    self._throttle,
                )
            except Exception as exc:
                send_message(
                    connection,
                    {
                        "type": "error",
                        "chunk": chunk_id,
                        "message": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            else:
                send_message(
                    connection,
                    {
                        "type": "result",
                        "chunk": chunk_id,
                        "descriptor": descriptor,
                    },
                    buffer_payload(buffer),
                )
            chunks_accepted += 1

    def _serve_concurrent(
        self, connection, instance, config, options
    ) -> None:
        """Up to ``capacity`` in-flight chunks on a process pool.

        The session thread only receives frames and submits chunks;
        pool completion callbacks send each result as it finishes, so
        replies may be out of chunk order (the coordinator keys them by
        chunk index).  The ``spawn`` start method keeps the fork-free
        even though the server is multi-threaded.
        """
        pool = ProcessPoolExecutor(
            max_workers=self.capacity,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_pool_initializer,
            initargs=(
                instance,
                config,
                options,
                self._cache_dir,
                self._throttle,
            ),
        )
        send_lock = threading.Lock()
        chunks_accepted = 0
        try:
            while True:
                try:
                    header, payload = recv_message(connection)
                except ConnectionClosed:
                    return
                if header["type"] == "end":
                    # The coordinator only sends "end" after it has
                    # received every in-flight result, so nothing is
                    # computing for this session any more.
                    self._log("session done")
                    return
                if header["type"] != "chunk":
                    raise ProtocolError(
                        f"expected a chunk frame, got {header['type']!r}"
                    )
                if (
                    self._fail_after_chunks is not None
                    and chunks_accepted >= self._fail_after_chunks
                ):
                    self._log(
                        f"fault injection: dropping connection before "
                        f"chunk {header['chunk']}"
                    )
                    return
                chunk_id = header["chunk"]
                future = pool.submit(_pool_run_chunk, payload)
                future.add_done_callback(
                    lambda done, chunk=chunk_id: self._send_chunk_result(
                        connection, send_lock, chunk, done
                    )
                )
                chunks_accepted += 1
        finally:
            # Abandon rather than join: on a fault-injected (or torn)
            # session the in-flight chunks are already requeued on the
            # coordinator; their pool processes finish their current
            # task, write it back to the cache, and exit.
            pool.shutdown(wait=False, cancel_futures=True)

    def _send_chunk_result(
        self, connection, send_lock, chunk_id, future
    ) -> None:
        """Completion callback: ship one chunk's result or error.

        Task exceptions become ``error`` frames (they would fail
        identically anywhere, so the coordinator must not retry them).
        A *broken pool* — a child OOM-killed or segfaulted — is
        infrastructure death, not a task error: drop the session
        without replying, so the coordinator sees this worker as down
        and requeues the chunk on survivors, exactly like a sequential
        worker process dying.
        """
        try:
            try:
                descriptor, buffer = future.result()
            except BrokenProcessPool as exc:
                self._log(
                    f"process pool broke on chunk {chunk_id}: {exc!r}"
                )
                try:
                    connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    connection.close()
                except OSError:
                    pass
                return
            except Exception as exc:
                with send_lock:
                    send_message(
                        connection,
                        {
                            "type": "error",
                            "chunk": chunk_id,
                            "message": repr(exc),
                            "traceback": "".join(
                                traceback.format_exception(exc)
                            ),
                        },
                    )
            else:
                with send_lock:
                    send_message(
                        connection,
                        {
                            "type": "result",
                            "chunk": chunk_id,
                            "descriptor": descriptor,
                        },
                        buffer_payload(buffer),
                    )
        except BaseException as exc:
            # The session is gone (connection closed mid-send) or the
            # future was cancelled by a tearing-down pool; either way
            # the coordinator requeues the chunk elsewhere.
            self._log(f"result send failed for chunk {chunk_id}: {exc!r}")

    @staticmethod
    def _run_task(instance, config, options, task, cache, fingerprint):
        key = None
        if (
            cache is not None
            and task.scenario_seed is not None
            and task.run_seed is not None
        ):
            key = cache.task_key(
                fingerprint, task, config=config, options=options
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
        errors = _execute_task(instance, config, options, task)
        if key is not None:
            cache.put(key, errors)
        return errors
