"""Worker side of the distributed sweep backend.

A :class:`WorkerServer` listens on one TCP port and serves coordinator
sessions sequentially: each accepted connection is one sweep session.
The coordinator ships the (instance, config, options) triple exactly
once per session in the ``init`` frame; every subsequent ``chunk`` frame
is just a pickled list of :class:`repro.eval.parallel.ScenarioTask`
records, and the worker answers with the chunk's error vectors as one
packed float64 payload (the same transport the in-host pool uses).

Cache semantics: when the worker is given a cache directory (its own
``--cache-dir`` flag or ``REPRO_CACHE_DIR``; typically a store shared
across workers via a network filesystem), each task is looked up before
executing — hits are served without compute — and each miss is written
back *as the task completes*, not after the sweep.  A worker killed
mid-chunk therefore still leaves every finished trial in the store, and
the retry only pays for what was genuinely lost.

Fault injection: ``fail_after_chunks=N`` makes the worker serve ``N``
chunks and then drop the connection without replying to the next one,
which is exactly what a worker killed mid-chunk looks like to the
coordinator.  The deterministic requeue tests and the distributed
benchmark's kill leg are built on it.

Run a worker from the CLI::

    repro-tomography worker --port 7100 --cache-dir /shared/store

or over SSH (the coordinator connects to ``host:7100``)::

    ssh host repro-tomography worker --bind 0.0.0.0 --port 7100
"""

from __future__ import annotations

import pickle
import socket
import threading
import traceback

from repro.eval.dist.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    buffer_payload,
    recv_message,
    send_message,
)
from repro.eval.parallel import _execute_task, _pack_error_dicts
from repro.io import instance_fingerprint

__all__ = ["WorkerServer"]


class WorkerServer:
    """Serve sweep sessions on ``host:port`` (``port=0`` → ephemeral).

    Parameters:
        cache_dir: Optional :class:`repro.eval.cache.TrialCache` root;
            tasks are looked up before executing and written back as
            they complete.
        max_sessions: Stop accepting after this many sessions (``None``
            = serve forever).  CI and tests use it to bound lifetime.
        fail_after_chunks: Fault-injection hook — serve this many chunks
            per session, then drop the connection without replying.
        log: Callable for one-line status messages (``None`` = silent).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir=None,
        max_sessions: int | None = None,
        fail_after_chunks: int | None = None,
        log=None,
    ) -> None:
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self._cache_dir = cache_dir
        self._max_sessions = max_sessions
        self._fail_after_chunks = fail_after_chunks
        self._log = log or (lambda message: None)
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self._closed = True
        try:
            self._server.close()
        except OSError:
            pass

    def serve_forever(self) -> int:
        """Accept sessions until ``max_sessions`` or :meth:`close`.

        Sessions run concurrently, one thread each, so a worker busy
        with a long sweep still handshakes a second coordinator
        immediately (two overlapping sweeps sharing a worker fleet is
        the documented shared-cache deployment).  Active sessions are
        joined before returning, so ``max_sessions=N`` never cuts a
        running sweep short.
        """
        sessions = 0
        threads: list[threading.Thread] = []
        self._log(f"worker listening on {self.address}")
        try:
            while (
                self._max_sessions is None
                or sessions < self._max_sessions
            ):
                try:
                    connection, peer = self._server.accept()
                except OSError:
                    break  # closed from another thread
                sessions += 1
                self._log(f"session {sessions} from {peer[0]}:{peer[1]}")
                thread = threading.Thread(
                    target=self._session_thread,
                    args=(connection,),
                    name=f"worker-session-{sessions}",
                )
                thread.start()
                threads.append(thread)
        finally:
            for thread in threads:
                thread.join()
            self.close()
        return sessions

    def _session_thread(self, connection: socket.socket) -> None:
        with connection:
            try:
                self._serve_session(connection)
            except Exception as exc:
                # A torn session never takes the worker down — not just
                # transport errors but anything a mismatched coordinator
                # can provoke (unpicklable payloads, malformed headers):
                # log and keep serving other sessions.
                self._log(f"session aborted: {exc!r}")

    # -- one session ---------------------------------------------------
    def _open_cache(self):
        if self._cache_dir is None:
            return None
        from repro.eval.cache import TrialCache

        return TrialCache(self._cache_dir)

    def _serve_session(self, connection: socket.socket) -> None:
        header, payload = recv_message(connection)
        if header["type"] != "init":
            raise ProtocolError(
                f"expected an init frame, got {header['type']!r}"
            )
        if header.get("protocol") != PROTOCOL_VERSION:
            send_message(
                connection,
                {
                    "type": "error",
                    "chunk": None,
                    "message": (
                        f"protocol mismatch: worker speaks "
                        f"{PROTOCOL_VERSION}, coordinator sent "
                        f"{header.get('protocol')!r}"
                    ),
                    "traceback": "",
                },
            )
            return
        instance, config, options = pickle.loads(payload)
        cache = self._open_cache()
        fingerprint = (
            instance_fingerprint(instance) if cache is not None else None
        )
        send_message(
            connection,
            {
                "type": "ready",
                "protocol": PROTOCOL_VERSION,
                "host": socket.gethostname(),
            },
        )
        chunks_served = 0
        while True:
            try:
                header, payload = recv_message(connection)
            except ConnectionClosed:
                return
            if header["type"] == "end":
                if cache is not None:
                    self._log(f"session done — {cache.stats.render()}")
                return
            if header["type"] != "chunk":
                raise ProtocolError(
                    f"expected a chunk frame, got {header['type']!r}"
                )
            if (
                self._fail_after_chunks is not None
                and chunks_served >= self._fail_after_chunks
            ):
                # Fault injection: vanish mid-chunk, exactly like a
                # worker killed while computing.
                self._log(
                    f"fault injection: dropping connection before "
                    f"chunk {header['chunk']}"
                )
                return
            chunk_id = header["chunk"]
            tasks = pickle.loads(payload)
            try:
                results = [
                    self._run_task(
                        instance, config, options, task, cache, fingerprint
                    )
                    for task in tasks
                ]
                descriptor, buffer = _pack_error_dicts(results)
            except Exception as exc:
                send_message(
                    connection,
                    {
                        "type": "error",
                        "chunk": chunk_id,
                        "message": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            else:
                send_message(
                    connection,
                    {
                        "type": "result",
                        "chunk": chunk_id,
                        "descriptor": descriptor,
                    },
                    buffer_payload(buffer),
                )
            chunks_served += 1

    @staticmethod
    def _run_task(instance, config, options, task, cache, fingerprint):
        key = None
        if (
            cache is not None
            and task.scenario_seed is not None
            and task.run_seed is not None
        ):
            key = cache.task_key(
                fingerprint, task, config=config, options=options
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
        errors = _execute_task(instance, config, options, task)
        if key is not None:
            cache.put(key, errors)
        return errors
