"""Worker side of the distributed sweep backend.

A :class:`WorkerServer` listens on one TCP port and serves coordinator
sessions: each accepted connection is one sweep session.  The
coordinator ships the (instance, config, options) triple exactly once
per session in the ``init`` frame; every subsequent ``chunk`` frame is
just a pickled list of :class:`repro.eval.parallel.ScenarioTask`
records, and the worker answers with the chunk's error vectors as one
packed float64 payload (the same transport the in-host pool uses).

Capacity: the handshake negotiates a protocol version
(:func:`repro.eval.dist.protocol.negotiate_version`); at version 2 the
``ready`` frame advertises the worker's *capacity* — how many chunks it
can compute at once (``repro-tomography worker`` defaults to the CPU
count; ``--capacity`` overrides).  A capacity-``C`` session executes up
to ``C`` in-flight chunks concurrently on a process pool (results may
return out of order; the coordinator keys them by chunk index), while a
version-1 coordinator — which never pipelines — gets the strict
sequential request/response loop regardless of capacity.

Cache semantics: when the worker is given a cache directory (its own
``--cache-dir`` flag or ``REPRO_CACHE_DIR``; typically a store shared
across workers via a network filesystem), each task is looked up before
executing — hits are served without compute — and each miss is written
back *as the task completes*, not after the sweep.  A worker killed
mid-chunk therefore still leaves every finished trial in the store, and
the retry only pays for what was genuinely lost.

Fault injection: ``fail_after_chunks=N`` makes the worker accept ``N``
chunks and then drop the connection without replying to the next one,
which is exactly what a worker killed mid-chunk looks like to the
coordinator.  The deterministic requeue tests and the distributed
benchmark's kill leg are built on it.  ``throttle=S`` sleeps ``S``
seconds before each task — latency injection that simulates a slower
or I/O-bound host without burning CPU, so the benchmark's
heterogeneous-capacity scenario reproduces on any machine; results are
delayed, never changed.

Run a worker from the CLI::

    repro-tomography worker --port 7100 --cache-dir /shared/store

or over SSH (the coordinator connects to ``host:7100``)::

    ssh host repro-tomography worker --bind 0.0.0.0 --port 7100
"""

from __future__ import annotations

import multiprocessing
import pickle
import socket
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.eval.dist.protocol import (
    CAPACITY_PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    buffer_payload,
    negotiate_version,
    recv_message,
    send_message,
)
from repro.eval.parallel import _execute_task, _pack_error_dicts
from repro.io import instance_fingerprint

__all__ = ["WorkerServer"]


# Pool-process state installed once by the initializer: each process
# opens its own cache handle so write-back happens task-by-task inside
# the process that computed the task, exactly like the sequential path.
_POOL_STATE: tuple | None = None


def _pool_initializer(instance, config, options, cache_dir, throttle) -> None:
    global _POOL_STATE
    cache = None
    fingerprint = None
    if cache_dir is not None:
        from repro.eval.cache import TrialCache

        cache = TrialCache(cache_dir)
        fingerprint = instance_fingerprint(instance)
    _POOL_STATE = (instance, config, options, cache, fingerprint, throttle)


def _run_chunk_tasks(
    tasks, instance, config, options, cache, fingerprint, throttle
):
    """Execute one chunk's tasks (cache-aware, throttle-aware), packed.

    The single definition of per-task semantics — the sequential
    session path and the pool path must never diverge on e.g. where
    the throttle sleeps relative to the cache lookup.
    """
    results = []
    for task in tasks:
        if throttle:
            time.sleep(throttle)
        results.append(
            WorkerServer._run_task(
                instance, config, options, task, cache, fingerprint
            )
        )
    return _pack_error_dicts(results)


def _pool_run_chunk(payload: bytes):
    # The chunk's task list crosses the pool boundary as the raw frame
    # payload and is unpickled here, in the child — unpickling in the
    # session thread would just re-pickle the tasks for the submit.
    tasks = pickle.loads(payload)
    instance, config, options, cache, fingerprint, throttle = _POOL_STATE
    return _run_chunk_tasks(
        tasks, instance, config, options, cache, fingerprint, throttle
    )


class WorkerServer:
    """Serve sweep sessions on ``host:port`` (``port=0`` → ephemeral).

    Parameters:
        capacity: Parallel chunk slots advertised to version-2
            coordinators; sessions with ``capacity > 1`` execute their
            in-flight chunks on a process pool of that size.  Defaults
            to 1 (the sequential version-1 behaviour); the CLI worker
            defaults to the CPU count instead.  The pool (and the
            advertisement) is per *session*: a worker shared by two
            overlapping sweeps runs up to ``2 × capacity`` compute
            processes, so size ``--capacity`` for the share of the
            host each concurrent sweep should get on shared-fleet
            deployments.
        cache_dir: Optional :class:`repro.eval.cache.TrialCache` root;
            tasks are looked up before executing and written back as
            they complete.
        max_sessions: Stop accepting after this many sessions (``None``
            = serve forever).  CI and tests use it to bound lifetime.
        fail_after_chunks: Fault-injection hook — accept this many
            chunks per session, then drop the connection without
            replying.
        throttle: Latency-injection hook — sleep this many seconds
            before each task (a simulated slower host; results are
            delayed, never changed).
        log: Callable for one-line status messages (``None`` = silent).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        capacity: int = 1,
        cache_dir=None,
        max_sessions: int | None = None,
        fail_after_chunks: int | None = None,
        throttle: float = 0.0,
        log=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if throttle < 0:
            raise ValueError(f"throttle must be >= 0, got {throttle}")
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self.capacity = capacity
        self._cache_dir = cache_dir
        self._max_sessions = max_sessions
        self._fail_after_chunks = fail_after_chunks
        self._throttle = throttle
        self._log = log or (lambda message: None)
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        self._closed = True
        try:
            self._server.close()
        except OSError:
            pass

    def serve_forever(self) -> int:
        """Accept sessions until ``max_sessions`` or :meth:`close`.

        Sessions run concurrently, one thread each, so a worker busy
        with a long sweep still handshakes a second coordinator
        immediately (two overlapping sweeps sharing a worker fleet is
        the documented shared-cache deployment).  Active sessions are
        joined before returning, so ``max_sessions=N`` never cuts a
        running sweep short.
        """
        sessions = 0
        threads: list[threading.Thread] = []
        self._log(f"worker listening on {self.address}")
        try:
            while (
                self._max_sessions is None
                or sessions < self._max_sessions
            ):
                try:
                    connection, peer = self._server.accept()
                except OSError:
                    break  # closed from another thread
                sessions += 1
                self._log(f"session {sessions} from {peer[0]}:{peer[1]}")
                thread = threading.Thread(
                    target=self._session_thread,
                    args=(connection,),
                    name=f"worker-session-{sessions}",
                )
                thread.start()
                threads.append(thread)
        finally:
            for thread in threads:
                thread.join()
            self.close()
        return sessions

    def _session_thread(self, connection: socket.socket) -> None:
        with connection:
            try:
                self._serve_session(connection)
            except Exception as exc:
                # A torn session never takes the worker down — not just
                # transport errors but anything a mismatched coordinator
                # can provoke (unpicklable payloads, malformed headers):
                # log and keep serving other sessions.
                self._log(f"session aborted: {exc!r}")

    # -- one session ---------------------------------------------------
    def _open_cache(self):
        if self._cache_dir is None:
            return None
        from repro.eval.cache import TrialCache

        return TrialCache(self._cache_dir)

    def _serve_session(self, connection: socket.socket) -> None:
        header, payload = recv_message(connection)
        if header["type"] != "init":
            raise ProtocolError(
                f"expected an init frame, got {header['type']!r}"
            )
        try:
            version = negotiate_version(header)
        except ProtocolError as exc:
            send_message(
                connection,
                {
                    "type": "error",
                    "chunk": None,
                    "message": str(exc),
                    "traceback": "",
                },
            )
            return
        instance, config, options = pickle.loads(payload)
        ready = {
            "type": "ready",
            "protocol": version,
            "host": socket.gethostname(),
        }
        if version >= CAPACITY_PROTOCOL_VERSION:
            ready["capacity"] = self.capacity
        send_message(connection, ready)
        if version >= CAPACITY_PROTOCOL_VERSION and self.capacity > 1:
            self._serve_concurrent(connection, instance, config, options)
        else:
            self._serve_sequential(connection, instance, config, options)

    def _serve_sequential(
        self, connection, instance, config, options
    ) -> None:
        """One chunk in flight, computed in the session thread."""
        cache = self._open_cache()
        fingerprint = (
            instance_fingerprint(instance) if cache is not None else None
        )
        chunks_accepted = 0
        while True:
            try:
                header, payload = recv_message(connection)
            except ConnectionClosed:
                return
            if header["type"] == "end":
                if cache is not None:
                    self._log(f"session done — {cache.stats.render()}")
                return
            if header["type"] != "chunk":
                raise ProtocolError(
                    f"expected a chunk frame, got {header['type']!r}"
                )
            if (
                self._fail_after_chunks is not None
                and chunks_accepted >= self._fail_after_chunks
            ):
                # Fault injection: vanish mid-chunk, exactly like a
                # worker killed while computing.
                self._log(
                    f"fault injection: dropping connection before "
                    f"chunk {header['chunk']}"
                )
                return
            chunk_id = header["chunk"]
            tasks = pickle.loads(payload)
            try:
                descriptor, buffer = _run_chunk_tasks(
                    tasks,
                    instance,
                    config,
                    options,
                    cache,
                    fingerprint,
                    self._throttle,
                )
            except Exception as exc:
                send_message(
                    connection,
                    {
                        "type": "error",
                        "chunk": chunk_id,
                        "message": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
            else:
                send_message(
                    connection,
                    {
                        "type": "result",
                        "chunk": chunk_id,
                        "descriptor": descriptor,
                    },
                    buffer_payload(buffer),
                )
            chunks_accepted += 1

    def _serve_concurrent(
        self, connection, instance, config, options
    ) -> None:
        """Up to ``capacity`` in-flight chunks on a process pool.

        The session thread only receives frames and submits chunks;
        pool completion callbacks send each result as it finishes, so
        replies may be out of chunk order (the coordinator keys them by
        chunk index).  The ``spawn`` start method keeps the fork-free
        even though the server is multi-threaded.
        """
        pool = ProcessPoolExecutor(
            max_workers=self.capacity,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_pool_initializer,
            initargs=(
                instance,
                config,
                options,
                self._cache_dir,
                self._throttle,
            ),
        )
        send_lock = threading.Lock()
        chunks_accepted = 0
        try:
            while True:
                try:
                    header, payload = recv_message(connection)
                except ConnectionClosed:
                    return
                if header["type"] == "end":
                    # The coordinator only sends "end" after it has
                    # received every in-flight result, so nothing is
                    # computing for this session any more.
                    self._log("session done")
                    return
                if header["type"] != "chunk":
                    raise ProtocolError(
                        f"expected a chunk frame, got {header['type']!r}"
                    )
                if (
                    self._fail_after_chunks is not None
                    and chunks_accepted >= self._fail_after_chunks
                ):
                    self._log(
                        f"fault injection: dropping connection before "
                        f"chunk {header['chunk']}"
                    )
                    return
                chunk_id = header["chunk"]
                future = pool.submit(_pool_run_chunk, payload)
                future.add_done_callback(
                    lambda done, chunk=chunk_id: self._send_chunk_result(
                        connection, send_lock, chunk, done
                    )
                )
                chunks_accepted += 1
        finally:
            # Abandon rather than join: on a fault-injected (or torn)
            # session the in-flight chunks are already requeued on the
            # coordinator; their pool processes finish their current
            # task, write it back to the cache, and exit.
            pool.shutdown(wait=False, cancel_futures=True)

    def _send_chunk_result(
        self, connection, send_lock, chunk_id, future
    ) -> None:
        """Completion callback: ship one chunk's result or error.

        Task exceptions become ``error`` frames (they would fail
        identically anywhere, so the coordinator must not retry them).
        A *broken pool* — a child OOM-killed or segfaulted — is
        infrastructure death, not a task error: drop the session
        without replying, so the coordinator sees this worker as down
        and requeues the chunk on survivors, exactly like a sequential
        worker process dying.
        """
        try:
            try:
                descriptor, buffer = future.result()
            except BrokenProcessPool as exc:
                self._log(
                    f"process pool broke on chunk {chunk_id}: {exc!r}"
                )
                try:
                    connection.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    connection.close()
                except OSError:
                    pass
                return
            except Exception as exc:
                with send_lock:
                    send_message(
                        connection,
                        {
                            "type": "error",
                            "chunk": chunk_id,
                            "message": repr(exc),
                            "traceback": "".join(
                                traceback.format_exception(exc)
                            ),
                        },
                    )
            else:
                with send_lock:
                    send_message(
                        connection,
                        {
                            "type": "result",
                            "chunk": chunk_id,
                            "descriptor": descriptor,
                        },
                        buffer_payload(buffer),
                    )
        except BaseException as exc:
            # The session is gone (connection closed mid-send) or the
            # future was cancelled by a tearing-down pool; either way
            # the coordinator requeues the chunk elsewhere.
            self._log(f"result send failed for chunk {chunk_id}: {exc!r}")

    @staticmethod
    def _run_task(instance, config, options, task, cache, fingerprint):
        key = None
        if (
            cache is not None
            and task.scenario_seed is not None
            and task.run_seed is not None
        ):
            key = cache.task_key(
                fingerprint, task, config=config, options=options
            )
            hit = cache.get(key)
            if hit is not None:
                return hit
        errors = _execute_task(instance, config, options, task)
        if key is not None:
            cache.put(key, errors)
        return errors
