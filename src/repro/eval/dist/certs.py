"""TLS material and contexts for the distributed sweep wire.

Authentication (:mod:`repro.eval.dist.auth`) proves *who* is on the
other end; TLS additionally encrypts the stream so task payloads and
results cannot be read or tampered with in transit.  This module
builds the :class:`ssl.SSLContext` pair the worker listener and the
coordinator sockets wrap with, plus a self-signed certificate helper
so tests, CI, and single-operator fleets need no PKI:

* :func:`generate_self_signed` — write ``cert.pem``/``key.pem`` into a
  directory (EC P-256, SAN entries for the given hosts).  Prefers the
  ``cryptography`` package and falls back to the ``openssl`` binary,
  so at least one path exists on any realistic host.
* :func:`server_context` — worker side: present ``cert``/``key``;
  with ``cafile`` also *require* client certificates (mutual TLS).
* :func:`client_context` — coordinator side: verify the worker against
  ``cafile`` (hostname checking stays off — fleets are addressed by
  IP/port, and the trust anchor is the operator-distributed CA file,
  not a public name hierarchy); optionally present a client cert.

For a self-signed single-cert fleet, the cert file doubles as the CA
file: workers get ``--tls-cert/--tls-key``, the coordinator gets
``--tls-ca`` pointing at the same ``cert.pem``.
"""

from __future__ import annotations

import datetime
import ipaddress
import os
import pathlib
import ssl
import subprocess
from typing import NamedTuple

__all__ = [
    "CertPaths",
    "generate_self_signed",
    "server_context",
    "client_context",
]


class CertPaths(NamedTuple):
    """Where :func:`generate_self_signed` wrote the PEM files."""

    cert: pathlib.Path
    key: pathlib.Path


def _split_hosts(hosts) -> tuple[list, list]:
    """Partition SAN hosts into (dns_names, ip_addresses)."""
    dns_names, ips = [], []
    for host in hosts:
        try:
            ips.append(ipaddress.ip_address(host))
        except ValueError:
            dns_names.append(str(host))
    return dns_names, ips


def _generate_with_cryptography(
    cert_path, key_path, common_name, hosts, valid_days
) -> None:
    from cryptography import x509
    from cryptography.hazmat.primitives import hashes, serialization
    from cryptography.hazmat.primitives.asymmetric import ec
    from cryptography.x509.oid import NameOID

    key = ec.generate_private_key(ec.SECP256R1())
    name = x509.Name(
        [x509.NameAttribute(NameOID.COMMON_NAME, common_name)]
    )
    dns_names, ips = _split_hosts(hosts)
    san = x509.SubjectAlternativeName(
        [x509.DNSName(item) for item in dns_names]
        + [x509.IPAddress(item) for item in ips]
    )
    now = datetime.datetime.now(datetime.timezone.utc)
    certificate = (
        x509.CertificateBuilder()
        .subject_name(name)
        .issuer_name(name)
        .public_key(key.public_key())
        .serial_number(x509.random_serial_number())
        # Back-dated a day so clock skew inside a fleet cannot make a
        # freshly minted cert "not yet valid".
        .not_valid_before(now - datetime.timedelta(days=1))
        .not_valid_after(now + datetime.timedelta(days=valid_days))
        .add_extension(san, critical=False)
        .add_extension(
            x509.BasicConstraints(ca=True, path_length=None),
            critical=True,
        )
        .sign(key, hashes.SHA256())
    )
    key_path.write_bytes(
        key.private_bytes(
            serialization.Encoding.PEM,
            serialization.PrivateFormat.PKCS8,
            serialization.NoEncryption(),
        )
    )
    cert_path.write_bytes(
        certificate.public_bytes(serialization.Encoding.PEM)
    )


def _generate_with_openssl(
    cert_path, key_path, common_name, hosts, valid_days
) -> None:
    dns_names, ips = _split_hosts(hosts)
    san = ",".join(
        [f"DNS:{name}" for name in dns_names]
        + [f"IP:{ip}" for ip in ips]
    )
    subprocess.run(
        [
            "openssl",
            "req",
            "-x509",
            "-newkey",
            "ec",
            "-pkeyopt",
            "ec_paramgen_curve:prime256v1",
            "-keyout",
            str(key_path),
            "-out",
            str(cert_path),
            "-days",
            str(valid_days),
            "-nodes",
            "-subj",
            f"/CN={common_name}",
            "-addext",
            f"subjectAltName={san}",
        ],
        check=True,
        capture_output=True,
    )


def generate_self_signed(
    directory,
    *,
    common_name: str = "repro-dist",
    hosts=("127.0.0.1", "localhost"),
    valid_days: int = 365,
) -> CertPaths:
    """Write a self-signed cert/key pair under ``directory``.

    Returns the :class:`CertPaths`; the key file is chmodded to owner
    read/write only.  ``hosts`` become SAN entries (IP literals are
    detected), so contexts with hostname checking enabled still match.
    Raises :class:`RuntimeError` when neither the ``cryptography``
    package nor an ``openssl`` binary is available.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    cert_path = directory / "cert.pem"
    key_path = directory / "key.pem"
    try:
        _generate_with_cryptography(
            cert_path, key_path, common_name, hosts, valid_days
        )
    except ImportError:
        try:
            _generate_with_openssl(
                cert_path, key_path, common_name, hosts, valid_days
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            raise RuntimeError(
                "generating a self-signed certificate needs either the "
                "'cryptography' package or an 'openssl' binary; neither "
                f"worked ({exc})"
            ) from exc
    os.chmod(key_path, 0o600)
    return CertPaths(cert_path, key_path)


def server_context(
    certfile, keyfile, *, cafile=None
) -> ssl.SSLContext:
    """TLS context for the worker listener.

    Presents ``certfile``/``keyfile`` to connecting coordinators; with
    ``cafile`` set, clients must additionally present a certificate
    that chains to it (mutual TLS).  TLS 1.2 is the floor.
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    context.load_cert_chain(certfile=str(certfile), keyfile=str(keyfile))
    if cafile is not None:
        context.load_verify_locations(cafile=str(cafile))
        context.verify_mode = ssl.CERT_REQUIRED
    return context


def client_context(
    *, cafile=None, certfile=None, keyfile=None
) -> ssl.SSLContext:
    """TLS context for coordinator sockets.

    With ``cafile`` the worker's certificate must chain to it (the
    normal configuration; hostname checking stays off because fleet
    endpoints are IPs and the CA file *is* the trust statement).
    Without ``cafile`` the stream is encrypted but the worker is not
    verified — accepted so a fleet can be brought up before its CA
    file is distributed, but pair it with a shared secret.  With
    ``certfile``/``keyfile`` the coordinator presents a client
    certificate for mutual-TLS workers.
    """
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    context.check_hostname = False
    if cafile is not None:
        context.load_verify_locations(cafile=str(cafile))
        context.verify_mode = ssl.CERT_REQUIRED
    else:
        context.verify_mode = ssl.CERT_NONE
    if certfile is not None:
        context.load_cert_chain(
            certfile=str(certfile), keyfile=str(keyfile)
        )
    return context
