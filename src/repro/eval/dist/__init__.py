"""Distributed sweep backend: coordinator, workers, wire protocol.

The eval engine's task lists are explicit and picklable, so scaling a
sweep beyond one host is a scheduling problem, not an algorithmic one:
:class:`RemoteExecutor` (the coordinator) plugs into
:func:`repro.eval.parallel.run_scenario_tasks` exactly like the serial
and process-pool executors, and :class:`WorkerServer` turns any
reachable Python process into a worker.  See
:mod:`repro.eval.dist.protocol` for the framing,
:mod:`repro.eval.dist.coordinator` for the fault-tolerant scheduler, and
``docs/ARCHITECTURE.md`` for the full design.
"""

from repro.eval.dist.coordinator import (
    RemoteExecutor,
    RemoteTaskError,
    parse_hosts,
)
from repro.eval.dist.protocol import (
    MAGIC,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    buffer_payload,
    payload_to_buffer,
    recv_message,
    send_message,
)
from repro.eval.dist.worker import WorkerServer

__all__ = [
    "RemoteExecutor",
    "RemoteTaskError",
    "WorkerServer",
    "parse_hosts",
    "PROTOCOL_VERSION",
    "MAGIC",
    "ProtocolError",
    "ConnectionClosed",
    "send_message",
    "recv_message",
    "buffer_payload",
    "payload_to_buffer",
]
