"""Distributed sweep backend: coordinator, workers, wire protocol.

The eval engine's task lists are explicit and picklable, so scaling a
sweep beyond one host is a scheduling problem, not an algorithmic one:
:class:`RemoteExecutor` (the coordinator) plugs into
:func:`repro.eval.parallel.run_scenario_tasks` exactly like the serial
and process-pool executors, and :class:`WorkerServer` turns any
reachable Python process into a worker.  See
:mod:`repro.eval.dist.protocol` for the framing,
:mod:`repro.eval.dist.coordinator` for the fault-tolerant scheduler, and
``docs/ARCHITECTURE.md`` for the full design.
"""

from repro.eval.dist.auth import (
    AUTH_MAGIC,
    AuthError,
    DistSecurityError,
    client_handshake,
    normalize_secret,
    resolve_secret,
    server_handshake,
)
from repro.eval.dist.certs import (
    CertPaths,
    client_context,
    generate_self_signed,
    server_context,
)
from repro.eval.dist.codec import (
    CodecError,
    decode_context,
    decode_tasks,
    encode_context,
    encode_tasks,
)
from repro.eval.dist import faults
from repro.eval.dist.coordinator import (
    ChunkBoard,
    ChunkDeadlineExceeded,
    HostSpec,
    RemoteExecutor,
    RemoteTaskError,
    SweepStats,
    WorkerUnresponsiveError,
    parse_hosts,
)
from repro.eval.dist.faults import (
    FaultPlan,
    FaultSpecError,
    active_plan,
    plan_from_env,
)
from repro.eval.dist.journal import (
    JournalError,
    JournalMismatchError,
    SweepJournal,
    sweep_fingerprint,
)
from repro.eval.dist.launch import (
    LaunchedWorker,
    LaunchError,
    LocalLauncher,
    SshLauncher,
    WorkerLauncher,
)
from repro.eval.dist.protocol import (
    AUTH_PROTOCOL_VERSION,
    CAPACITY_PROTOCOL_VERSION,
    CODEC_PROTOCOL_VERSION,
    MAGIC,
    MAGIC_V4,
    PROTOCOL_BASE_VERSION,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    TlsMismatchError,
    buffer_payload,
    negotiate_version,
    payload_to_buffer,
    read_magic,
    recv_json_message,
    recv_message,
    send_json_message,
    send_message,
)
from repro.eval.dist.shm import (
    CRC_LAYOUT,
    SHM_PREFIX,
    ShmError,
    ShmRing,
    attach_ring,
    create_ring,
    host_is_loopback,
)
from repro.eval.dist.worker import WorkerServer

__all__ = [
    "RemoteExecutor",
    "RemoteTaskError",
    "WorkerServer",
    "ChunkBoard",
    "HostSpec",
    "parse_hosts",
    "SweepStats",
    "WorkerUnresponsiveError",
    "ChunkDeadlineExceeded",
    "SweepJournal",
    "JournalError",
    "JournalMismatchError",
    "sweep_fingerprint",
    "faults",
    "FaultPlan",
    "FaultSpecError",
    "active_plan",
    "plan_from_env",
    "WorkerLauncher",
    "LocalLauncher",
    "SshLauncher",
    "LaunchedWorker",
    "LaunchError",
    "PROTOCOL_VERSION",
    "PROTOCOL_BASE_VERSION",
    "CAPACITY_PROTOCOL_VERSION",
    "AUTH_PROTOCOL_VERSION",
    "CODEC_PROTOCOL_VERSION",
    "MAGIC",
    "MAGIC_V4",
    "AUTH_MAGIC",
    "ProtocolError",
    "ConnectionClosed",
    "TlsMismatchError",
    "DistSecurityError",
    "AuthError",
    "CodecError",
    "negotiate_version",
    "read_magic",
    "send_message",
    "recv_message",
    "send_json_message",
    "recv_json_message",
    "buffer_payload",
    "payload_to_buffer",
    "encode_context",
    "decode_context",
    "encode_tasks",
    "decode_tasks",
    "ShmRing",
    "ShmError",
    "SHM_PREFIX",
    "CRC_LAYOUT",
    "create_ring",
    "attach_ring",
    "host_is_loopback",
    "client_handshake",
    "server_handshake",
    "resolve_secret",
    "normalize_secret",
    "CertPaths",
    "generate_self_signed",
    "server_context",
    "client_context",
]
