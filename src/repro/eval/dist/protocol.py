"""Length-prefixed socket framing for the distributed sweep backend.

Every message is one frame::

    MAGIC (4 bytes) | header length (u64 BE) | payload length (u64 BE)
    | pickled header dict | raw payload bytes

The header is a small pickled ``dict`` with at least a ``"type"`` key;
the payload is an opaque byte string whose meaning the header declares.
Chunk results reuse the engine's packed float64 transport
(:func:`repro.eval.parallel._pack_error_dicts`): the descriptor rides in
the header and the concatenated error vectors ride as the raw payload —
one contiguous buffer per chunk, no per-trial pickling, and
:func:`payload_to_buffer` rewraps it on the other side without an extra
copy.

Sanity limits (:data:`MAX_HEADER_BYTES`, :data:`MAX_PAYLOAD_BYTES`) make
a corrupt or foreign stream fail fast with :class:`ProtocolError`
instead of attempting a multi-terabyte allocation.  A connection that
closes *between* frames raises :class:`ConnectionClosed` (a clean
end-of-session); one that closes *inside* a frame raises the plain
:class:`ProtocolError` (a torn transfer).

Version negotiation (compatible with version-1 peers on the wire):

* the coordinator's ``init`` frame carries ``protocol`` — always
  :data:`PROTOCOL_BASE_VERSION`, the baseline every peer speaks, which
  is exactly what a version-1 worker expects to see — plus
  ``protocol_max``, the highest version the coordinator understands
  (a version-1 worker ignores the unknown key);
* the worker replies ``ready`` with ``protocol`` set to
  ``min(worker_max, coordinator_max)`` (:func:`negotiate_version`); a
  version-1 worker, which never saw ``protocol_max``, replies ``1``;
* features gate on the *negotiated* version: at
  :data:`CAPACITY_PROTOCOL_VERSION` and above the ``ready`` frame also
  advertises ``capacity`` (parallel chunk slots) and the coordinator
  may pipeline up to that many chunk frames before blocking on
  results.  Against a version-1 peer both sides fall back to the
  strict one-chunk-in-flight request/response loop, so mixed fleets
  keep working during a rolling upgrade.

Trust model: legacy (v1–v3) frames carry pickles, so an unsecured
legacy session is for trusted clusters only — run workers on machines
you control, reachable only from the coordinator (bind to loopback or a
private interface).  Version 3 (:data:`AUTH_PROTOCOL_VERSION`) adds a
wire-security layer for everything else: a shared-secret HMAC handshake
that runs *before* any pickled byte is read (see
:mod:`repro.eval.dist.auth`) and optional TLS on the socket itself
(see :mod:`repro.eval.dist.certs`).  A worker with a secret configured
refuses v1/v2 (and unauthenticated v3) peers at the magic bytes —
before reading, let alone unpickling, a header.

Version 4 (:data:`CODEC_PROTOCOL_VERSION`) removes pickle from the
session entirely: v4 frames (:data:`MAGIC_V4`) carry a canonical-JSON
header and a schema'd binary payload (:mod:`repro.eval.dist.codec`), so
an authenticated v4 session deserializes **zero** pickles in either
direction.  Negotiation stays bidirectional: a v4 coordinator opens
with the legacy pickled ``init`` frame (real payload, ``protocol_max``
4); a v4 worker negotiates 4, discards that pickled payload *unparsed*,
and answers with a v4 ``ready`` frame — the frame family itself is the
acknowledgement — while a v1–v3 worker answers with a legacy ``ready``
and the session continues exactly as before.  Authenticated sessions
know the HMAC-bound version before any frame, so a bound-v4 session is
pickle-free from the first byte.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct

import numpy as np

from repro.eval.dist.faults import active_plan
from repro.exceptions import DistSecurityError

__all__ = [
    "PROTOCOL_VERSION",
    "PROTOCOL_BASE_VERSION",
    "CAPACITY_PROTOCOL_VERSION",
    "AUTH_PROTOCOL_VERSION",
    "CODEC_PROTOCOL_VERSION",
    "MAGIC",
    "MAGIC_V4",
    "MAX_HEADER_BYTES",
    "MAX_PAYLOAD_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "TlsMismatchError",
    "bad_magic_error",
    "disable_nagle",
    "negotiate_version",
    "read_magic",
    "send_message",
    "recv_message",
    "send_json_message",
    "recv_json_message",
    "buffer_payload",
    "payload_to_buffer",
]

#: Wire baseline every peer speaks; ``init`` frames always carry it in
#: the ``protocol`` key so version-1 workers accept the handshake.
PROTOCOL_BASE_VERSION = 1

#: Highest protocol version this build understands.
PROTOCOL_VERSION = 4

#: First version whose ``ready`` frame advertises a worker capacity and
#: whose sessions may have several chunks in flight at once.
CAPACITY_PROTOCOL_VERSION = 2

#: First version that supports the shared-secret auth handshake
#: (:mod:`repro.eval.dist.auth`).  Authenticated sessions are always
#: negotiated at this version or above; a peer that cannot speak it is
#: refused whenever a secret is configured.
AUTH_PROTOCOL_VERSION = 3

#: First version whose session frames are pickle-free: JSON headers on
#: the :data:`MAGIC_V4` framing and schema'd binary payloads
#: (:mod:`repro.eval.dist.codec`).  Sessions below this version use the
#: legacy pickled-header framing on :data:`MAGIC`.
CODEC_PROTOCOL_VERSION = 4

MAGIC = b"RTD1"
#: Frame magic of the v4 (JSON-header) frame family.  Distinct from the
#: legacy magic so the first reply frame of a session identifies the
#: family without any out-of-band signal.
MAGIC_V4 = b"RTD4"
_FRAME = struct.Struct("!4sQQ")
_FRAME_REST = struct.Struct("!QQ")  # the two lengths after the magic

#: Header pickles are task lists at most; 64 MiB is generous.
MAX_HEADER_BYTES = 64 * 1024 * 1024
#: Result buffers scale with chunk size; 4 GiB is far beyond any sweep.
MAX_PAYLOAD_BYTES = 4 * 1024 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The byte stream is not a well-formed frame sequence."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection cleanly at a frame boundary."""


def negotiate_version(init_header: dict, *, limit: int | None = None) -> int:
    """Pick the session version from a coordinator's ``init`` header.

    ``protocol`` is the baseline the coordinator requires and
    ``protocol_max`` (absent from version-1 coordinators, defaulting to
    the baseline) the highest it understands; the session runs at
    ``min(ours, theirs)``.  ``limit`` lowers "ours" below
    :data:`PROTOCOL_VERSION` — rolling-upgrade fleets pin workers to the
    old wire until every coordinator has moved.  Raises
    :class:`ProtocolError` when there is no common version — the caller
    reports the mismatch to the peer.
    """
    ours = PROTOCOL_VERSION if limit is None else min(PROTOCOL_VERSION, limit)
    base = init_header.get("protocol")
    offered_max = init_header.get("protocol_max", base)
    if (
        not isinstance(base, int)
        or not isinstance(offered_max, int)
        or offered_max < base
        or base > ours
        or offered_max < PROTOCOL_BASE_VERSION
    ):
        raise ProtocolError(
            f"protocol mismatch: this side speaks versions "
            f"{PROTOCOL_BASE_VERSION}..{ours}, peer sent "
            f"{base!r}..{offered_max!r}"
        )
    return min(ours, offered_max)


def disable_nagle(sock) -> None:
    """Turn off Nagle batching on a session socket.

    Session frames are latency-sensitive and written as single
    ``sendall`` calls, and under the v4 shared-memory data plane the
    socket carries *only* small control frames (chunk announcements,
    slot acks) — exactly the traffic Nagle's delayed coalescing
    penalises, stacking up to a delayed-ACK round trip (~40ms) per
    exchange.  Tolerates non-TCP peers (tests and the in-host pool
    drive sessions over ``socketpair``), where the option is absent
    or meaningless.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        pass


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes:
    """Read exactly ``n`` bytes or raise.

    ``at_boundary`` marks the read that starts a frame: a clean close
    there is :class:`ConnectionClosed`, anywhere else it is a torn frame.
    """
    if n == 0:
        return b""
    pieces = bytearray()
    while len(pieces) < n:
        piece = sock.recv(min(n - len(pieces), 1 << 20))
        if not piece:
            if at_boundary and not pieces:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(
                f"connection closed mid-frame ({len(pieces)}/{n} bytes)"
            )
        pieces += piece
    return bytes(pieces)


def _looks_like_tls(magic: bytes) -> bool:
    """True when 4 magic bytes look like a TLS record header.

    A TLS record starts ``content-type (0x14..0x17) | 0x03 | minor``;
    a peer answering our plaintext frame with one of these is a TLS
    endpoint we are talking past, which deserves a pointed message (and
    a fail-closed :class:`~repro.exceptions.DistSecurityError`) instead
    of a generic bad-magic complaint.
    """
    return len(magic) >= 2 and 0x14 <= magic[0] <= 0x17 and magic[1] == 0x03


def bad_magic_error(magic: bytes, expected: str) -> ProtocolError:
    """Build the error for an unexpected leading 4 bytes.

    TLS-looking bytes get a :class:`TlsMismatchError` so the security
    misconfiguration fails closed with operator guidance rather than a
    framing complaint.
    """
    if _looks_like_tls(magic):
        return TlsMismatchError(
            "peer answered with what looks like a TLS record "
            f"({magic!r}): this side is speaking plaintext to a TLS "
            "endpoint — configure TLS (--tls-ca / --tls-cert / "
            "--tls-key) on both sides or neither"
        )
    return ProtocolError(
        f"bad frame magic {magic!r} (expected {expected})"
    )


class TlsMismatchError(DistSecurityError, ProtocolError):
    """A plaintext endpoint received TLS record bytes (or vice versa)."""


def read_magic(sock: socket.socket) -> bytes:
    """Read the 4 magic bytes that start the connection's next frame.

    Lets a server dispatch between the pickled-header framing
    (:data:`MAGIC`) and the pre-auth binary framing
    (:data:`repro.eval.dist.auth.AUTH_MAGIC`) *before* any pickled byte
    is consumed; pass the result to :func:`recv_message` (or
    ``auth`` receive helpers) as ``preread_magic``.  A clean close here
    raises :class:`ConnectionClosed`.
    """
    return _recv_exact(sock, 4, at_boundary=True)


def _send_frame(sock, magic: bytes, header: dict, header_bytes: bytes,
                payload_view) -> None:
    """Write one frame, consulting the chaos plan (when one is armed).

    The chaos actions model distinct failure shapes: **drop** sends
    nothing (a hung-but-connected peer — only heartbeats or deadlines
    notice), **corrupt** scrambles the magic so the receiver fails fast
    at the framing layer (a detected, retriable fault), **truncate**
    tears the frame mid-body and aborts the sender's session.  Payload
    bytes are never altered: frames either arrive intact or detectably
    broken, which is what keeps chaos runs bit-identical.
    """
    plan = active_plan()
    action = plan.frame_send_action(header) if plan is not None else None
    if action == "drop":
        return
    if action == "corrupt":
        magic = b"RTDX"
    sock.sendall(_FRAME.pack(magic, len(header_bytes), len(payload_view)))
    if action == "truncate":
        sock.sendall(header_bytes[: max(1, len(header_bytes) // 2)])
        raise ProtocolError(
            f"chaos: truncated outbound {header.get('type')!r} frame"
        )
    sock.sendall(header_bytes)
    if len(payload_view):
        sock.sendall(payload_view)


def send_message(sock: socket.socket, header: dict, payload=b"") -> None:
    """Send one frame.  ``payload`` is any bytes-like object."""
    header_bytes = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
    payload_view = memoryview(payload).cast("B")
    _send_frame(sock, MAGIC, header, header_bytes, payload_view)


def recv_message(
    sock: socket.socket, *, preread_magic: bytes | None = None
) -> tuple[dict, bytes]:
    """Receive one frame; returns ``(header, payload)``.

    ``preread_magic`` hands over 4 magic bytes already consumed by
    :func:`read_magic` (server-side dispatch between frame families).
    """
    if preread_magic is None:
        magic = _recv_exact(sock, 4, at_boundary=True)
    else:
        magic = preread_magic
    if magic != MAGIC:
        raise bad_magic_error(magic, repr(MAGIC))
    header_len, payload_len = _FRAME_REST.unpack(
        _recv_exact(sock, _FRAME_REST.size, at_boundary=False)
    )
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"header length {header_len} exceeds {MAX_HEADER_BYTES}"
        )
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"payload length {payload_len} exceeds {MAX_PAYLOAD_BYTES}"
        )
    header_bytes = _recv_exact(sock, header_len, at_boundary=False)
    try:
        header = pickle.loads(header_bytes)
    except Exception as exc:
        raise ProtocolError(f"unpicklable frame header: {exc!r}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(
            f"frame header must be a dict with a 'type' key, got "
            f"{type(header).__name__}"
        )
    payload = _recv_exact(sock, payload_len, at_boundary=False)
    return header, payload


def send_json_message(sock: socket.socket, header: dict, payload=b"") -> None:
    """Send one v4 frame: JSON header, opaque binary payload.

    The layout matches the legacy frame exactly except for the magic and
    the header encoding — ``MAGIC_V4 | header len (u64 BE) | payload len
    (u64 BE) | UTF-8 JSON header | payload`` — so both families share
    the length-sanity machinery.  Headers must be JSON-native dicts
    (type tags, chunk indices, descriptors, shm slot references); a
    non-encodable header is a programming error and raises
    :class:`TypeError` before any byte is sent.
    """
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload_view = memoryview(payload).cast("B")
    _send_frame(sock, MAGIC_V4, header, header_bytes, payload_view)


def recv_json_message(
    sock: socket.socket, *, preread_magic: bytes | None = None
) -> tuple[dict, bytes]:
    """Receive one v4 frame; returns ``(header, payload)``.

    Nothing on this path is ever unpickled: the header is JSON and must
    decode to a dict with a ``"type"`` key, and the payload is returned
    as raw bytes for the caller's codec.  A legacy magic here is a
    protocol violation (the peer fell back mid-session), not a dispatch
    case — sessions never mix frame families after negotiation.
    """
    if preread_magic is None:
        magic = _recv_exact(sock, 4, at_boundary=True)
    else:
        magic = preread_magic
    if magic != MAGIC_V4:
        raise bad_magic_error(magic, repr(MAGIC_V4))
    header_len, payload_len = _FRAME_REST.unpack(
        _recv_exact(sock, _FRAME_REST.size, at_boundary=False)
    )
    if header_len > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"header length {header_len} exceeds {MAX_HEADER_BYTES}"
        )
    if payload_len > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"payload length {payload_len} exceeds {MAX_PAYLOAD_BYTES}"
        )
    header_bytes = _recv_exact(sock, header_len, at_boundary=False)
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ProtocolError(f"malformed v4 frame header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(
            f"v4 frame header must be a JSON object with a 'type' key, "
            f"got {type(header).__name__}"
        )
    payload = _recv_exact(sock, payload_len, at_boundary=False)
    return header, payload


def buffer_payload(buffer: np.ndarray):
    """Wrap a packed float64 buffer for :func:`send_message` (zero-copy).

    Canonicalises to little-endian so heterogeneous hosts interoperate;
    on the (little-endian) common case this is a no-copy view.
    """
    return memoryview(np.ascontiguousarray(buffer, dtype="<f8")).cast("B")


def payload_to_buffer(payload: bytes) -> np.ndarray:
    """Rewrap a received result payload as the packed float64 buffer."""
    if len(payload) % 8:
        raise ProtocolError(
            f"result payload of {len(payload)} bytes is not a whole "
            "number of float64 values"
        )
    return np.frombuffer(payload, dtype="<f8")
