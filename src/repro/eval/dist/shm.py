"""Shared-memory data plane for same-host protocol-v4 sessions.

When the coordinator and a worker share a machine — loopback endpoints
and every ``LocalLauncher`` autolaunch — the socket still carries every
chunk and result payload through two kernel copies that the data never
needed.  This module moves the *data plane* into
:mod:`multiprocessing.shared_memory` segments while the *control plane*
(frames, negotiation, authentication) stays on the socket: a v4 chunk
or result frame then carries a tiny ``{"slot": n, "size": k}``
reference instead of the payload bytes.

Topology per session — two rings, both created by the coordinator once
the worker's capacity is known:

* the **chunk ring** (coordinator → worker), ``capacity + 1`` slots
  each sized to the largest encoded chunk.  The coordinator owns the
  free list; a slot is reusable as soon as the worker answers the chunk
  that occupied it (result or error), so no explicit acknowledgement is
  needed — the session's request/response structure is the ack.
* the **result ring** (worker → coordinator), ``capacity + 2`` generous
  slots.  The worker owns this free list; the coordinator acknowledges
  consumed slots in the ``ack`` field of its next frame (chunk or end).
  A result that finds no free slot — or outgrows one — falls back to
  inline socket bytes for that frame alone; shm is an optimisation,
  never a correctness dependency.

Segments are virtual memory: untouched pages cost nothing, so generous
slot sizing wastes address space, not RAM.

Lifecycle and crash-safety: the creating (coordinator) process unlinks
both segments when the session ends, success or failure.  If the
coordinator is SIGKILL'd instead, Python's ``resource_tracker`` — a
separate helper process that outlives the kill — unlinks every segment
the coordinator registered, so ``/dev/shm`` is not leaked even on the
ugliest teardown.  The *attaching* (worker) side explicitly
**unregisters** its attachment from its own resource tracker
(:func:`attach_ring`): CPython registers attachments too, and a
worker exiting first would otherwise unlink segments the coordinator
is still using.  Segment names carry :data:`SHM_PREFIX` so operators
(and the CI cleanup trap) can recognise and sweep strays at a glance.
"""

from __future__ import annotations

import os
import secrets
import struct
import zlib
from multiprocessing import resource_tracker, shared_memory

from repro.eval.dist.faults import active_plan

__all__ = [
    "CRC_LAYOUT",
    "SHM_PREFIX",
    "ShmError",
    "ShmRing",
    "attach_ring",
    "create_ring",
    "host_is_loopback",
]

#: Leading tag of every segment name this module creates.
SHM_PREFIX = "repro-dist-"

#: Wire name of the checksummed slot layout (``describe()["layout"]``).
#: Each slot is prefixed with a CRC32 of its payload, so a corrupted or
#: torn slot read becomes a detected :class:`ShmError` — and therefore a
#: retriable session failure — instead of silently wrong results.  The
#: layout is negotiated: coordinators only create checksummed rings for
#: workers that advertise the ``shm-crc`` feature, and a plain ring
#: (no ``layout`` key) keeps the exact pre-checksum geometry, so rolling
#: upgrades interoperate in both directions.
CRC_LAYOUT = "crc32"

#: Per-slot checksum prefix: CRC32 of the slot's payload bytes.
_SLOT_CRC = struct.Struct("!I")

#: Segment names created (and still owned) by *this* process.  The
#: resource tracker keys registrations per process, so an in-process
#: attach (tests run coordinator and worker in one interpreter) must
#: not unregister a name this process also created — that would strip
#: the creator's crash-cleanup registration and double-unregister at
#: unlink time.
_OWNED_NAMES: set[str] = set()


class ShmError(RuntimeError):
    """A shared-memory ring could not be created, attached, or used."""


def host_is_loopback(host: str) -> bool:
    """Is ``host`` an address of this machine's loopback interface?

    Used by the coordinator's ``transport="auto"`` detection.  False
    negatives are harmless (the session stays on the socket); a false
    positive — a loopback-looking address that is really an SSH tunnel
    to another machine — is recovered by the worker's attach failure,
    which nacks the session back to inline payloads.
    """
    name = str(host).strip().strip("[]").lower()
    if name in ("localhost", "::1"):
        return True
    if name.startswith("127."):
        return True
    if name.startswith("::ffff:127."):
        return True
    return False


class ShmRing:
    """A fixed-slot shared-memory segment (one direction of a session).

    Pure storage plus naming: slot accounting (free lists, what is in
    flight) lives with the session logic in the coordinator and worker,
    which already track chunk lifecycles; duplicating that state here
    would just give it two places to diverge.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        n_slots: int,
        slot_size: int,
        *,
        owner: bool,
        checksum: bool = False,
    ) -> None:
        self._segment = segment
        self.n_slots = n_slots
        self.slot_size = slot_size
        self.checksum = checksum
        # ``slot_size`` is always the usable payload capacity; the
        # checksum prefix extends the physical stride so negotiating the
        # layout never shrinks what a slot can carry.
        self._stride = slot_size + (_SLOT_CRC.size if checksum else 0)
        self._owner = owner
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name (no leading slash), as sent on the wire."""
        return self._segment.name

    def describe(self) -> dict:
        """The ring's wire description for the ``shm-open`` frame."""
        description = {
            "name": self.name,
            "slots": self.n_slots,
            "slot_size": self.slot_size,
        }
        if self.checksum:
            description["layout"] = CRC_LAYOUT
        return description

    def _bounds(self, slot: int, size: int) -> int:
        if not 0 <= slot < self.n_slots:
            raise ShmError(
                f"shm slot {slot} out of range [0, {self.n_slots})"
            )
        if not 0 <= size <= self.slot_size:
            raise ShmError(
                f"shm payload of {size} bytes exceeds the "
                f"{self.slot_size}-byte slot"
            )
        return slot * self._stride

    def write(self, slot: int, data) -> int:
        """Copy ``data`` into ``slot``; returns the byte count."""
        view = memoryview(data).cast("B")
        offset = self._bounds(slot, len(view))
        plan = active_plan()
        action = plan.shm_fault("write") if plan is not None else None
        if self.checksum:
            crc = zlib.crc32(view) & 0xFFFFFFFF
            _SLOT_CRC.pack_into(self._segment.buf, offset, crc)
            offset += _SLOT_CRC.size
        self._segment.buf[offset : offset + len(view)] = view
        if action == "corrupt" and len(view):
            # Damage the stored copy *after* the checksum was taken, so
            # a CRC ring detects it and a plain ring demonstrates why
            # checksums exist.
            self._segment.buf[offset] = self._segment.buf[offset] ^ 0xFF
        return len(view)

    def read(self, slot: int, size: int) -> memoryview:
        """A zero-copy view of ``slot``'s first ``size`` bytes.

        The view aliases the shared segment: the peer may overwrite the
        slot once it is released, so consume (or copy) before releasing.
        On checksummed rings the slot's CRC32 is verified here; a
        mismatch raises :class:`ShmError` and tears the session down —
        corruption is a retriable failure, never silent data.
        """
        offset = self._bounds(slot, size)
        plan = active_plan()
        if plan is not None:
            plan.shm_fault("read")
        if not self.checksum:
            return self._segment.buf[offset : offset + size]
        (expected,) = _SLOT_CRC.unpack_from(self._segment.buf, offset)
        offset += _SLOT_CRC.size
        view = self._segment.buf[offset : offset + size]
        if zlib.crc32(view) & 0xFFFFFFFF != expected:
            # Release before raising: the exception (and its traceback,
            # which pins this frame) outlives the session teardown, and
            # a still-exported view would keep the segment's mmap from
            # ever closing.
            view.release()
            raise ShmError(
                f"shm slot {slot} checksum mismatch "
                f"({size} bytes): ring corrupted in flight"
            )
        return view

    def close(self) -> None:
        """Detach; the creating side also unlinks the segment.

        Idempotent, and tolerant of still-exported buffer views: a
        view held across teardown (e.g. by an aborted session's numpy
        wrapper) must not be able to keep the segment name alive, so
        the unlink proceeds even when the mmap cannot be closed yet.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:
            pass
        if self._owner:
            _OWNED_NAMES.discard(self._segment.name)
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass


def create_ring(
    n_slots: int, slot_size: int, *, checksum: bool = False
) -> ShmRing:
    """Create (and own) a ring; the segment name is fresh and tagged."""
    if n_slots < 1 or slot_size < 1:
        raise ShmError(
            f"ring needs positive geometry, got {n_slots}×{slot_size}"
        )
    plan = active_plan()
    if plan is not None and plan.shm_create_fault():
        raise ShmError(
            "cannot create shared memory ring: "
            "[Errno 28] No space left on device (chaos)"
        )
    stride = slot_size + (_SLOT_CRC.size if checksum else 0)
    name = f"{SHM_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
    try:
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=n_slots * stride
        )
    except OSError as exc:
        raise ShmError(f"cannot create shared memory ring: {exc}") from exc
    _OWNED_NAMES.add(segment.name)
    return ShmRing(segment, n_slots, slot_size, owner=True,
                   checksum=checksum)


def attach_ring(
    name: str, n_slots: int, slot_size: int, *, layout=None
) -> ShmRing:
    """Attach to a coordinator-created ring by name.

    Only :data:`SHM_PREFIX`-tagged names are accepted — a session frame
    must not be able to point the worker at arbitrary segments.  The
    attachment is unregistered from this process's resource tracker so
    a worker exiting first never unlinks a segment the (creating)
    coordinator still uses; crash cleanup belongs to the creator's
    tracker alone.
    """
    if not str(name).startswith(SHM_PREFIX):
        raise ShmError(
            f"refusing to attach segment {name!r}: not a "
            f"{SHM_PREFIX}* session segment"
        )
    if layout is not None and layout != CRC_LAYOUT:
        # An unknown layout means a newer peer: nack back to inline
        # payloads rather than misinterpret the slot geometry.
        raise ShmError(f"unknown shm slot layout {layout!r}")
    checksum = layout == CRC_LAYOUT
    stride = slot_size + (_SLOT_CRC.size if checksum else 0)
    try:
        segment = shared_memory.SharedMemory(name=name)
    except OSError as exc:
        raise ShmError(
            f"cannot attach shared memory ring {name!r}: {exc}"
        ) from exc
    if segment.name not in _OWNED_NAMES:
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    if segment.size < n_slots * stride:
        try:
            segment.close()
        except OSError:
            pass
        raise ShmError(
            f"segment {name!r} is {segment.size} bytes, smaller than "
            f"the advertised {n_slots}×{slot_size} geometry"
        )
    return ShmRing(segment, n_slots, slot_size, owner=False,
                   checksum=checksum)
