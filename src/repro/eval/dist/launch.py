"""Worker autolaunch: spawn, readiness, lifeline, teardown.

PR 3 required every ``repro-tomography worker`` to be started by hand;
this module lets the coordinator own the fleet's lifecycle instead.  A
:class:`WorkerLauncher` is handed to
:class:`repro.eval.dist.RemoteExecutor`, which calls :meth:`launch`
when the sweep begins (spawn the workers, wait for each to announce
``worker listening on host:port``, return the connectable
:class:`~repro.eval.dist.coordinator.HostSpec` list) and
:meth:`shutdown` when it ends — on success *and* on failure.

Two launchers:

* :class:`LocalLauncher` — worker subprocesses on this host
  (``python -m repro.cli worker --port 0``), one per requested
  capacity.  Single-host fan-out without hand-starting anything, and
  the harness every autolaunch test and benchmark leg runs on.
* :class:`SshLauncher` — one ``ssh [user@]host repro-tomography worker
  --bind ... --port ...`` per host spec.  The SSH argv prefix and the
  remote command are injectable, which is also how tests exercise the
  lifecycle without a real SSH daemon.

Teardown has to survive the ugliest exit: a coordinator SIGKILLed
mid-sweep never runs ``shutdown()``.  Every launched worker therefore
gets ``--exit-on-stdin-close`` and a pipe held by the coordinator
process as a *lifeline*: when the coordinator dies — gracefully or not
— the pipe closes, the worker's watchdog thread sees EOF and the
worker exits.  No orphan processes, no leaked ports
(``benchmarks/bench_dist.py`` kills a live coordinator and asserts
exactly this).

The lifeline alone is not sufficient for a *misbehaving* worker,
though: a process that is stopped (SIGSTOP), wedged in non-Python
code, or simply ignoring the watchdog never reacts to EOF.  Explicit
teardown therefore escalates — lifeline EOF, then SIGCONT + SIGTERM
(a stopped process never sees SIGTERM until continued), then SIGKILL
(which ends even a stopped process) — with a bounded wait at each
stage, and :meth:`WorkerLauncher.shutdown` runs the stages across the
whole fleet in parallel so the worst-case teardown cost is one grace
period, not one per worker.  Launch is hardened symmetrically: a
worker that dies before announcing readiness is respawned with the
same argv/env (``launch_attempts``), so one crash-on-startup flake
does not abort a whole sweep.

Security provisioning: both launchers accept ``secret=`` and TLS
material paths and hand them to the workers **without ever putting the
token on a command line** (argv is world-readable in the process
table).  :class:`LocalLauncher` exports ``REPRO_DIST_SECRET`` into the
child's environment; :class:`SshLauncher` cannot carry environment
across a default ``sshd`` config, so it starts the remote worker with
``--secret-stdin`` and writes the token as the first line of the SSH
channel — the same pipe that then serves as the lifeline.  TLS
cert/key *paths* are not secrets and ride on argv.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

from repro.eval.dist.coordinator import HostSpec, parse_hosts

__all__ = [
    "LaunchError",
    "worker_environment",
    "LaunchedWorker",
    "WorkerLauncher",
    "LocalLauncher",
    "SshLauncher",
]

#: The readiness line a worker prints (and SSH relays) on startup.
_LISTEN_LINE = re.compile(r"worker listening on .*:(\d+)\s*$")

#: Stdout lines kept per worker for launch-failure diagnostics.
_DIAGNOSTIC_LINES = 50

#: Planning slots assumed for an SSH host whose capacity is left to
#: the remote default (the worker advertises its real CPU count only
#: at handshake, after chunking is fixed): enough granularity for a
#: typical multi-core host's pipeline without flooding a small one.
ASSUMED_REMOTE_SLOTS = 4


class LaunchError(RuntimeError):
    """A worker failed to launch or announce readiness in time."""


def _normalize_launch_secret(secret) -> str | None:
    """Coerce a launcher's secret to the text a child will re-read."""
    if secret is None:
        return None
    from repro.eval.dist.auth import normalize_secret

    return normalize_secret(secret).decode("utf-8")


def _validate_tls_pair(tls_cert, tls_key):
    """Certificate and key only travel as a pair."""
    if (tls_cert is None) != (tls_key is None):
        raise ValueError(
            "tls_cert and tls_key must be given together (got "
            f"cert={tls_cert!r}, key={tls_key!r})"
        )
    return tls_cert, tls_key


def _tls_arguments(tls_cert, tls_key) -> list[str]:
    if tls_cert is None:
        return []
    return ["--tls-cert", str(tls_cert), "--tls-key", str(tls_key)]


class _OutputWatcher(threading.Thread):
    """Drain a worker's stdout; capture the readiness line.

    The thread runs for the worker's whole life so the pipe never fills
    and blocks the worker; the first :data:`_DIAGNOSTIC_LINES` lines are
    kept for error reports.
    """

    def __init__(self, stream) -> None:
        super().__init__(daemon=True)
        self._stream = stream
        self.lines: list[str] = []
        self.port: int | None = None
        self.ready = threading.Event()
        self.start()

    def run(self) -> None:
        try:
            for line in self._stream:
                if len(self.lines) < _DIAGNOSTIC_LINES:
                    self.lines.append(line.rstrip("\n"))
                if self.port is None:
                    match = _LISTEN_LINE.search(line.strip())
                    if match:
                        self.port = int(match.group(1))
                        self.ready.set()
        except (OSError, ValueError):
            pass
        finally:
            self.ready.set()  # EOF: wake waiters so they see the death


class LaunchedWorker:
    """One spawned worker process and its readiness state."""

    def __init__(
        self, process: subprocess.Popen, describe: str, *, spawn=None
    ) -> None:
        self.process = process
        self.describe = describe
        self.watcher = _OutputWatcher(process.stdout)
        self.spec: HostSpec | None = None
        #: ``(argv, env, stdin_line)`` recorded at spawn time, so a
        #: worker that dies before readiness can be relaunched
        #: identically (``None`` for hand-constructed workers).
        self.spawn = spawn

    @property
    def pid(self) -> int:
        return self.process.pid

    def await_ready(self, deadline: float, *, poll: float = 0.25) -> int:
        """Block until the listen line appears; returns the bound port.

        The wait polls the process between event checks, so a worker
        that *dies* before announcing its port — a bad TLS key path, a
        malformed secret file, any startup misconfiguration — surfaces
        immediately as a :class:`LaunchError` carrying the exit status
        and the captured output (stderr is merged into stdout at
        spawn), instead of burning the whole ``startup_timeout``.
        Waiting for stdout EOF alone is not enough: a grandchild that
        inherited the pipe (an SSH multiplexer, a wrapper script's own
        child) can hold it open long after the worker is gone.
        """
        while True:
            remaining = deadline - time.monotonic()
            if self.watcher.ready.wait(
                timeout=min(poll, max(remaining, 0.0))
            ):
                if self.watcher.port is not None:
                    return self.watcher.port
                break  # stdout EOF without a listen line: worker died
            if self.process.poll() is not None:
                # Dead before readiness.  Give the drain thread a
                # moment to collect the last (usually most diagnostic)
                # lines, but do not wait for an EOF that an inherited
                # pipe fd may never deliver.
                self.watcher.ready.wait(timeout=1.0)
                break
            if remaining <= 0:
                break
        try:
            status = self.process.wait(timeout=1.0)
        except subprocess.TimeoutExpired:
            status = None
        detail = (
            f"exited with status {status}"
            if status is not None
            else "did not announce its port in time"
        )
        output = "\n".join(self.watcher.lines) or "<no output>"
        raise LaunchError(
            f"worker {self.describe} {detail}; "
            f"output (stdout+stderr):\n{output}"
        )

    # -- staged teardown ----------------------------------------------
    # Each stage is its own method so ``WorkerLauncher.shutdown`` can
    # run a stage across the whole fleet before waiting, instead of
    # paying a full escalation sequentially per worker.

    def close_lifeline(self) -> None:
        """Stage 1: EOF the stdin pipe (normally ends the worker)."""
        if self.process.stdin is not None:
            try:
                self.process.stdin.close()
            except OSError:
                pass

    def signal_terminate(self) -> None:
        """Stage 2: SIGCONT + SIGTERM.

        The SIGCONT matters: a stopped (SIGSTOP'd) worker never
        observes the lifeline EOF and holds SIGTERM pending forever —
        it must be continued before any catchable signal can end it.
        """
        if hasattr(signal, "SIGCONT"):
            try:
                os.kill(self.process.pid, signal.SIGCONT)
            except OSError:
                pass
        try:
            self.process.terminate()
        except OSError:
            pass

    def signal_kill(self) -> None:
        """Stage 3: SIGKILL (ends even a stopped process)."""
        try:
            self.process.kill()
        except OSError:
            pass

    def wait(self, timeout: float) -> bool:
        """Did the process exit within ``timeout`` seconds?"""
        try:
            self.process.wait(timeout=max(timeout, 0.0))
            return True
        except subprocess.TimeoutExpired:
            return False

    def terminate(self, grace: float = 5.0) -> None:
        """Close the lifeline, then escalate SIGTERM → SIGKILL."""
        self.close_lifeline()
        # Lifeline EOF normally ends the worker within a moment.
        if self.wait(min(grace, 2.0)):
            return
        self.signal_terminate()
        if self.wait(grace):
            return
        self.signal_kill()
        self.process.wait()


class WorkerLauncher:
    """Lifecycle strategy for an autolaunched worker fleet.

    ``launch()`` starts the fleet, waits for readiness, and returns the
    :class:`HostSpec` list the coordinator connects to; ``shutdown()``
    tears everything down and is safe to call repeatedly (including
    after a failed ``launch()``).  ``worker_slots`` is the fleet's total
    capacity, used by :meth:`RemoteExecutor.plan` to size chunk
    granularity so every slot can be kept busy.
    """

    #: Overridden by concrete launchers.
    worker_slots: int = 1

    #: Does this launcher's fleet run on the coordinator's own host?
    #: The coordinator's ``transport="auto"`` shm detection trusts this
    #: (a :class:`LocalLauncher` fleet shares ``/dev/shm`` by
    #: construction); launchers that reach other machines leave it
    #: False and rely on per-endpoint loopback detection instead.
    same_host: bool = False

    def __init__(
        self,
        *,
        startup_timeout: float = 30.0,
        launch_attempts: int = 2,
    ) -> None:
        self.startup_timeout = startup_timeout
        #: Spawn attempts per worker before ``launch()`` gives up: a
        #: worker that dies before announcing readiness is relaunched
        #: with the same argv/env, so one crash-on-startup flake (a
        #: transiently busy port, an interpreter OOM) does not abort
        #: the sweep.  A deterministically broken worker still fails,
        #: carrying its last captured output.
        self.launch_attempts = max(1, int(launch_attempts))
        self.workers: list[LaunchedWorker] = []

    def launch(self) -> list[HostSpec]:
        if self.workers:
            # Silently discarding a live fleet would let a concurrent
            # sweep's shutdown() tear down *this* sweep's workers.
            raise LaunchError(
                "launcher already has a live fleet; run concurrent "
                "sweeps with one launcher each (or shutdown() first)"
            )
        try:
            self._spawn_all()
            deadline = time.monotonic() + self.startup_timeout
            for index in range(len(self.workers)):
                attempt = 1
                while True:
                    worker = self.workers[index]
                    try:
                        port = worker.await_ready(deadline)
                        break
                    except LaunchError:
                        if (
                            attempt >= self.launch_attempts
                            or worker.spawn is None
                        ):
                            raise
                        attempt += 1
                        worker.terminate(grace=1.0)
                        argv, env, stdin_line = worker.spawn
                        self.workers[index] = self._start(
                            argv,
                            worker.describe,
                            env,
                            stdin_line=stdin_line,
                        )
                        # The respawn gets its own readiness window.
                        deadline = max(
                            deadline,
                            time.monotonic() + self.startup_timeout,
                        )
                worker.spec = self._spec_for(worker, port)
        except BaseException:
            self.shutdown()
            raise
        return [worker.spec for worker in self.workers]

    def shutdown(self, grace: float = 5.0) -> None:
        """Tear the whole fleet down, escalating in parallel stages.

        Lifeline EOF for everyone, one shared wait; SIGCONT + SIGTERM
        for the stragglers, one shared wait; SIGKILL for whatever is
        left.  The worst-case wall-clock cost is a single grace period
        regardless of fleet size, and even a SIGSTOP'd worker is
        reliably reaped.  Safe to call repeatedly.
        """
        workers, self.workers = self.workers, []
        if not workers:
            return
        for worker in workers:
            worker.close_lifeline()
        deadline = time.monotonic() + min(grace, 2.0)
        stragglers = [
            worker
            for worker in workers
            if not worker.wait(deadline - time.monotonic())
        ]
        if not stragglers:
            return
        for worker in stragglers:
            worker.signal_terminate()
        deadline = time.monotonic() + grace
        stubborn = [
            worker
            for worker in stragglers
            if not worker.wait(deadline - time.monotonic())
        ]
        for worker in stubborn:
            worker.signal_kill()
        for worker in stubborn:
            worker.process.wait()

    def __enter__(self) -> "WorkerLauncher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- subclass hooks ------------------------------------------------
    def _spawn_all(self) -> None:
        raise NotImplementedError

    def _spec_for(self, worker: LaunchedWorker, port: int) -> HostSpec:
        raise NotImplementedError

    # -- shared plumbing -----------------------------------------------
    def _spawn(
        self, argv: list[str], describe: str, env=None, *, stdin_line=None
    ) -> None:
        self.workers.append(
            self._start(argv, describe, env, stdin_line=stdin_line)
        )

    def _start(
        self, argv: list[str], describe: str, env=None, *, stdin_line=None
    ) -> LaunchedWorker:
        try:
            process = subprocess.Popen(
                argv,
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
        except OSError as exc:
            raise LaunchError(
                f"failed to spawn worker {describe}: {exc}"
            ) from exc
        if stdin_line is not None:
            # Private delivery (the shared-secret token for
            # ``--secret-stdin`` workers): first line down the pipe,
            # which then stays open as the lifeline.  A worker that
            # died instantly breaks the pipe here; swallow it and let
            # ``await_ready`` report the death with its output.
            try:
                process.stdin.write(stdin_line + "\n")
                process.stdin.flush()
            except (OSError, ValueError):
                pass
        return LaunchedWorker(
            process, describe, spawn=(list(argv), env, stdin_line)
        )


def worker_environment() -> dict[str, str]:
    """Child env with the ``repro`` package importable.

    ``python -m repro.cli`` in the child must find the same package the
    coordinator runs, whether that is an installed distribution or a
    source tree on ``PYTHONPATH``.
    """
    import repro

    package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class LocalLauncher(WorkerLauncher):
    """Spawn worker subprocesses on this host (single-host fan-out).

    Parameters:
        n_workers: Number of worker processes.
        capacities: Per-worker capacity list (an ``int`` broadcasts;
            ``None`` = capacity 1 each — on one host the fan-out itself
            is the parallelism, so per-worker pools default off).
        throttles: Per-worker latency injection in seconds (a ``float``
            broadcasts; ``None`` = no throttling) — benchmark harness
            for simulating hosts of unequal speed on one machine.
        cache_dir: Optional shared trial-cache root passed to every
            worker.
        secret: Shared secret handed to every worker through the child
            environment (``REPRO_DIST_SECRET``) — never argv — so the
            autolaunched fleet demands the same token the coordinator
            authenticates with.
        tls_cert / tls_key: TLS material paths passed to every worker
            (``--tls-cert``/``--tls-key``); the workers then refuse
            plaintext coordinators.  Paths, not secrets, so argv is
            fine.
        python: Interpreter for the workers (default: this one).
        startup_timeout: Seconds allowed for all workers to announce
            readiness.

    The fleet runs on this host (``same_host = True``), so a v4-capable
    coordinator with ``transport="auto"`` moves chunk/result payloads
    through shared memory instead of the loopback socket.
    """

    same_host = True

    def __init__(
        self,
        n_workers: int = 2,
        *,
        capacities=None,
        throttles=None,
        cache_dir=None,
        secret=None,
        tls_cert=None,
        tls_key=None,
        python: str | None = None,
        startup_timeout: float = 30.0,
        launch_attempts: int = 2,
    ) -> None:
        super().__init__(
            startup_timeout=startup_timeout,
            launch_attempts=launch_attempts,
        )
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if capacities is None:
            capacities = [1] * n_workers
        elif isinstance(capacities, int):
            capacities = [capacities] * n_workers
        else:
            capacities = [int(value) for value in capacities]
        if len(capacities) != n_workers:
            raise ValueError(
                f"capacities must list one value per worker: got "
                f"{len(capacities)} values for {n_workers} workers"
            )
        if any(value < 1 for value in capacities):
            raise ValueError(
                f"capacities must be >= 1, got {capacities}"
            )
        if throttles is None:
            throttles = [0.0] * n_workers
        elif isinstance(throttles, (int, float)):
            throttles = [float(throttles)] * n_workers
        else:
            throttles = [float(value) for value in throttles]
        if len(throttles) != n_workers or any(
            value < 0 for value in throttles
        ):
            raise ValueError(
                f"throttles must list one non-negative value per "
                f"worker, got {throttles}"
            )
        self.n_workers = n_workers
        self.capacities = capacities
        self.throttles = throttles
        self.cache_dir = cache_dir
        self.secret = _normalize_launch_secret(secret)
        self.tls_cert, self.tls_key = _validate_tls_pair(tls_cert, tls_key)
        self.python = python or sys.executable
        self.worker_slots = sum(capacities)

    def _spawn_all(self) -> None:
        env = worker_environment()
        if self.secret is not None:
            # Environment, never argv: `ps` shows argv to every local
            # user, while the child environment stays private.
            env["REPRO_DIST_SECRET"] = self.secret
        for index, (capacity, throttle) in enumerate(
            zip(self.capacities, self.throttles)
        ):
            argv = [
                self.python,
                "-m",
                "repro.cli",
                "worker",
                "--bind",
                "127.0.0.1",
                "--port",
                "0",
                "--capacity",
                str(capacity),
                "--exit-on-stdin-close",
            ]
            if throttle:
                argv += ["--throttle", str(throttle)]
            if self.cache_dir is not None:
                argv += ["--cache-dir", str(self.cache_dir)]
            argv += _tls_arguments(self.tls_cert, self.tls_key)
            self._spawn(argv, f"local[{index}] (capacity {capacity})", env)

    def _spec_for(self, worker: LaunchedWorker, port: int) -> HostSpec:
        return HostSpec("127.0.0.1", port)


class SshLauncher(WorkerLauncher):
    """Spawn one worker per host over SSH.

    Each host spec (``[user@]host:port`` — see
    :func:`repro.eval.dist.coordinator.parse_hosts`) becomes ``ssh
    [user@]host repro-tomography worker --bind <bind> --port <port>``;
    the worker's readiness line is relayed back through the SSH
    channel, and the channel itself is the lifeline — closing it (or
    the coordinator dying) ends the remote worker.

    Parameters:
        hosts: Host specs; the ``port`` is the TCP port the *remote*
            worker binds and the coordinator connects to, so it must be
            reachable and non-conflicting per host.
        capacities: Per-worker capacity (an ``int`` broadcasts;
            ``None`` = let each worker default to its own CPU count).
        ssh_command: SSH argv prefix (swap in extra options — or, in
            tests, a stub that runs the worker locally).
        remote_command: How to run the CLI on the remote host.
        bind: Interface the remote worker binds (default all — the
            coordinator connects over the network; keep it a private
            one, or secure the wire with ``secret``/TLS: the protocol
            carries pickles).
        cache_dir: Optional *remote* trial-cache root (a shared
            filesystem path) passed to every worker.
        secret: Shared secret delivered as the first line of the SSH
            channel's stdin (the worker runs with ``--secret-stdin``)
            — SSH does not carry environment without server-side
            ``AcceptEnv``, and argv would leak the token to ``ps`` on
            the coordinator host.
        tls_cert / tls_key: *Remote* paths to the workers' TLS
            material, passed as ``--tls-cert``/``--tls-key``; they
            must be valid on every launched host.
    """

    def __init__(
        self,
        hosts,
        *,
        capacities=None,
        ssh_command=("ssh", "-o", "BatchMode=yes"),
        remote_command=("repro-tomography",),
        bind: str = "0.0.0.0",
        cache_dir=None,
        secret=None,
        tls_cert=None,
        tls_key=None,
        startup_timeout: float = 30.0,
        launch_attempts: int = 2,
    ) -> None:
        super().__init__(
            startup_timeout=startup_timeout,
            launch_attempts=launch_attempts,
        )
        self.specs = parse_hosts(hosts)
        if capacities is None:
            capacities = [None] * len(self.specs)
        elif isinstance(capacities, int):
            capacities = [capacities] * len(self.specs)
        else:
            capacities = [
                None if value is None else int(value)
                for value in capacities
            ]
        if len(capacities) != len(self.specs):
            raise ValueError(
                f"capacities must list one value per host: got "
                f"{len(capacities)} values for {len(self.specs)} hosts"
            )
        if any(value is not None and value < 1 for value in capacities):
            raise ValueError(f"capacities must be >= 1, got {capacities}")
        self.capacities = capacities
        self.ssh_command = list(ssh_command)
        self.remote_command = list(remote_command)
        self.bind = bind
        self.cache_dir = cache_dir
        self.secret = _normalize_launch_secret(secret)
        self.tls_cert, self.tls_key = _validate_tls_pair(tls_cert, tls_key)
        # Unknown (remote-CPU-default) capacities still need chunk
        # granularity to fill the pipeline they will advertise.
        self.worker_slots = sum(
            value if value is not None else ASSUMED_REMOTE_SLOTS
            for value in capacities
        )

    def _spawn_all(self) -> None:
        for spec, capacity in zip(self.specs, self.capacities):
            argv = [
                *self.ssh_command,
                spec.ssh_target,
                *self.remote_command,
                "worker",
                "--bind",
                self.bind,
                "--port",
                str(spec.port),
                "--exit-on-stdin-close",
            ]
            if capacity is not None:
                argv += ["--capacity", str(capacity)]
            if self.cache_dir is not None:
                argv += ["--cache-dir", str(self.cache_dir)]
            argv += _tls_arguments(self.tls_cert, self.tls_key)
            if self.secret is not None:
                # The token itself rides stdin (see _spawn), never the
                # SSH command line.
                argv += ["--secret-stdin"]
            self._spawn(
                argv,
                f"ssh:{spec.ssh_target}:{spec.port}",
                stdin_line=self.secret,
            )

    def _spec_for(self, worker: LaunchedWorker, port: int) -> HostSpec:
        # The remote worker may have bound an ephemeral port (--port 0
        # in the spec is rejected, but a custom remote_command could);
        # trust the announced port, connect to the spec's host.
        index = self.workers.index(worker)
        spec = self.specs[index]
        return HostSpec(spec.host, port, spec.user)
