"""Crash-safe sweep journal: settle once, survive any coordinator death.

A long Monte-Carlo sweep that loses its coordinator (SIGKILL, OOM, a
rebooted laptop) currently loses every settled chunk that was not also
cached.  The journal closes that hole: the engine appends one fsync'd
record per settled chunk, and a rerun with ``--resume`` replays those
records as if they were cache hits — completed work is never recomputed
and the final figure is bit-identical to an uninterrupted run.

On-disk format (append-only, one file per sweep)::

    record := MAGIC(4) | header_len u32 | payload_len u64 | crc32 u32
              | header JSON | payload
    crc32  := zlib.crc32(header JSON + payload)

The first record identifies the sweep::

    {"kind": "sweep", "version": 1, "fingerprint": ..., "n_tasks": N}

and every subsequent record carries one settled chunk::

    {"kind": "chunk", "tasks": [global task indices], "descriptor": ...}

with the payload holding the chunk's packed little-endian float64
error buffer — exactly the representation the wire and the cache use,
so replay is lossless.

Robustness properties:

* **Torn tails heal.**  A record cut short by the crash (or damaged on
  disk) fails its length/CRC check; replay keeps every record before
  it, truncates the file at the last valid boundary, and the resumed
  sweep appends from there.
* **Wrong journals fail loudly.**  The sweep fingerprint hashes the
  per-task :func:`repro.eval.cache.trial_key` — instance, scenario
  factory, seeds, config, options and cache salt — so resuming against
  a journal from a different sweep raises :class:`JournalMismatchError`
  instead of silently splicing foreign results.
* **Settled means durable.**  Each append flushes and ``fsync``\\ s
  before the engine reports the chunk settled.

The journal lives beside the dist backend because crash-safety matters
most for long remote sweeps, but it attaches at the engine level
(:func:`repro.eval.parallel.run_scenario_tasks`), so serial and local
sweeps are exactly as resumable.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import threading
import zlib

import numpy as np

__all__ = [
    "JOURNAL_VERSION",
    "JournalError",
    "JournalMismatchError",
    "SweepJournal",
    "sweep_fingerprint",
]

MAGIC = b"RJL1"
JOURNAL_VERSION = 1

#: magic, header length, payload length, crc32(header + payload).
_RECORD = struct.Struct("!4sIQI")

#: Caps keep a corrupted length field from allocating the disk: sweep
#: headers are small JSON and chunk payloads are float64 error vectors.
MAX_HEADER_BYTES = 64 * 1024 * 1024
MAX_PAYLOAD_BYTES = 4 * 1024 * 1024 * 1024


class JournalError(RuntimeError):
    """A sweep journal could not be read or written."""


class JournalMismatchError(JournalError):
    """``--resume`` pointed at a journal from a different sweep."""


def sweep_fingerprint(instance, tasks, *, config=None, options=None) -> str:
    """Content hash identifying one sweep for resume purposes.

    Built from the per-task trial keys, so it moves with everything
    result-affecting (instance, factories, seeds, config, options, and
    the cache code salt) and nothing else — worker counts, transports
    and chunking may all differ between the crashed and resumed runs.
    """
    import hashlib

    from repro.eval.cache import trial_key
    from repro.io import instance_fingerprint

    instance_fp = instance_fingerprint(instance)
    digest = hashlib.sha256()
    digest.update(instance_fp.encode("ascii"))
    for task in tasks:
        key = trial_key(instance_fp, task, config=config, options=options)
        digest.update(key.encode("ascii"))
    return digest.hexdigest()


def _read_record(handle, offset: int):
    """Read one record at ``offset``; return ``(header, payload, end)``.

    Returns ``None`` on a clean end-of-file at the record boundary and
    raises :class:`JournalError` on anything torn or corrupt — the
    caller turns that into "truncate here and keep going".
    """
    prefix = handle.read(_RECORD.size)
    if not prefix:
        return None
    if len(prefix) < _RECORD.size:
        raise JournalError(f"torn record prefix at offset {offset}")
    magic, header_len, payload_len, crc = _RECORD.unpack(prefix)
    if magic != MAGIC:
        raise JournalError(
            f"bad journal magic {magic!r} at offset {offset}"
        )
    if header_len > MAX_HEADER_BYTES or payload_len > MAX_PAYLOAD_BYTES:
        raise JournalError(f"implausible record lengths at offset {offset}")
    body = handle.read(header_len + payload_len)
    if len(body) < header_len + payload_len:
        raise JournalError(f"torn record body at offset {offset}")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise JournalError(f"record checksum mismatch at offset {offset}")
    try:
        header = json.loads(body[:header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise JournalError(
            f"undecodable record header at offset {offset}: {exc}"
        ) from None
    if not isinstance(header, dict) or "kind" not in header:
        raise JournalError(f"malformed record header at offset {offset}")
    end = offset + _RECORD.size + header_len + payload_len
    return header, body[header_len:], end


class SweepJournal:
    """Append-only journal of settled chunks for one sweep.

    Construct with just a path (cheap; no I/O), then let
    :func:`repro.eval.parallel.run_scenario_tasks` call :meth:`open`
    once it knows the sweep's identity.  ``resume=False`` (the default)
    starts a fresh journal, overwriting whatever the path held;
    ``resume=True`` replays an existing journal first and refuses one
    whose fingerprint does not match.
    """

    def __init__(self, path, *, resume: bool = False) -> None:
        self.path = pathlib.Path(path)
        self.resume = resume
        self._handle = None
        self._lock = threading.Lock()
        #: Chunk records replayed from disk (task index → errors dict);
        #: populated by :meth:`open` when resuming.
        self.replayed: dict[int, dict[str, np.ndarray]] = {}
        #: Records appended by this run (diagnostics / tests).
        self.recorded_chunks = 0

    # -- lifecycle -----------------------------------------------------
    def open(self, instance, tasks, *, config=None, options=None) -> dict:
        """Bind to a sweep; return replayed ``{task index: errors}``.

        Idempotent per instance — the engine calls it exactly once.
        """
        if self._handle is not None:
            raise JournalError("journal is already open")
        fingerprint = sweep_fingerprint(
            instance, tasks, config=config, options=options
        )
        self.fingerprint = fingerprint
        self.n_tasks = len(tasks)
        if self.resume and self.path.exists():
            keep = self._replay(fingerprint, len(tasks))
        else:
            keep = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if keep:
            # Heal a torn tail in place, then append after the last
            # valid record.
            handle = open(self.path, "r+b")
            handle.truncate(keep)
            handle.seek(keep)
        else:
            handle = open(self.path, "wb")
            self.replayed = {}
        self._handle = handle
        if keep == 0:
            self._append(
                {
                    "kind": "sweep",
                    "version": JOURNAL_VERSION,
                    "fingerprint": fingerprint,
                    "n_tasks": len(tasks),
                },
                b"",
            )
        return dict(self.replayed)

    def close(self) -> None:
        with self._lock:
            handle, self._handle = self._handle, None
            if handle is not None:
                handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- replay --------------------------------------------------------
    def _replay(self, fingerprint: str, n_tasks: int) -> int:
        """Load valid records; return the offset of the valid prefix."""
        from repro.eval.parallel import _unpack_error_dicts

        replayed: dict[int, dict[str, np.ndarray]] = {}
        offset = 0
        with open(self.path, "rb") as handle:
            first = True
            while True:
                try:
                    record = _read_record(handle, offset)
                except JournalError:
                    if first:
                        # Not even a valid sweep header: whatever this
                        # file is, it is not a journal we can extend.
                        raise JournalMismatchError(
                            f"{self.path} is not a sweep journal"
                        ) from None
                    break  # torn/corrupt tail: keep the prefix
                if record is None:
                    break  # clean end of file
                header, payload, end = record
                if first:
                    if (
                        header.get("kind") != "sweep"
                        or header.get("version") != JOURNAL_VERSION
                    ):
                        raise JournalMismatchError(
                            f"{self.path} is not a version-"
                            f"{JOURNAL_VERSION} sweep journal"
                        )
                    if (
                        header.get("fingerprint") != fingerprint
                        or header.get("n_tasks") != n_tasks
                    ):
                        raise JournalMismatchError(
                            f"journal {self.path} records a different "
                            "sweep (instance, seeds, config or trial "
                            "count changed); refusing to splice its "
                            "results"
                        )
                    first = False
                elif header.get("kind") == "chunk":
                    try:
                        buffer = np.frombuffer(payload, dtype="<f8")
                        errors = _unpack_error_dicts(
                            header["descriptor"], buffer
                        )
                        indices = [int(i) for i in header["tasks"]]
                    except Exception:
                        break  # damaged record: keep the prefix
                    if len(indices) != len(errors) or any(
                        not 0 <= index < n_tasks for index in indices
                    ):
                        break
                    for index, trial in zip(indices, errors):
                        replayed[index] = trial
                offset = end
        self.replayed = replayed
        return offset

    # -- append --------------------------------------------------------
    def _append(self, header: dict, payload: bytes) -> None:
        header_bytes = json.dumps(
            header, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        crc = zlib.crc32(header_bytes)
        crc = zlib.crc32(payload, crc) & 0xFFFFFFFF
        with self._lock:
            if self._handle is None:
                raise JournalError("journal is closed")
            self._handle.write(
                _RECORD.pack(MAGIC, len(header_bytes), len(payload), crc)
            )
            self._handle.write(header_bytes)
            self._handle.write(payload)
            # A chunk is only "settled" once it would survive a crash.
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def record(self, task_indices, errors_list) -> None:
        """Append one settled chunk (global task indices + results)."""
        from repro.eval.parallel import _pack_error_dicts

        descriptor, buffer = _pack_error_dicts(list(errors_list))
        payload = np.ascontiguousarray(buffer, dtype="<f8").tobytes()
        self._append(
            {
                "kind": "chunk",
                "tasks": [int(index) for index in task_indices],
                "descriptor": descriptor,
            },
            payload,
        )
        self.recorded_chunks += 1
