"""Deterministic chaos-injection plane for the distributed backend.

Fault tolerance that is only exercised by real outages is fault
tolerance that has never been tested.  This module injects the failure
shapes the coordinator claims to survive — dropped/corrupted/truncated
frames, refused connects, stalled or corrupted shared-memory rings,
workers that die or freeze at chunk *k* — at well-defined choke points
in :mod:`repro.eval.dist.protocol`, :mod:`repro.eval.dist.shm`, and
:mod:`repro.eval.dist.worker`, so the chaos tests, the benchmark's
chaos leg, and the CI chaos-smoke job can prove the sweep stays
**bit-identical** under every fault class.

A :class:`FaultPlan` is parsed from a compact spec string::

    connect-refuse:n=2,frame-corrupt:type=result:nth=3,worker-kill:chunk=5

Entries are comma-separated; each entry is ``name[:key=value ...]``.
Supported faults (all counters are per-plan and thread-safe):

``connect-refuse:n=N``
    The worker server closes the first ``N`` accepted connections
    before reading a byte (a flaky listener; exercises the
    coordinator's connect retry/backoff).
``frame-drop[:type=T][:nth=K|:p=P]``
    Matching outbound frames are silently not sent.  The sender keeps
    running — the peer sees a hung-but-connected endpoint, which only
    heartbeats or the per-chunk deadline can detect.
``frame-corrupt[:type=T][:nth=K|:p=P]``
    The frame is sent with scrambled magic bytes; the receiver fails
    fast with a framing error and tears the session down (a detected,
    retriable fault).
``frame-truncate[:type=T][:nth=K|:p=P]``
    Only a prefix of the frame is sent, then the sender aborts the
    session — the peer sees a torn frame.
``frame-delay:seconds=S[:type=T][:nth=K|:p=P]``
    Sleep ``S`` seconds before sending (latency injection; results are
    delayed, never changed).
``shm-stall:seconds=S[:op=read|write][:nth=K]``
    A ring read/write sleeps ``S`` seconds (a stalled data plane while
    the control socket stays healthy — the per-chunk deadline's case).
``shm-corrupt[:nth=K|:p=P]``
    Flip one byte of the slot after a ring write.  Only detectable on
    checksummed (CRC32) rings — which is the point of having them.
``shm-enospc[:n=N]``
    Ring creation raises as if ``/dev/shm`` were full (``N`` times;
    default every time).  The session must fall back to socket
    payloads cleanly.
``worker-kill:chunk=K``
    The worker process hard-exits when chunk ordinal ``K`` (0-based
    count of chunk frames accepted this session) arrives.  Process
    faults only fire when the plan was installed with
    ``allow_process_faults=True`` (the worker CLI does); an in-process
    test plan degrades them to dropping the session.
``worker-sigstop:chunk=K``
    The worker process SIGSTOPs itself at chunk ordinal ``K`` — the
    canonical hung-but-connected worker.  Same process-fault gating.
``worker-freeze:chunk=K[:seconds=S]``
    An in-process SIGSTOP lookalike: the session thread stalls for
    ``S`` seconds (default 30) at chunk ordinal ``K`` *and* the
    session's heartbeat sender is suppressed for the duration, so the
    coordinator sees exactly the silence a stopped process produces.
``compute-stall:chunk=K[:seconds=S]``
    The session thread stalls for ``S`` seconds at chunk ordinal ``K``
    while heartbeats keep flowing — a live worker that will never
    answer, which only the per-chunk deadline catches.

Probabilistic faults (``p=``) draw from a plan-seeded RNG, so a chaos
run is reproducible; ``nth=`` faults (1-based) are exact.  The plan is
installed process-globally (:func:`install` / the :func:`installed`
context manager); the worker CLI installs from ``--chaos`` or the
``REPRO_CHAOS`` environment variable, which autolaunched fleets
inherit from the coordinator's environment.

Determinism note: every fault above is either *detected* (corrupt
frames fail framing, corrupt shm slots fail CRC32) or *delays/kills*
(drop, stall, refuse, kill, stop) — none can silently alter a result
payload, so a sweep that completes under chaos completes
bit-identically.
"""

from __future__ import annotations

import os
import random
import threading
import time

__all__ = [
    "CHAOS_ENV",
    "CHAOS_SEED_ENV",
    "FaultPlan",
    "FaultSpecError",
    "active_plan",
    "install",
    "installed",
    "plan_from_env",
    "uninstall",
]

#: Environment variable the worker CLI reads a fault spec from.
CHAOS_ENV = "REPRO_CHAOS"
#: Optional seed for the plan's probabilistic faults.
CHAOS_SEED_ENV = "REPRO_CHAOS_SEED"

#: Frame-level fault names (share the type/nth/p matching machinery).
_FRAME_FAULTS = ("frame-drop", "frame-corrupt", "frame-truncate",
                 "frame-delay")
#: Chunk-ordinal fault names (fire when chunk ordinal == ``chunk``).
_CHUNK_FAULTS = ("worker-kill", "worker-sigstop", "worker-freeze",
                 "compute-stall")
_KNOWN_FAULTS = _FRAME_FAULTS + _CHUNK_FAULTS + (
    "connect-refuse", "shm-stall", "shm-corrupt", "shm-enospc",
)

#: Keys each fault accepts (anything else is a spec typo, not a knob).
_ALLOWED_PARAMS = {
    "frame-drop": {"type", "nth", "p"},
    "frame-corrupt": {"type", "nth", "p"},
    "frame-truncate": {"type", "nth", "p"},
    "frame-delay": {"type", "nth", "p", "seconds"},
    "connect-refuse": {"n"},
    "shm-stall": {"op", "nth", "seconds"},
    "shm-corrupt": {"nth", "p"},
    "shm-enospc": {"n"},
    "worker-kill": {"chunk"},
    "worker-sigstop": {"chunk"},
    "worker-freeze": {"chunk", "seconds"},
    "compute-stall": {"chunk", "seconds"},
}


class FaultSpecError(ValueError):
    """A chaos spec string could not be parsed."""


class _Fault:
    """One armed fault: static filter plus a fire counter."""

    def __init__(self, name: str, params: dict) -> None:
        self.name = name
        self.params = params
        self.matches = 0  # injection points that passed the filter
        self.fires = 0  # times the fault actually triggered

    def __repr__(self) -> str:  # diagnostics only
        params = ":".join(
            f"{key}={value}" for key, value in sorted(self.params.items())
        )
        return f"<fault {self.name}{':' + params if params else ''}>"


def _parse_value(name: str, key: str, text: str):
    if key in ("type", "op"):
        return text
    try:
        if key in ("nth", "n", "chunk"):
            return int(text)
        return float(text)
    except ValueError:
        raise FaultSpecError(
            f"chaos fault {name!r}: {key}={text!r} is not a number"
        ) from None


class FaultPlan:
    """A parsed, thread-safe set of armed faults.

    ``allow_process_faults`` gates ``worker-kill``/``worker-sigstop``:
    only a plan installed by the worker CLI (a dedicated process) may
    kill or stop the process it runs in; an in-process plan degrades
    those faults to dropping the session.
    """

    def __init__(
        self,
        faults: list[_Fault],
        *,
        seed: int = 0,
        allow_process_faults: bool = False,
    ) -> None:
        self.faults = faults
        self.allow_process_faults = allow_process_faults
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    @classmethod
    def parse(
        cls,
        spec: str,
        *,
        seed: int = 0,
        allow_process_faults: bool = False,
    ) -> "FaultPlan":
        """Parse ``name[:key=value ...][,name...]`` into a plan."""
        faults: list[_Fault] = []
        for entry in str(spec).split(","):
            entry = entry.strip()
            if not entry:
                continue
            pieces = entry.split(":")
            name = pieces[0].strip()
            if name not in _KNOWN_FAULTS:
                raise FaultSpecError(
                    f"unknown chaos fault {name!r}; known: "
                    f"{', '.join(sorted(_KNOWN_FAULTS))}"
                )
            params: dict = {}
            for piece in pieces[1:]:
                key, sep, value = piece.partition("=")
                key = key.strip()
                if not sep or not key:
                    raise FaultSpecError(
                        f"chaos fault {name!r}: expected key=value, "
                        f"got {piece!r}"
                    )
                if key not in _ALLOWED_PARAMS[name]:
                    raise FaultSpecError(
                        f"chaos fault {name!r} does not take {key!r} "
                        f"(allowed: "
                        f"{', '.join(sorted(_ALLOWED_PARAMS[name]))})"
                    )
                params[key] = _parse_value(name, key, value.strip())
            if name in _CHUNK_FAULTS and "chunk" not in params:
                raise FaultSpecError(
                    f"chaos fault {name!r} requires chunk=K"
                )
            faults.append(_Fault(name, params))
        if not faults:
            raise FaultSpecError(f"empty chaos spec {spec!r}")
        return cls(
            faults, seed=seed, allow_process_faults=allow_process_faults
        )

    # -- matching core -------------------------------------------------
    def _should_fire(self, fault: _Fault) -> bool:
        """Counter/probability gate; caller already passed the filter.

        Caller holds ``self._lock``.
        """
        fault.matches += 1
        nth = fault.params.get("nth")
        if nth is not None:
            fire = fault.matches == nth
        elif "p" in fault.params:
            fire = self._rng.random() < float(fault.params["p"])
        else:
            limit = fault.params.get("n")
            fire = limit is None or fault.fires < limit
        if fire:
            fault.fires += 1
        return fire

    def _fire_first(self, names, predicate=None) -> _Fault | None:
        with self._lock:
            for fault in self.faults:
                if fault.name not in names:
                    continue
                if predicate is not None and not predicate(fault):
                    continue
                if self._should_fire(fault):
                    return fault
        return None

    # -- injection points ----------------------------------------------
    def frame_send_action(self, header: dict) -> str | None:
        """Consulted by the protocol layer before each outbound frame.

        Returns ``"drop"``, ``"corrupt"`` or ``"truncate"`` for the
        sender to act on; delay faults sleep here and return ``None``.
        """
        frame_type = header.get("type")

        def _matches(fault: _Fault) -> bool:
            wanted = fault.params.get("type")
            return wanted is None or wanted == frame_type

        fault = self._fire_first(_FRAME_FAULTS, _matches)
        if fault is None:
            return None
        if fault.name == "frame-delay":
            time.sleep(float(fault.params.get("seconds", 0.05)))
            return None
        return fault.name[len("frame-"):]

    def refuse_connect(self) -> bool:
        """Should the worker server drop this freshly accepted peer?"""
        return self._fire_first(("connect-refuse",)) is not None

    def shm_create_fault(self) -> bool:
        """Should this ring creation fail as if /dev/shm were full?"""
        return self._fire_first(("shm-enospc",)) is not None

    def shm_fault(self, op: str) -> str | None:
        """Consulted by ring reads/writes; may sleep (stall).

        Returns ``"corrupt"`` when a just-written slot should be
        damaged (``op == "write"`` only), else ``None``.
        """

        def _stall_matches(fault: _Fault) -> bool:
            wanted = fault.params.get("op")
            return wanted is None or wanted == op

        fault = self._fire_first(("shm-stall",), _stall_matches)
        if fault is not None:
            time.sleep(float(fault.params.get("seconds", 30.0)))
        if op == "write" and self._fire_first(("shm-corrupt",)):
            return "corrupt"
        return None

    def chunk_fault(self, ordinal: int) -> tuple | None:
        """Consulted by the worker as chunk frame ``ordinal`` arrives.

        Returns ``("kill",)``, ``("sigstop",)``, ``("freeze",
        seconds)`` or ``("stall", seconds)`` — the worker executes the
        action (and applies the process-fault gating).
        """
        fault = self._fire_first(
            _CHUNK_FAULTS,
            lambda fault: int(fault.params["chunk"]) == ordinal,
        )
        if fault is None:
            return None
        if fault.name == "worker-kill":
            return ("kill",)
        if fault.name == "worker-sigstop":
            return ("sigstop",)
        seconds = float(fault.params.get("seconds", 30.0))
        if fault.name == "worker-freeze":
            return ("freeze", seconds)
        return ("stall", seconds)


# Process-global plan, consulted (when set) by the protocol/shm/worker
# choke points.  One plan per process keeps the injection sites trivial;
# in-process tests scope frame faults by frame *type* (result/pong
# frames are worker sends, chunk/ping frames are coordinator sends).
_PLAN: FaultPlan | None = None


def install(plan: FaultPlan | None) -> None:
    """Install (or, with ``None``, clear) the process's fault plan."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    install(None)


def active_plan() -> FaultPlan | None:
    return _PLAN


class installed:
    """Context manager: install a plan, restore the old one on exit."""

    def __init__(self, plan: FaultPlan | None) -> None:
        self.plan = plan
        self._previous: FaultPlan | None = None

    def __enter__(self) -> FaultPlan | None:
        self._previous = active_plan()
        install(self.plan)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        install(self._previous)


def plan_from_env(
    environ=None, *, allow_process_faults: bool = False
) -> FaultPlan | None:
    """Build a plan from ``REPRO_CHAOS`` (``None`` when unset/empty)."""
    environ = os.environ if environ is None else environ
    spec = environ.get(CHAOS_ENV, "").strip()
    if not spec:
        return None
    seed_text = environ.get(CHAOS_SEED_ENV, "").strip()
    seed = int(seed_text) if seed_text else 0
    return FaultPlan.parse(
        spec, seed=seed, allow_process_faults=allow_process_faults
    )
