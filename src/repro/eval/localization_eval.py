"""Evaluation of per-snapshot congested-link localization.

Connects the future-work extension (Section 3.3: score feasible
explanations by their probability) back to the paper's main result: the
localizer is only as good as the probabilities it is given, so feeding it
the correlation algorithm's output should beat feeding it the
independence baseline's — the probability estimates are what correlation
awareness actually buys.

:func:`evaluate_localization` simulates fresh snapshots against a
ground-truth model and scores, for each supplied probability vector, the
MAP localizer's per-snapshot detection precision/recall against the true
congested links.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.localization import localize_map
from repro.core.topology import Topology
from repro.model.network import NetworkCongestionModel
from repro.simulate.experiment import ExperimentConfig, run_experiment
from repro.utils.bitset import bit_count

__all__ = ["LocalizationScore", "evaluate_localization"]


@dataclass(frozen=True)
class LocalizationScore:
    """Aggregate detection quality over an evaluation run.

    Attributes:
        precision: Mean per-snapshot precision (inferred links that were
            truly congested).
        recall: Mean per-snapshot recall (truly congested links found).
        f1: Harmonic mean of the two.
        n_snapshots: Snapshots scored.
        mean_noise_paths: Mean number of observed-congested paths that
            had to be trimmed as observation noise per snapshot.
    """

    precision: float
    recall: float
    f1: float
    n_snapshots: int
    mean_noise_paths: float


def evaluate_localization(
    topology: Topology,
    truth_model: NetworkCongestionModel,
    probabilities_by_method: dict[str, np.ndarray],
    *,
    config: ExperimentConfig | None = None,
    max_nodes: int = 50_000,
    seed=None,
) -> dict[str, LocalizationScore]:
    """Score the MAP localizer under several probability sources.

    Args:
        topology: The measurement topology.
        truth_model: Ground truth used both to simulate the evaluation
            snapshots and to score detections.
        probabilities_by_method: ``{label: P(X=1) vector}`` — e.g. the
            correlation algorithm's output, the baseline's, and the true
            marginals as an oracle upper reference.
        config: Simulation parameters for the evaluation window.
        max_nodes: Branch-and-bound budget per snapshot.
        seed: RNG seed for the evaluation window.
    """
    config = config or ExperimentConfig(n_snapshots=100)
    run = run_experiment(topology, truth_model, config=config, seed=seed)
    scores: dict[str, LocalizationScore] = {}
    for label, probabilities in probabilities_by_method.items():
        precision_sum = 0.0
        recall_sum = 0.0
        noise_sum = 0
        counted = 0
        for snapshot in range(run.observations.n_snapshots):
            mask = run.observations.congested_mask_of_snapshot(snapshot)
            true_links = frozenset(
                int(k) for k in np.flatnonzero(run.link_states[snapshot])
            )
            result = localize_map(
                topology,
                mask,
                probabilities,
                max_nodes=max_nodes,
                on_infeasible="trim",
            )
            precision, recall = result.precision_recall(true_links)
            precision_sum += precision
            recall_sum += recall
            noise_sum += bit_count(result.noise_paths)
            counted += 1
        precision = precision_sum / max(counted, 1)
        recall = recall_sum / max(counted, 1)
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall > 0
            else 0.0
        )
        scores[label] = LocalizationScore(
            precision=precision,
            recall=recall,
            f1=f1,
            n_snapshots=counted,
            mean_noise_paths=noise_sum / max(counted, 1),
        )
    return scores
