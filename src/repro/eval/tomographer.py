"""The PlanetLab tomographer (paper Section 5, "Ongoing Work").

The paper closes its evaluation with a plan: build a tomographer that
infers link congestion probabilities between PlanetLab nodes, run it
(i) assuming all links are uncorrelated and (ii) assuming all links in
the same AS are correlated, and compare the two through the *indirect
validation* method of Padmanabhan et al. [13] — since real per-link
ground truth is unobservable, the inferred link probabilities are scored
by how well they *predict path-level behaviour on held-out measurements*.

This module implements that plan end to end on our synthetic substrates:

* :func:`predict_path_congestion` — compose inferred link probabilities
  into per-path congestion probabilities (the independence composition
  used by [13]; for paths crossing correlated links it is an
  approximation, which is precisely the bias indirect validation keeps).
* :func:`indirect_validation` — compare predictions against the observed
  congestion frequencies of a held-out snapshot set.
* :func:`run_tomographer` — the paper's (i)-vs-(ii) comparison: one
  inference with the trivial structure, one with the operator's
  correlation sets, both validated on the same holdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation import CorrelationStructure
from repro.core.correlation_algorithm import (
    AlgorithmOptions,
    infer_congestion,
)
from repro.core.prepared import PreparedRegistry
from repro.core.results import InferenceResult
from repro.core.topology import Topology
from repro.simulate.observations import PathObservations

__all__ = [
    "ValidationReport",
    "TomographerComparison",
    "predict_path_congestion",
    "indirect_validation",
    "run_tomographer",
]


def predict_path_congestion(
    topology: Topology, link_probabilities: np.ndarray
) -> np.ndarray:
    """Predicted ``P(Y_i = 1)`` per path from per-link probabilities.

    Uses the independence composition ``1 − Π_{k∈P_i} (1 − p_k)`` — the
    standard forward model of indirect validation [13].
    """
    probabilities = np.clip(
        np.asarray(link_probabilities, dtype=np.float64), 0.0, 1.0
    )
    log_good = np.log1p(-np.minimum(probabilities, 1.0 - 1e-12))
    predicted = np.empty(topology.n_paths, dtype=np.float64)
    for path in topology.paths:
        predicted[path.id] = 1.0 - np.exp(
            log_good[list(path.link_ids)].sum()
        )
    return predicted


@dataclass(frozen=True)
class ValidationReport:
    """Indirect-validation scores of one inference result.

    Attributes:
        per_path_error: ``|predicted − observed|`` congestion frequency
            per path, over the holdout snapshots.
        mean_error / p90_error: summaries over all paths.
        mean_error_correlation_free: the same mean restricted to paths
            whose links span distinct correlation sets — for those the
            independence composition is exact, so this is the cleaner
            score under correlated ground truth.
        n_paths / n_correlation_free: population sizes.
    """

    per_path_error: np.ndarray
    mean_error: float
    p90_error: float
    mean_error_correlation_free: float
    n_paths: int
    n_correlation_free: int


def indirect_validation(
    topology: Topology,
    link_probabilities: np.ndarray,
    holdout: PathObservations,
    *,
    correlation: CorrelationStructure | None = None,
) -> ValidationReport:
    """Score link probabilities by predicting held-out path behaviour.

    Args:
        topology: The measurement topology.
        link_probabilities: ``P(X_ek = 1)`` per link id (any source).
        holdout: Snapshots *not* used for inference.
        correlation: When given, also reports the error restricted to
            correlation-free paths (where the composition is exact).
    """
    predicted = predict_path_congestion(topology, link_probabilities)
    observed = np.array(
        [
            holdout.congestion_frequency(path.id)
            for path in topology.paths
        ],
        dtype=np.float64,
    )
    errors = np.abs(predicted - observed)
    if correlation is not None:
        free = [
            path.id
            for path in topology.paths
            if correlation.path_is_correlation_free(path.id)
        ]
    else:
        free = list(range(topology.n_paths))
    free_errors = errors[free] if free else np.array([])
    return ValidationReport(
        per_path_error=errors,
        mean_error=float(errors.mean()),
        p90_error=float(np.percentile(errors, 90)),
        mean_error_correlation_free=(
            float(free_errors.mean()) if free_errors.size else 0.0
        ),
        n_paths=topology.n_paths,
        n_correlation_free=len(free),
    )


@dataclass(frozen=True)
class TomographerComparison:
    """The paper's planned (i)-vs-(ii) comparison.

    Attributes:
        uncorrelated: Result + validation of run (i): every link its own
            correlation set.
        correlated: Result + validation of run (ii): the operator's
            correlation sets (same AS / same cluster ⇒ correlated).
    """

    uncorrelated_result: InferenceResult
    correlated_result: InferenceResult
    uncorrelated_validation: ValidationReport
    correlated_validation: ValidationReport
    metadata: dict = field(default_factory=dict)

    @property
    def correlated_wins(self) -> bool:
        """Whether run (ii) predicts held-out behaviour better on the
        correlation-free paths (the unbiased comparison population)."""
        return (
            self.correlated_validation.mean_error_correlation_free
            <= self.uncorrelated_validation.mean_error_correlation_free
        )


def run_tomographer(
    topology: Topology,
    correlation: CorrelationStructure,
    training: PathObservations,
    holdout: PathObservations,
    *,
    options: AlgorithmOptions | None = None,
    registry: PreparedRegistry | None = None,
) -> TomographerComparison:
    """Run both tomographer variants and validate on the holdout.

    Args:
        topology: The measurement topology (traceroute-derived in the
            paper's plan; any instance here).
        correlation: The AS/cluster-based correlation sets of run (ii).
        training: Snapshots used for inference.
        holdout: Snapshots used only for indirect validation.
        options: Algorithm knobs shared by both runs.
        registry: Prepared-state registry shared by both runs; ``None``
            uses the ambient/default registry.
    """
    uncorrelated_result = infer_congestion(
        topology,
        CorrelationStructure.trivial(topology),
        training,
        options=options,
        algorithm_label="tomographer-uncorrelated",
        registry=registry,
    )
    correlated_result = infer_congestion(
        topology,
        correlation,
        training,
        options=options,
        algorithm_label="tomographer-correlated",
        registry=registry,
    )
    uncorrelated_validation = indirect_validation(
        topology,
        uncorrelated_result.congestion_probabilities,
        holdout,
        correlation=correlation,
    )
    correlated_validation = indirect_validation(
        topology,
        correlated_result.congestion_probabilities,
        holdout,
        correlation=correlation,
    )
    return TomographerComparison(
        uncorrelated_result=uncorrelated_result,
        correlated_result=correlated_result,
        uncorrelated_validation=uncorrelated_validation,
        correlated_validation=correlated_validation,
        metadata={
            "n_training_snapshots": training.n_snapshots,
            "n_holdout_snapshots": holdout.n_snapshots,
        },
    )
