"""Evaluation metrics (paper Section 5, "Metrics").

The paper scores algorithms by the absolute error between a link's actual
congestion probability and the inferred one, over the *potentially
congested links* — links that participate in at least one congested path
— and reports three views: the CDF of the absolute error, its 90th
percentile, and its mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.topology import Topology
from repro.simulate.observations import PathObservations

__all__ = [
    "potentially_congested_links",
    "ErrorStats",
    "absolute_error_stats",
    "error_cdf",
    "DEFAULT_CDF_GRID",
]

#: Error levels at which the textual reports sample the CDF curves.
DEFAULT_CDF_GRID = (0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0)


def potentially_congested_links(
    topology: Topology, observations: PathObservations
) -> np.ndarray:
    """Link ids participating in at least one observed congested path."""
    congested_paths = np.flatnonzero(observations.path_states.any(axis=0))
    links: set[int] = set()
    for path_id in congested_paths:
        links.update(topology.paths[int(path_id)].link_ids)
    return np.array(sorted(links), dtype=np.int64)


@dataclass(frozen=True)
class ErrorStats:
    """Summary statistics of per-link absolute errors.

    Attributes:
        mean: Mean absolute error (Figure 3(a)'s y-axis).
        p90: 90th percentile (Figure 3(b)'s y-axis): 90% of the scored
            links have error below this value.
        max: Largest error.
        n_links: Number of scored links.
    """

    mean: float
    p90: float
    max: float
    n_links: int


def absolute_error_stats(errors: np.ndarray) -> ErrorStats:
    """Summarise an error vector (one entry per scored link)."""
    errors = np.asarray(errors, dtype=np.float64)
    if errors.size == 0:
        return ErrorStats(mean=0.0, p90=0.0, max=0.0, n_links=0)
    return ErrorStats(
        mean=float(errors.mean()),
        p90=float(np.percentile(errors, 90)),
        max=float(errors.max()),
        n_links=int(errors.size),
    )


def error_cdf(
    errors: np.ndarray,
    grid=DEFAULT_CDF_GRID,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the absolute error, sampled on ``grid``.

    Returns ``(grid, fractions)`` where ``fractions[i]`` is the fraction
    of links with error ≤ ``grid[i]`` (the paper's y-axis, as a fraction
    rather than percent).  An empty error vector yields all-ones (a
    perfect, vacuous algorithm).
    """
    grid = np.asarray(grid, dtype=np.float64)
    errors = np.asarray(errors, dtype=np.float64)
    if errors.size == 0:
        return grid, np.ones_like(grid)
    # One sort + one searchsorted replaces the per-level comparison
    # loop; count-of-(errors <= level) divided by size is bit-identical
    # to the mean of the boolean mask.
    counts = np.searchsorted(np.sort(errors), grid, side="right")
    return grid, counts / errors.size
