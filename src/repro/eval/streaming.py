"""Detection latency vs probe rate: the streaming-tomography figure.

The new scenario family unlocked by the streaming engine: a scripted
congestion *onset* fires partway through a probe stream, and the question
is how quickly the per-window verdicts catch it.  The probe rate sets the
snapshots collected per unit time; the estimator re-infers once per time
unit (one window), so higher rates mean better-conditioned windows — the
figure plots mean detection latency (in windows since onset) against the
probe rate.

Each ``(probe rate, trial)`` pair is one :class:`ScenarioTask` executed
through the existing :class:`~repro.eval.parallel.TaskExecutor` backends
via the dotted task-runner spec :data:`DETECTION_RUNNER`, so the sweep
parallelises (and caches, journals, distributes) exactly like the batch
figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.core.prepared import PreparedRegistry
from repro.core.streaming import StreamingTomography
from repro.eval.parallel import run_scenario_tasks, scenario_tasks
from repro.eval.scenario import make_clustered_scenario, resolve_per_set_range
from repro.model.loss import LossModel
from repro.simulate.observations import PathObservations
from repro.simulate.probes import PathProber, ProbeConfig
from repro.simulate.stream import LinkStateTimeline, SnapshotStream, StreamEvent
from repro.topogen.instance import TomographyInstance
from repro.utils.rng import clone_generator, spawn_children
from repro.utils.tables import format_table

__all__ = [
    "DETECTION_RUNNER",
    "DetectionPoint",
    "DetectionLatencyResult",
    "run_detection_task",
    "detection_latency_tasks",
    "detection_latency_sweep",
    "render_detection_latency",
]

#: Dotted runner spec for the scenario engine (resolved on workers too).
DETECTION_RUNNER = "repro.eval.streaming:run_detection_task"


def run_detection_task(instance, config, options, task) -> dict:
    """One streaming trial: scripted onset, per-window detection scoring.

    ``factory_kwargs``: ``probe_rate`` (snapshots per window),
    ``n_windows``, ``onset_after`` (quiet windows before the onset),
    ``packets_per_path``, ``congested_fraction`` / ``per_set_range``
    (background scenario), ``n_onset_links``, ``threshold``.

    Returns float64 vectors only (executor-transport requirement):
    the chosen onset link ids, a 0/1 detected flag and the per-link
    latency in windows (NaN when never detected), plus a false-alarm
    count over links outside both the background scenario and the onset
    set.
    """
    kwargs = dict(task.factory_kwargs)
    probe_rate = int(kwargs.pop("probe_rate"))
    n_windows = int(kwargs.pop("n_windows"))
    onset_after = int(kwargs.pop("onset_after"))
    packets = kwargs.pop("packets_per_path")
    packets = None if packets is None else int(packets)
    congested_fraction = float(kwargs.pop("congested_fraction"))
    per_set_range = resolve_per_set_range(kwargs.pop("per_set_range"))
    n_onset_links = int(kwargs.pop("n_onset_links"))
    threshold = float(kwargs.pop("threshold"))
    if kwargs:
        raise ValueError(
            f"unexpected detection task parameters {sorted(kwargs)}"
        )
    if not 0 <= onset_after < n_windows:
        raise ValueError(
            f"onset_after {onset_after} outside 0..{n_windows - 1}"
        )

    scenario = make_clustered_scenario(
        instance,
        congested_fraction=congested_fraction,
        per_set_range=per_set_range,
        seed=clone_generator(task.scenario_seed),
    )
    rng = clone_generator(task.run_seed)

    # Onset targets: quiet links the background scenario never congests,
    # so any detection is attributable to the scripted event.
    quiet = np.array(
        sorted(
            set(range(instance.topology.n_links)) - scenario.congested_links
        ),
        dtype=np.int64,
    )
    if quiet.size < n_onset_links:
        raise ValueError(
            f"scenario leaves only {quiet.size} quiet links; cannot "
            f"script an onset on {n_onset_links}"
        )
    onset_links = np.sort(
        rng.choice(quiet, size=n_onset_links, replace=False)
    )
    onset_snapshot = onset_after * probe_rate
    timeline = LinkStateTimeline(
        [
            StreamEvent(
                kind="onset",
                at=onset_snapshot,
                links=tuple(int(k) for k in onset_links),
            )
        ]
    )
    stream = SnapshotStream(
        scenario.truth_model,
        LossModel(),
        PathProber(
            instance.topology, ProbeConfig(packets_per_path=packets)
        ),
        window_size=probe_rate,
        timeline=timeline,
        rng=rng,
    )
    engine = StreamingTomography(
        instance.topology,
        scenario.algorithm_correlation,
        options=options,
        threshold=threshold,
    )

    background = np.zeros(instance.topology.n_links, dtype=bool)
    background[sorted(scenario.congested_links)] = True
    targets = np.zeros(instance.topology.n_links, dtype=bool)
    targets[onset_links] = True

    latency = np.full(n_onset_links, np.nan, dtype=np.float64)
    false_alarms = 0.0
    observations = None
    for window in stream.windows(n_windows):
        if observations is None:
            observations = PathObservations(window.path_states)
        else:
            observations.append_window(window.path_states)
        verdict = engine.update(observations)
        if window.index >= onset_after:
            undetected = np.isnan(latency)
            hit = verdict.congested[onset_links] & undetected
            latency[hit] = window.index - onset_after + 1
        false_alarms += float(
            (verdict.congested & ~background & ~targets).sum()
        )
    detected = (~np.isnan(latency)).astype(np.float64)
    return {
        "probe_rate": np.array([float(probe_rate)]),
        "onset_links": onset_links.astype(np.float64),
        "detected": detected,
        "latency_windows": latency,
        "false_alarm_link_windows": np.array([false_alarms]),
    }


def detection_latency_tasks(
    probe_rates,
    *,
    n_windows: int,
    onset_after: int,
    packets_per_path,
    congested_fraction: float,
    per_set_range,
    n_onset_links: int,
    threshold: float,
    n_trials: int,
    seed,
) -> list:
    """The sweep's task list: one group per probe rate."""
    sweep_rngs = spawn_children(seed, len(probe_rates))
    tasks = []
    for group, (rate, rng) in enumerate(zip(probe_rates, sweep_rngs)):
        tasks.extend(
            scenario_tasks(
                DETECTION_RUNNER,
                dict(
                    probe_rate=int(rate),
                    n_windows=n_windows,
                    onset_after=onset_after,
                    packets_per_path=packets_per_path,
                    congested_fraction=congested_fraction,
                    per_set_range=per_set_range,
                    n_onset_links=n_onset_links,
                    threshold=threshold,
                ),
                n_trials=n_trials,
                seed=rng,
                group=group,
            )
        )
    return tasks


@dataclass(frozen=True)
class DetectionPoint:
    """One probe rate's pooled detection statistics.

    Attributes:
        probe_rate: Snapshots per window at this x-axis point.
        detection_fraction: Fraction of (trial, onset link) pairs ever
            detected within the stream.
        mean_latency: Mean windows-to-detect over the detected pairs
            (NaN when nothing was detected).
        p90_latency: 90th-percentile windows-to-detect.
        false_alarm_rate: Mean false-alarm link-windows per window.
    """

    probe_rate: int
    detection_fraction: float
    mean_latency: float
    p90_latency: float
    false_alarm_rate: float


@dataclass(frozen=True)
class DetectionLatencyResult:
    """The detection-latency-vs-probe-rate series plus metadata."""

    points: tuple[DetectionPoint, ...]
    metadata: dict


def detection_latency_sweep(
    instance: TomographyInstance,
    *,
    probe_rates=(10, 20, 40, 80),
    n_windows: int = 12,
    onset_after: int = 4,
    packets_per_path=800,
    congested_fraction: float = 0.05,
    per_set_range="high",
    n_onset_links: int = 2,
    threshold: float = 0.5,
    n_trials: int = 3,
    options: AlgorithmOptions | None = None,
    seed=0,
    workers: int | None = None,
    cache=None,
    executor=None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> DetectionLatencyResult:
    """The streaming figure: detection latency vs probe rate.

    Every ``(rate, trial)`` pair is one task; backends, caching, and
    journaling compose exactly as for the batch figures.
    """
    tasks = detection_latency_tasks(
        probe_rates,
        n_windows=n_windows,
        onset_after=onset_after,
        packets_per_path=packets_per_path,
        congested_fraction=congested_fraction,
        per_set_range=per_set_range,
        n_onset_links=n_onset_links,
        threshold=threshold,
        n_trials=n_trials,
        seed=seed,
    )
    results = run_scenario_tasks(
        instance,
        tasks,
        options=options,
        workers=workers,
        cache=cache,
        executor=executor,
        journal=journal,
        registry=registry,
    )
    points = []
    for group, rate in enumerate(probe_rates):
        latencies, detected, alarms = [], [], []
        for task, result in zip(tasks, results):
            if task.group != group:
                continue
            latencies.append(result["latency_windows"])
            detected.append(result["detected"])
            alarms.append(
                float(result["false_alarm_link_windows"][0]) / n_windows
            )
        latency = np.concatenate(latencies)
        hit = np.concatenate(detected) > 0
        detected_latency = latency[hit]
        points.append(
            DetectionPoint(
                probe_rate=int(rate),
                detection_fraction=float(hit.mean()),
                mean_latency=(
                    float(detected_latency.mean()) if hit.any() else float("nan")
                ),
                p90_latency=(
                    float(np.percentile(detected_latency, 90))
                    if hit.any()
                    else float("nan")
                ),
                false_alarm_rate=float(np.mean(alarms)),
            )
        )
    return DetectionLatencyResult(
        points=tuple(points),
        metadata={
            "n_windows": n_windows,
            "onset_after": onset_after,
            "n_trials": n_trials,
            "n_onset_links": n_onset_links,
            "threshold": threshold,
            "congested_fraction": congested_fraction,
            "packets_per_path": packets_per_path,
            "n_links": instance.n_links,
            "n_paths": instance.n_paths,
        },
    )


def render_detection_latency(
    result: DetectionLatencyResult, *, title: str = ""
) -> str:
    """Render the detection-latency series as an aligned table."""
    rows = [
        [
            point.probe_rate,
            point.detection_fraction,
            point.mean_latency,
            point.p90_latency,
            point.false_alarm_rate,
        ]
        for point in result.points
    ]
    return format_table(
        [
            "probe rate",
            "detected",
            "mean latency",
            "p90 latency",
            "false alarms/win",
        ],
        rows,
        title=title
        or "Streaming figure: detection latency (windows) vs probe rate",
    )
