"""Risk vs shift magnitude: the what-if figure.

How does predicted congestion risk grow as a demand shift scales up?
Each ``(scale, trial)`` pair is one :class:`ScenarioTask` executed
through the existing :class:`~repro.eval.parallel.TaskExecutor`
backends via the dotted runner spec
:data:`repro.predict.tasks.WHATIF_RUNNER` — the same runner the
``predict`` CLI command and the service ``/whatif`` endpoint execute —
so the sweep parallelises (and caches, journals, distributes) exactly
like the batch figures.  The figure plots, per scale: how many links
cross the risk threshold, and the maximum / mean combined risk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.core.prepared import PreparedRegistry
from repro.eval.parallel import run_scenario_tasks, scenario_tasks
from repro.predict.demand import DemandMatrix
from repro.predict.tasks import WHATIF_RUNNER
from repro.topogen.instance import TomographyInstance
from repro.utils.rng import spawn_children
from repro.utils.tables import format_table

__all__ = [
    "RiskShiftPoint",
    "RiskShiftResult",
    "risk_shift_tasks",
    "risk_shift_sweep",
    "render_risk_shift",
]


def risk_shift_tasks(
    scales,
    *,
    demand: dict,
    utilization_threshold: float,
    exact_max_flows: int,
    mc_samples: int,
    congested_fraction: float,
    per_set_range,
    n_snapshots: int,
    packets_per_path,
    n_trials: int,
    seed,
) -> list:
    """The sweep's task list: one group per shift scale.

    Every task carries a single uniform shift (``scale-<x>``) so the
    runner's ``shift0_*`` vectors are that scale's forecast.
    """
    sweep_rngs = spawn_children(seed, len(scales))
    tasks = []
    for group, (scale, rng) in enumerate(zip(scales, sweep_rngs)):
        tasks.extend(
            scenario_tasks(
                WHATIF_RUNNER,
                dict(
                    demand=demand,
                    shifts=[
                        {"name": f"scale-{float(scale):g}", "scale": float(scale)}
                    ],
                    utilization_threshold=utilization_threshold,
                    exact_max_flows=exact_max_flows,
                    mc_samples=mc_samples,
                    congested_fraction=congested_fraction,
                    per_set_range=per_set_range,
                    n_snapshots=n_snapshots,
                    packets_per_path=packets_per_path,
                ),
                n_trials=n_trials,
                seed=rng,
                group=group,
            )
        )
    return tasks


@dataclass(frozen=True)
class RiskShiftPoint:
    """One scale's pooled risk statistics.

    Attributes:
        scale: The uniform demand multiplier at this x-axis point.
        links_at_risk: Mean number of links whose combined risk crosses
            ``risk_threshold``.
        max_risk: Mean (over trials) of the maximum combined risk.
        mean_risk: Mean combined risk over all links and trials.
        mean_predicted: Mean predicted-only (demand) risk, isolating
            the shift's contribution from the inferred current state.
    """

    scale: float
    links_at_risk: float
    max_risk: float
    mean_risk: float
    mean_predicted: float


@dataclass(frozen=True)
class RiskShiftResult:
    """The risk-vs-shift-magnitude series plus metadata."""

    points: tuple[RiskShiftPoint, ...]
    metadata: dict


def risk_shift_sweep(
    instance: TomographyInstance,
    demand,
    *,
    scales=(1.0, 1.25, 1.5, 2.0),
    risk_threshold: float = 0.5,
    utilization_threshold: float = 0.85,
    exact_max_flows: int = 16,
    mc_samples: int = 20_000,
    congested_fraction: float = 0.10,
    per_set_range="high",
    n_snapshots: int = 120,
    packets_per_path=400,
    n_trials: int = 3,
    options: AlgorithmOptions | None = None,
    seed=0,
    workers: int | None = None,
    cache=None,
    executor=None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> RiskShiftResult:
    """The what-if figure: combined congestion risk vs shift magnitude.

    ``demand`` is a :class:`~repro.predict.demand.DemandMatrix` or its
    payload dict; its own named shifts are ignored — the sweep imposes
    one uniform ``scale-<x>`` shift per x-axis point.  Every
    ``(scale, trial)`` pair is one task; backends, caching, and
    journaling compose exactly as for the batch figures.
    """
    if isinstance(demand, DemandMatrix):
        demand = demand.to_payload()
    demand = dict(demand)
    demand.pop("shifts", None)
    # Resolve early so binding errors surface here, not inside workers.
    DemandMatrix.from_payload(demand).resolve(instance.topology)
    tasks = risk_shift_tasks(
        scales,
        demand=demand,
        utilization_threshold=utilization_threshold,
        exact_max_flows=exact_max_flows,
        mc_samples=mc_samples,
        congested_fraction=congested_fraction,
        per_set_range=per_set_range,
        n_snapshots=n_snapshots,
        packets_per_path=packets_per_path,
        n_trials=n_trials,
        seed=seed,
    )
    results = run_scenario_tasks(
        instance,
        tasks,
        options=options,
        workers=workers,
        cache=cache,
        executor=executor,
        journal=journal,
        registry=registry,
    )
    points = []
    for group, scale in enumerate(scales):
        at_risk, max_risk, mean_risk, mean_predicted = [], [], [], []
        for task, result in zip(tasks, results):
            if task.group != group:
                continue
            combined = result["shift0_combined"]
            at_risk.append(float((combined > risk_threshold).sum()))
            max_risk.append(float(combined.max()))
            mean_risk.append(float(combined.mean()))
            mean_predicted.append(float(result["shift0_predicted"].mean()))
        points.append(
            RiskShiftPoint(
                scale=float(scale),
                links_at_risk=float(np.mean(at_risk)),
                max_risk=float(np.mean(max_risk)),
                mean_risk=float(np.mean(mean_risk)),
                mean_predicted=float(np.mean(mean_predicted)),
            )
        )
    return RiskShiftResult(
        points=tuple(points),
        metadata={
            "risk_threshold": risk_threshold,
            "utilization_threshold": utilization_threshold,
            "exact_max_flows": exact_max_flows,
            "mc_samples": mc_samples,
            "n_trials": n_trials,
            "n_snapshots": n_snapshots,
            "packets_per_path": packets_per_path,
            "congested_fraction": congested_fraction,
            "n_links": instance.n_links,
            "n_paths": instance.n_paths,
            "n_flows": len(demand.get("flows", [])),
        },
    )


def render_risk_shift(result: RiskShiftResult, *, title: str = "") -> str:
    """Render the risk-vs-shift series as an aligned table."""
    rows = [
        [
            f"{point.scale:g}",
            f"{point.links_at_risk:.1f}",
            f"{point.max_risk:.4f}",
            f"{point.mean_risk:.4f}",
            f"{point.mean_predicted:.4f}",
        ]
        for point in result.points
    ]
    return format_table(
        [
            "shift scale",
            "links at risk",
            "max risk",
            "mean risk",
            "mean shift risk",
        ],
        rows,
        title=title
        or (
            "What-if figure: combined congestion risk vs demand shift "
            f"magnitude (risk > {result.metadata['risk_threshold']:g})"
        ),
    )
