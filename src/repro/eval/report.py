"""Textual rendering of figure series — what the benchmarks print."""

from __future__ import annotations

from repro.eval.figures import CdfResult, SweepResult
from repro.utils.tables import format_table

__all__ = ["render_sweep", "render_cdf"]


def render_sweep(result: SweepResult, *, title: str = "") -> str:
    """Render the Figure 3(a,b) series as an aligned table."""
    rows = []
    for point in result.points:
        rows.append(
            [
                f"{point.congested_fraction:.0%}",
                point.correlation.mean,
                point.independence.mean,
                point.correlation.p90,
                point.independence.p90,
                point.correlation.n_links,
            ]
        )
    return format_table(
        [
            "congested",
            "mean[corr]",
            "mean[indep]",
            "p90[corr]",
            "p90[indep]",
            "links",
        ],
        rows,
        title=title or "Figure 3(a,b): absolute error vs congested fraction",
    )


def render_cdf(result: CdfResult, *, title: str = "") -> str:
    """Render a CDF panel as an aligned table (fractions, not percent)."""
    names = sorted(result.curves)
    headers = ["error<="] + [f"cdf[{name}]" for name in names]
    rows = []
    for index, level in enumerate(result.grid):
        rows.append(
            [f"{float(level):.2f}"]
            + [float(result.curves[name][index]) for name in names]
        )
    return format_table(
        headers, rows, title=title or f"CDF panel {result.label}"
    )
