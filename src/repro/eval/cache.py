"""Persistent, content-addressed trial-result cache.

The paper's figures are bags of independent simulate→infer→score trials,
and a trial's result is fully determined by its inputs: the instance,
the scenario factory and its kwargs, the pristine scenario/run generator
states, the simulation config, and the algorithm options.  This module
memoises that function on disk so repeated figure regenerations and
overlapping sweeps skip every trial they have already paid for.

Key derivation
    ``sha256(canonical_json(payload))`` where the payload combines

    * the instance fingerprint (:func:`repro.io.instance_fingerprint`);
    * the scenario factory *name* and kwargs;
    * the pristine seed states of both task generators — bit-generator
      state plus the seed-sequence identity (entropy, spawn key,
      children counter), because :func:`repro.eval.runner.run_comparison`
      spawns children from the run seed;
    * the full :class:`ExperimentConfig` and :class:`AlgorithmOptions`
      (``None`` canonicalises to the dataclass defaults, matching what
      the trial actually runs with);
    * a code-version salt (:data:`CODE_SALT`) — bump it whenever the
      simulate→infer→score semantics change so stale entries can never
      resurface;
    * the on-disk format version (:data:`CACHE_VERSION`).

    A task's ``group`` is pooling metadata, not trial input, and is
    deliberately excluded: the same trial reached through different
    sweeps shares one entry.

On-disk layout
    ``<root>/<key[:2]>/<key>.npz`` — two-hex-char shards keep directory
    listings sane at millions of entries.  Each ``.npz`` stores the
    per-algorithm error vectors as ``arr_0..arr_{n-1}`` plus a ``names``
    string array, i.e. *exactly* what the worker returned, so cached and
    recomputed runs are bit-identical.

Atomicity
    Writes go to a ``tempfile`` in the destination shard and are
    published with :func:`os.replace`, so concurrent sweeps sharing one
    store never observe torn entries; the last writer of identical
    content wins harmlessly.  Unreadable entries (however produced) are
    treated as misses and overwritten.  A run killed between ``mkstemp``
    and ``os.replace`` strands its ``*.tmp`` file; opening a cache
    opportunistically sweeps tmp files older than
    :data:`PRUNE_TMP_MAX_AGE` (see :meth:`TrialCache.prune_tmp`), so
    long-lived shared stores do not accrete orphans.

CLI integration (see :mod:`repro.cli`)
    ``--cache-dir PATH`` points a figure command at a store (the
    ``REPRO_CACHE_DIR`` environment variable supplies a default),
    ``--no-cache`` forces caching off even when the variable is set, and
    ``--cache-stats`` prints the hit/miss/store line after the run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
import tempfile
import time
import zipfile

import numpy as np

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.io import canonical_json, instance_fingerprint
from repro.simulate.experiment import ExperimentConfig
from repro.utils.rng import as_generator

__all__ = [
    "CACHE_VERSION",
    "CODE_SALT",
    "PRUNE_TMP_MAX_AGE",
    "CacheStats",
    "TrialCache",
    "seed_fingerprint",
    "trial_key",
    "resolve_cache_dir",
]

#: On-disk format version; stored entries from other versions never match.
CACHE_VERSION = 1

#: Code-version salt.  Bump whenever the simulate→infer→score pipeline
#: changes what a trial returns for the same inputs.
CODE_SALT = "trial-v1"

#: Age (seconds) past which an orphaned ``*.tmp`` write file is garbage:
#: no healthy writer keeps one open for an hour, so anything older was
#: left behind by a killed run.
PRUNE_TMP_MAX_AGE = 3600.0


def seed_fingerprint(seed) -> dict | None:
    """JSON-ready fingerprint of a seed-like value's *pristine* state.

    Captures both the bit-generator state (draw behaviour) and the seed
    sequence identity (spawn behaviour): two generators drawing the same
    stream but spawning different children must not share a key.
    ``None`` stays ``None`` — such tasks are irreproducible and callers
    should not cache them.
    """
    if seed is None:
        return None
    generator = as_generator(seed)
    bit_generator = generator.bit_generator
    fingerprint = {
        "bit_generator": type(bit_generator).__name__,
        "state": bit_generator.state,
    }
    seed_seq = getattr(bit_generator, "seed_seq", None)
    if seed_seq is not None:
        fingerprint["seed_seq"] = {
            "entropy": seed_seq.entropy,
            "spawn_key": list(seed_seq.spawn_key),
            "pool_size": seed_seq.pool_size,
            "n_children_spawned": seed_seq.n_children_spawned,
        }
    return fingerprint


def trial_key(
    instance_fp: str,
    task,
    *,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
) -> str:
    """Content hash addressing one trial's result.

    ``task`` is a :class:`repro.eval.parallel.ScenarioTask` (duck-typed:
    anything with ``factory``, ``factory_kwargs``, ``scenario_seed`` and
    ``run_seed`` works).  ``config``/``options`` canonicalise to their
    dataclass defaults, matching the execution path.
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "salt": CODE_SALT,
        "instance": instance_fp,
        "factory": task.factory,
        "factory_kwargs": task.factory_kwargs,
        "scenario_seed": seed_fingerprint(task.scenario_seed),
        "run_seed": seed_fingerprint(task.run_seed),
        "config": dataclasses.asdict(config or ExperimentConfig()),
        "options": dataclasses.asdict(options or AlgorithmOptions()),
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`TrialCache` handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits as a fraction of lookups (0.0 when nothing was looked up)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def render(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({100.0 * self.hit_rate:.1f}% hits), "
            f"{self.stores} stored"
        )


class TrialCache:
    """Directory-backed store mapping trial keys → error-vector dicts.

    One handle tracks its own :class:`CacheStats`; several handles (or
    several processes) may point at the same directory concurrently —
    write-back is atomic and reads treat unreadable entries as misses.
    """

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        # Opportunistic hygiene: a run killed between ``mkstemp`` and
        # ``os.replace`` leaks its ``*.tmp`` file forever; sweeping
        # stale ones on open keeps long-lived shared stores clean
        # without a separate maintenance job.  Recent tmp files are
        # in-flight writes from concurrent sweeps and are left alone.
        # The sweep globs every shard, so it is rate-limited by a
        # marker file: at most one full sweep per ``PRUNE_TMP_MAX_AGE``
        # across *all* handles sharing the store (worker sessions,
        # figure commands, benchmarks), which keeps opens cheap on
        # large stores over slow filesystems.
        self._maybe_prune_tmp()

    # -- keying --------------------------------------------------------
    def task_key(
        self,
        instance_fp: str,
        task,
        *,
        config: ExperimentConfig | None = None,
        options: AlgorithmOptions | None = None,
    ) -> str:
        return trial_key(
            instance_fp, task, config=config, options=options
        )

    # -- storage -------------------------------------------------------
    def _entry_path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.npz"

    def get(self, key: str) -> dict[str, np.ndarray] | None:
        """Load one entry; ``None`` (a miss) if absent or unreadable."""
        path = self._entry_path(key)
        try:
            with np.load(path) as archive:
                names = [str(name) for name in archive["names"]]
                errors = {
                    name: archive[f"arr_{index}"]
                    for index, name in enumerate(names)
                }
        except (
            OSError,
            KeyError,
            ValueError,
            EOFError,
            zipfile.BadZipFile,
        ):
            # Missing entry, foreign/zero-byte file, or truncated
            # archive: a miss (np.load raises BadZipFile/EOFError for
            # the latter two, not OSError).
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return errors

    def put(self, key: str, errors: dict[str, np.ndarray]) -> None:
        """Atomically write one entry (publish via ``os.replace``)."""
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        names = list(errors)
        arrays = {
            f"arr_{index}": np.asarray(errors[name])
            for index, name in enumerate(names)
        }
        descriptor, tmp_name = tempfile.mkstemp(
            dir=path.parent, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                np.savez(handle, names=np.array(names, dtype=str), **arrays)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- maintenance ---------------------------------------------------
    def _maybe_prune_tmp(self) -> None:
        """Run :meth:`prune_tmp` unless another handle recently did.

        The ``.last-prune`` marker's mtime records the last sweep.  A
        herd of concurrent opens observing a stale (or missing) marker
        elects exactly one pruner through an atomic ``O_EXCL`` create
        of a ``.last-prune.claim`` file — a stat-then-touch sequence
        here would let several openers see the stale marker and all run
        the sweep.  The winner republishes a fresh marker *before*
        sweeping (so late openers skip on mtime alone) and removes the
        claim afterwards; a claim stranded by a killed pruner ages out
        after :data:`PRUNE_TMP_MAX_AGE` so pruning can resume.  Marker
        I/O failures (read-only store) skip the sweep — pruning is
        best-effort hygiene.
        """
        marker = self.root / ".last-prune"
        claim = self.root / ".last-prune.claim"
        now = time.time()
        try:
            if now - marker.stat().st_mtime < PRUNE_TMP_MAX_AGE:
                return
        except FileNotFoundError:
            pass  # first open of this store: fall through to the claim
        except OSError:
            return
        try:
            descriptor = os.open(
                claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            # Another handle is pruning right now — unless it was
            # killed mid-sweep and stranded its claim; age that out so
            # a later open can re-elect.  Recovery is best-effort: the
            # unlink re-checks the claim's identity so it only reaps
            # the hour-old file it statted, not a fresh claim that
            # replaced it in between (and if that sliver of a race is
            # ever lost, the worst case is a second sweep — prune_tmp
            # is explicitly race-tolerant).
            try:
                first = claim.stat()
                if now - first.st_mtime >= PRUNE_TMP_MAX_AGE:
                    second = claim.stat()
                    if (second.st_ino, second.st_mtime_ns) == (
                        first.st_ino,
                        first.st_mtime_ns,
                    ):
                        os.unlink(claim)
            except OSError:
                pass
            return
        except OSError:
            return
        os.close(descriptor)
        try:
            # Re-check under the claim: a slow opener can win the
            # O_EXCL *after* an earlier claimant already swept and
            # refreshed the marker — the fresh mtime tells it so.
            try:
                if (
                    time.time() - marker.stat().st_mtime
                    < PRUNE_TMP_MAX_AGE
                ):
                    return
            except OSError:
                pass
            try:
                marker.touch()  # publishes a current mtime
            except OSError:
                # Cannot republish the marker (e.g. it belongs to
                # another user on a shared store): skip the sweep
                # rather than fail the open — hygiene is best-effort.
                return
            self.prune_tmp()
        finally:
            try:
                os.unlink(claim)
            except OSError:
                pass

    def prune_tmp(self, max_age: float = PRUNE_TMP_MAX_AGE) -> int:
        """Delete orphaned ``*.tmp`` files older than ``max_age`` seconds.

        Killed runs (and dead remote workers) can die between
        ``mkstemp`` and ``os.replace``, stranding tmp files in the
        shards.  Anything older than ``max_age`` is removed; younger
        files are presumed to be in-flight writes from concurrent
        sweeps.  Races are benign — a file vanishing mid-sweep (its
        writer published or another pruner won) is simply skipped.
        Returns the number of files removed.
        """
        cutoff = time.time() - max_age
        removed = 0
        for tmp_path in self.root.glob("*/*.tmp"):
            try:
                if tmp_path.stat().st_mtime <= cutoff:
                    os.unlink(tmp_path)
                    removed += 1
            except OSError:
                continue
        return removed

    # -- reporting -----------------------------------------------------
    def stats_line(self) -> str:
        return f"cache: {self.stats.render()} — {self.root}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrialCache({str(self.root)!r}, {self.stats.render()})"


def resolve_cache_dir(
    explicit=None, *, disabled: bool = False
) -> pathlib.Path | None:
    """Pick the cache directory for a CLI/benchmark invocation.

    Precedence: ``disabled`` (``--no-cache``) wins outright; then an
    explicit ``--cache-dir``; then the ``REPRO_CACHE_DIR`` environment
    variable; otherwise caching is off (``None``).
    """
    if disabled:
        return None
    if explicit:
        return pathlib.Path(explicit)
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return pathlib.Path(env)
    return None
