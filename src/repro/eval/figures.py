"""Per-figure experiment drivers (paper Section 5, Figures 3–5).

Each driver regenerates the data series behind one paper figure:

* :func:`figure3_sweep` — mean and 90th-percentile absolute error versus
  the fraction of congested links (Figures 3(a) and 3(b));
* :func:`figure3_cdf` — error CDF at a fixed congestion level, under
  high or loose correlation (Figures 3(c) and 3(d));
* :func:`figure4_cdf` — error CDF with 25%/50% of the congested links
  unidentifiable, on Brite or PlanetLab instances (Figure 4);
* :func:`figure5_cdf` — error CDF with 25%/50% of the congested links
  mislabeled by an unknown correlation pattern (Figure 5).

``scale="small"`` (default) runs laptop-size instances in seconds;
``scale="medium"`` and ``scale="paper"`` approach the paper's 1500-path
setups.  The *shape* of the results — the correlation algorithm beating
the independence algorithm, errors growing with congestion for the
baseline only — is preserved across scales; see EXPERIMENTS.md.

Every driver accepts ``workers``: trials (and, for the sweep, whole
x-axis points) fan out through the scenario engine in
:mod:`repro.eval.parallel`.  Child seeds are spawned before dispatch, so
any worker count reproduces the serial results exactly.  ``executor``
overrides the backend outright — pass a
:class:`repro.eval.dist.RemoteExecutor` to fan the same task list out
across hosts, still bit-identical to the serial run.

Every driver also accepts ``cache`` (a
:class:`repro.eval.cache.TrialCache`): trials whose inputs are already
stored load from disk instead of executing, making repeated figure
regenerations and overlapping sweeps incremental.  Cached and
recomputed runs are bit-identical at a fixed seed.

``registry`` (a :class:`repro.core.prepared.PreparedRegistry`) scopes
where the measurement-independent equation prep is cached for
in-process execution — resident callers (the service layer) pass their
own registry so batch sweeps and service queries share warmed prep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.core.prepared import PreparedRegistry
from repro.eval.metrics import (
    DEFAULT_CDF_GRID,
    ErrorStats,
    absolute_error_stats,
    error_cdf,
)
from repro.eval.parallel import (
    pool_errors,
    run_scenario_tasks,
    scenario_tasks,
)
from repro.eval.scenario import (
    HIGH_CORRELATION_RANGE,
    LOOSE_CORRELATION_RANGE,
)
from repro.simulate.experiment import ExperimentConfig
from repro.topogen.brite import generate_brite
from repro.topogen.instance import TomographyInstance
from repro.topogen.planetlab import generate_planetlab
from repro.utils.rng import spawn_children

__all__ = [
    "SCALES",
    "default_instance",
    "default_config",
    "SweepPoint",
    "SweepResult",
    "CdfResult",
    "figure3_sweep",
    "figure3_sweep_tasks",
    "figure3_cdf",
    "figure4_cdf",
    "figure5_cdf",
]

#: Instance/simulation sizes.  "paper" matches the reported 1500 paths
#: (Brite) and ~2000 links / 1500 paths (PlanetLab).
SCALES: dict[str, dict] = {
    "small": {
        "brite": dict(n_ases=150, routers_per_as=5, n_paths=400),
        "planetlab": dict(n_routers=200, n_vantages=50, n_paths=600),
        "n_snapshots": 1200,
        "packets_per_path": 800,
    },
    "medium": {
        "brite": dict(n_ases=250, routers_per_as=6, n_paths=800),
        "planetlab": dict(n_routers=400, n_vantages=60, n_paths=1000),
        "n_snapshots": 2000,
        "packets_per_path": 1000,
    },
    "paper": {
        "brite": dict(n_ases=500, routers_per_as=8, n_paths=1500),
        "planetlab": dict(n_routers=900, n_vantages=80, n_paths=1500),
        "n_snapshots": 2000,
        "packets_per_path": 1000,
    },
}


def default_instance(
    topology: str = "brite",
    *,
    scale: str = "small",
    seed=0,
) -> TomographyInstance:
    """Generate the standard evaluation instance for a figure."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; pick from {sorted(SCALES)}")
    params = SCALES[scale]
    if topology == "brite":
        return generate_brite(seed=seed, **params["brite"]).instance
    if topology == "planetlab":
        return generate_planetlab(seed=seed, **params["planetlab"])
    raise ValueError(
        f"topology must be 'brite' or 'planetlab', got {topology!r}"
    )


def default_config(scale: str = "small") -> ExperimentConfig:
    """Simulation parameters matching a scale preset."""
    params = SCALES[scale]
    return ExperimentConfig(
        n_snapshots=params["n_snapshots"],
        packets_per_path=params["packets_per_path"],
    )


# ----------------------------------------------------------------------
# Result containers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One x-axis point of Figures 3(a,b)."""

    congested_fraction: float
    correlation: ErrorStats
    independence: ErrorStats


@dataclass(frozen=True)
class SweepResult:
    """The Figure 3(a,b) series."""

    points: tuple[SweepPoint, ...]
    metadata: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CdfResult:
    """One CDF panel (Figures 3(c,d), 4(a–d), 5(a–d))."""

    label: str
    grid: np.ndarray
    curves: dict[str, np.ndarray]
    metadata: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _pooled_errors(
    instance: TomographyInstance,
    factory: str,
    factory_kwargs: dict,
    *,
    config: ExperimentConfig,
    options: AlgorithmOptions | None,
    n_trials: int,
    seed,
    workers: int | None = None,
    cache=None,
    executor=None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> dict[str, np.ndarray]:
    """Run ``n_trials`` experiments, pooling per-link errors."""
    tasks = scenario_tasks(
        factory, factory_kwargs, n_trials=n_trials, seed=seed
    )
    results = run_scenario_tasks(
        instance,
        tasks,
        config=config,
        options=options,
        workers=workers,
        cache=cache,
        executor=executor,
        journal=journal,
        registry=registry,
    )
    return pool_errors(tasks, results, 1)[0]


def _cdf_curves(
    errors: dict[str, np.ndarray], grid: np.ndarray
) -> dict[str, np.ndarray]:
    """Per-algorithm CDF values on the grid, vectorised.

    Delegates to :func:`repro.eval.metrics.error_cdf` (sort +
    ``searchsorted``), avoiding the ``grid × errors`` broadcast
    temporary of the historical form while producing identical values.
    """
    return {name: error_cdf(e, grid)[1] for name, e in errors.items()}


def figure3_sweep_tasks(
    fractions,
    per_set_range,
    n_trials: int,
    seed,
) -> list:
    """The figure-3 sweep's task list: one group per congested fraction.

    Shared by :func:`figure3_sweep` and the benchmarks that must replay
    the *exact* same workload (spawn layout, kwargs, grouping) through
    alternative execution paths.
    """
    sweep_rngs = spawn_children(seed, len(fractions))
    tasks = []
    for group, (fraction, rng) in enumerate(zip(fractions, sweep_rngs)):
        tasks.extend(
            scenario_tasks(
                "clustered",
                dict(
                    congested_fraction=fraction,
                    per_set_range=per_set_range,
                ),
                n_trials=n_trials,
                seed=rng,
                group=group,
            )
        )
    return tasks


def figure3_sweep(
    instance: TomographyInstance | None = None,
    *,
    fractions=(0.05, 0.10, 0.15, 0.20, 0.25),
    per_set_range=HIGH_CORRELATION_RANGE,
    scale: str = "small",
    n_trials: int = 1,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
    seed=0,
    workers: int | None = None,
    cache=None,
    executor=None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> SweepResult:
    """Figures 3(a) and 3(b): error statistics vs congested fraction.

    The whole sweep — every ``(fraction, trial)`` pair — is flattened
    into one task list before dispatch, so parallelism spans x-axis
    points as well as trials.  ``journal`` (a
    :class:`repro.eval.dist.journal.SweepJournal`) makes settled chunks
    crash-durable and resumable.
    """
    instance = instance or default_instance("brite", scale=scale, seed=seed)
    config = config or default_config(scale)
    tasks = figure3_sweep_tasks(fractions, per_set_range, n_trials, seed)
    results = run_scenario_tasks(
        instance,
        tasks,
        config=config,
        options=options,
        workers=workers,
        cache=cache,
        executor=executor,
        journal=journal,
        registry=registry,
    )
    pooled = pool_errors(tasks, results, len(fractions))
    points = [
        SweepPoint(
            congested_fraction=fraction,
            correlation=absolute_error_stats(errors["correlation"]),
            independence=absolute_error_stats(errors["independence"]),
        )
        for fraction, errors in zip(fractions, pooled)
    ]
    return SweepResult(
        points=tuple(points),
        metadata={
            "per_set_range": per_set_range,
            "scale": scale,
            "n_trials": n_trials,
            "n_links": instance.n_links,
            "n_paths": instance.n_paths,
        },
    )


def figure3_cdf(
    instance: TomographyInstance | None = None,
    *,
    correlation_level: str = "high",
    congested_fraction: float = 0.10,
    scale: str = "small",
    n_trials: int = 1,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
    grid=DEFAULT_CDF_GRID,
    seed=0,
    workers: int | None = None,
    cache=None,
    executor=None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> CdfResult:
    """Figure 3(c) (``correlation_level="high"``) / 3(d) (``"loose"``)."""
    if correlation_level == "high":
        per_set_range = HIGH_CORRELATION_RANGE
    elif correlation_level == "loose":
        per_set_range = LOOSE_CORRELATION_RANGE
    else:
        raise ValueError(
            f"correlation_level must be 'high' or 'loose', got "
            f"{correlation_level!r}"
        )
    instance = instance or default_instance("brite", scale=scale, seed=seed)
    config = config or default_config(scale)
    errors = _pooled_errors(
        instance,
        "clustered",
        dict(
            congested_fraction=congested_fraction,
            per_set_range=per_set_range,
        ),
        config=config,
        options=options,
        n_trials=n_trials,
        seed=seed,
        workers=workers,
        cache=cache,
        executor=executor,
        journal=journal,
        registry=registry,
    )
    grid = np.asarray(grid, dtype=np.float64)
    curves = _cdf_curves(errors, grid)
    return CdfResult(
        label=f"fig3-{correlation_level}",
        grid=grid,
        curves=curves,
        metadata={
            "correlation_level": correlation_level,
            "congested_fraction": congested_fraction,
            "scale": scale,
            "n_trials": n_trials,
            "n_scored": {k: int(v.size) for k, v in errors.items()},
        },
    )


def figure4_cdf(
    instance: TomographyInstance | None = None,
    *,
    topology: str = "brite",
    unidentifiable_fraction: float = 0.25,
    congested_fraction: float = 0.10,
    scale: str = "small",
    n_trials: int = 1,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
    grid=DEFAULT_CDF_GRID,
    seed=0,
    workers: int | None = None,
    cache=None,
    executor=None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> CdfResult:
    """Figure 4: CDFs with a fraction of congested links unidentifiable."""
    instance = instance or default_instance(topology, scale=scale, seed=seed)
    config = config or default_config(scale)
    errors = _pooled_errors(
        instance,
        "unidentifiable",
        dict(
            congested_fraction=congested_fraction,
            unidentifiable_fraction=unidentifiable_fraction,
        ),
        config=config,
        options=options,
        n_trials=n_trials,
        seed=seed,
        workers=workers,
        cache=cache,
        executor=executor,
        journal=journal,
        registry=registry,
    )
    grid = np.asarray(grid, dtype=np.float64)
    curves = _cdf_curves(errors, grid)
    return CdfResult(
        label=f"fig4-{topology}-{unidentifiable_fraction:.0%}",
        grid=grid,
        curves=curves,
        metadata={
            "topology": topology,
            "unidentifiable_fraction": unidentifiable_fraction,
            "congested_fraction": congested_fraction,
            "scale": scale,
            "n_trials": n_trials,
        },
    )


def figure5_cdf(
    instance: TomographyInstance | None = None,
    *,
    topology: str = "brite",
    mislabeled_fraction: float = 0.25,
    congested_fraction: float = 0.10,
    scale: str = "small",
    n_trials: int = 1,
    config: ExperimentConfig | None = None,
    options: AlgorithmOptions | None = None,
    grid=DEFAULT_CDF_GRID,
    seed=0,
    workers: int | None = None,
    cache=None,
    executor=None,
    journal=None,
    registry: PreparedRegistry | None = None,
) -> CdfResult:
    """Figure 5: CDFs with a fraction of congested links mislabeled."""
    instance = instance or default_instance(topology, scale=scale, seed=seed)
    config = config or default_config(scale)
    errors = _pooled_errors(
        instance,
        "mislabeled",
        dict(
            congested_fraction=congested_fraction,
            mislabeled_fraction=mislabeled_fraction,
        ),
        config=config,
        options=options,
        n_trials=n_trials,
        seed=seed,
        workers=workers,
        cache=cache,
        executor=executor,
        journal=journal,
        registry=registry,
    )
    grid = np.asarray(grid, dtype=np.float64)
    curves = _cdf_curves(errors, grid)
    return CdfResult(
        label=f"fig5-{topology}-{mislabeled_fraction:.0%}",
        grid=grid,
        curves=curves,
        metadata={
            "topology": topology,
            "mislabeled_fraction": mislabeled_fraction,
            "congested_fraction": congested_fraction,
            "scale": scale,
            "n_trials": n_trials,
        },
    )
