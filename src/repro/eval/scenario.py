"""Controlled congestion scenarios (the Figure-3 knobs).

The Figure-3 experiments vary (i) the fraction of congested links (5–25%)
and (ii) how strongly the congested links cluster within correlation sets:
"highly correlated" = more than 2 congested links per correlation set,
"loosely correlated" = up to 2 per set.

:func:`make_clustered_scenario` realises those knobs on any
:class:`~repro.topogen.instance.TomographyInstance`: it picks which links
are the scenario's congested ones (respecting the per-set count range),
then gives every affected correlation set a
:func:`~repro.model.cluster.make_cluster_model` ground truth (shared cause
+ independent background) so the congested links of a set genuinely rise
and fall together, with closed-form true marginals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.correlation import CorrelationStructure
from repro.exceptions import GenerationError
from repro.model.cluster import make_cluster_model
from repro.model.network import NetworkCongestionModel
from repro.topogen.instance import TomographyInstance
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction

__all__ = [
    "CongestionScenario",
    "make_clustered_scenario",
    "resolve_per_set_range",
    "HIGH_CORRELATION_RANGE",
    "LOOSE_CORRELATION_RANGE",
    "PER_SET_RANGES",
]

#: "more than 2 congested links per correlation set" (Figure 3(a–c)).
HIGH_CORRELATION_RANGE = (3, 6)
#: "up to 2 congested links per correlation set" (Figure 3(d)).
LOOSE_CORRELATION_RANGE = (1, 2)

#: Named clustering presets accepted wherever a per-set range is
#: configured by string (CLI flags, service payloads).
PER_SET_RANGES: dict[str, tuple[int, int]] = {
    "high": HIGH_CORRELATION_RANGE,
    "loose": LOOSE_CORRELATION_RANGE,
}


def resolve_per_set_range(value) -> tuple[int, int]:
    """Normalise a per-set-range spec to an inclusive ``(lo, hi)`` tuple.

    Accepts the preset names ``"high"`` / ``"loose"`` or any two-element
    sequence (lists round-trip through JSON codecs and caches, so they
    must be accepted alongside tuples).
    """
    if isinstance(value, str):
        try:
            return PER_SET_RANGES[value]
        except KeyError:
            raise GenerationError(
                f"unknown per-set-range preset {value!r}; expected one of "
                f"{sorted(PER_SET_RANGES)}"
            ) from None
    try:
        lo, hi = value
    except (TypeError, ValueError):
        raise GenerationError(
            f"per_set_range must be 'high', 'loose', or a (lo, hi) pair; "
            f"got {value!r}"
        ) from None
    return (int(lo), int(hi))


@dataclass(frozen=True)
class CongestionScenario:
    """Ground truth plus what the algorithm is told.

    Attributes:
        truth_model: The simulator's congestion model (its correlation
            structure is the *true* one).
        algorithm_correlation: The correlation structure handed to the
            inference algorithm.  Identical to the truth's structure in
            Figure 3; deliberately different in Figures 4 and 5.
        congested_links: Links with positive congestion probability.
        metadata: Scenario bookkeeping (targets, shortfalls, ...).
    """

    truth_model: NetworkCongestionModel
    algorithm_correlation: CorrelationStructure
    congested_links: frozenset[int]
    metadata: dict = field(default_factory=dict)


def _draw_active(
    members: list[int],
    count: int,
    rng,
) -> frozenset[int]:
    picks = rng.choice(len(members), size=count, replace=False)
    return frozenset(members[int(i)] for i in picks)


def make_clustered_scenario(
    instance: TomographyInstance,
    *,
    congested_fraction: float = 0.10,
    per_set_range: tuple[int, int] = HIGH_CORRELATION_RANGE,
    cause_probability_range: tuple[float, float] = (0.15, 0.6),
    background_range: tuple[float, float] = (0.02, 0.2),
    seed=None,
    strict: bool = False,
) -> CongestionScenario:
    """Build a Figure-3 style scenario on an instance.

    Args:
        instance: Topology + correlation structure.
        congested_fraction: Fraction of links that are congested (have
            positive congestion probability) — the x-axis of Fig. 3(a,b).
        per_set_range: Inclusive (min, max) congested links per affected
            correlation set.  ``HIGH_CORRELATION_RANGE`` needs sets of
            ≥ 3 links; when those run out the remainder is congested in
            smaller groups (recorded in metadata) unless ``strict``.
        cause_probability_range: Per-set shared-cause activation
            probability, drawn uniformly.
        background_range: Per-link background congestion probability,
            drawn uniformly.
        seed: RNG seed / generator.
        strict: Raise instead of falling back to smaller groups.
    """
    check_fraction(congested_fraction, "congested_fraction")
    lo, hi = per_set_range
    if lo < 1 or hi < lo:
        raise GenerationError(f"invalid per_set_range {per_set_range}")
    rng = as_generator(seed)
    correlation = instance.correlation
    n_links = instance.topology.n_links
    target = max(1, round(congested_fraction * n_links))

    set_order = list(range(correlation.n_sets))
    rng.shuffle(set_order)
    active_by_set: dict[int, frozenset[int]] = {}
    total = 0
    # First pass: sets large enough for the requested clustering.
    for set_index in set_order:
        if total >= target:
            break
        members = sorted(correlation.sets[set_index])
        if len(members) < lo:
            continue
        count = int(rng.integers(lo, min(hi, len(members)) + 1))
        count = min(count, max(target - total, lo))
        count = min(count, len(members))
        if count < lo:
            continue
        active_by_set[set_index] = _draw_active(members, count, rng)
        total += count
    fallback = 0
    if total < target:
        if strict:
            raise GenerationError(
                f"only {total}/{target} links could be congested with "
                f">= {lo} per correlation set; the instance's sets are "
                "too small (use strict=False to fill loosely)"
            )
        # Second pass: fill the remainder in the largest available groups.
        for set_index in set_order:
            if total >= target:
                break
            if set_index in active_by_set:
                continue
            members = sorted(correlation.sets[set_index])
            count = min(len(members), hi, target - total)
            if count < 1:
                continue
            active_by_set[set_index] = _draw_active(members, count, rng)
            total += count
            fallback += count

    models = []
    congested: set[int] = set()
    for set_index, group in enumerate(correlation.sets):
        active = active_by_set.get(set_index, frozenset())
        if active:
            cause = float(rng.uniform(*cause_probability_range))
            backgrounds = {
                link_id: float(rng.uniform(*background_range))
                for link_id in active
            }
            models.append(
                make_cluster_model(
                    group,
                    active,
                    cause_probability=cause,
                    background=backgrounds,
                )
            )
            congested.update(active)
        else:
            models.append(
                make_cluster_model(
                    group, frozenset(), cause_probability=0.0, background=0.0
                )
            )

    truth = NetworkCongestionModel(correlation, models)
    return CongestionScenario(
        truth_model=truth,
        algorithm_correlation=correlation,
        congested_links=frozenset(congested),
        metadata={
            "congested_fraction": congested_fraction,
            "per_set_range": per_set_range,
            "target": target,
            "achieved": total,
            "fallback_links": fallback,
        },
    )
