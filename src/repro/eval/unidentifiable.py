"""Figure-4 scenarios: a controlled fraction of unidentifiable links.

Assumption 4 fails at an intermediate node whose ingress links all belong
to one correlation set and whose egress links all belong to one set
(paper Section 3.3).  We *create* such nodes deliberately: a chosen node's
incident links are re-partitioned into a single fresh correlation set (the
"LAN around the node" that a hidden switch would produce), making every
one of them unidentifiable.  Nodes are absorbed until the requested
fraction of the scenario's congested links is unidentifiable.

Ground truth congests each node-set jointly (shared cause — the hidden
switch genuinely is one resource); the identifiable remainder of the
congestion budget follows the ordinary Figure-3 clustering.

Following the paper's stated practice, the structure *handed to the
algorithm* treats the unidentifiable links "as if they were uncorrelated"
(each becomes a singleton): their probabilities come out inaccurate but
the remaining links stay accurate — exactly the effect Figure 4 measures.
"""

from __future__ import annotations

from repro.core.correlation import CorrelationStructure
from repro.core.identifiability import structurally_unidentifiable_nodes
from repro.exceptions import GenerationError
from repro.model.cluster import make_cluster_model
from repro.model.common_cause import CommonCauseModel
from repro.model.network import NetworkCongestionModel
from repro.topogen.instance import TomographyInstance
from repro.eval.scenario import (
    HIGH_CORRELATION_RANGE,
    CongestionScenario,
)
from repro.utils.rng import as_generator
from repro.utils.validation import check_fraction

__all__ = ["make_unidentifiable_scenario"]


def _interior_candidate_nodes(topology) -> list:
    """Nodes interior to some path, with both ingress and egress links."""
    in_links: dict[object, set[int]] = {}
    out_links: dict[object, set[int]] = {}
    for link in topology.links:
        out_links.setdefault(link.src, set()).add(link.id)
        in_links.setdefault(link.dst, set()).add(link.id)
    interior = set()
    for path in topology.paths:
        for link_id in path.link_ids[:-1]:
            interior.add(topology.links[link_id].dst)
    return [
        node
        for node in interior
        if in_links.get(node) and out_links.get(node)
    ]


def make_unidentifiable_scenario(
    instance: TomographyInstance,
    *,
    congested_fraction: float = 0.10,
    unidentifiable_fraction: float = 0.25,
    per_set_range: tuple[int, int] = HIGH_CORRELATION_RANGE,
    cause_probability_range: tuple[float, float] = (0.15, 0.6),
    background_range: tuple[float, float] = (0.02, 0.2),
    seed=None,
) -> CongestionScenario:
    """Build a Figure-4 scenario.

    Args:
        instance: Base topology + correlation structure.
        congested_fraction: Total congested-link budget (the paper fixes
            10% for Figure 4).
        unidentifiable_fraction: Fraction *of the congested links* that
            must be unidentifiable (0.25 for Fig. 4(a,c), 0.5 for 4(b,d)).
        per_set_range / cause_probability_range / background_range: The
            Figure-3 clustering knobs for the identifiable remainder.
        seed: RNG seed / generator.
    """
    check_fraction(congested_fraction, "congested_fraction")
    check_fraction(unidentifiable_fraction, "unidentifiable_fraction")
    rng = as_generator(seed)
    topology = instance.topology
    n_links = topology.n_links
    target_total = max(1, round(congested_fraction * n_links))
    target_unident = round(unidentifiable_fraction * target_total)

    # ------------------------------------------------------------------
    # Step 1: absorb interior nodes into single-set clumps.
    # ------------------------------------------------------------------
    candidates = _interior_candidate_nodes(topology)
    rng.shuffle(candidates)
    node_sets: list[frozenset[int]] = []
    taken: set[int] = set()
    incident: dict[object, set[int]] = {}
    for link in topology.links:
        incident.setdefault(link.src, set()).add(link.id)
        incident.setdefault(link.dst, set()).add(link.id)
    unident_count = 0
    for node in candidates:
        if unident_count >= target_unident:
            break
        links = incident[node] - taken
        # All incident links must be free, otherwise the clump would
        # overlap an earlier one and the partition breaks.
        if links != incident[node] or len(links) < 2:
            continue
        node_sets.append(frozenset(links))
        taken.update(links)
        unident_count += len(links)
    if target_unident > 0 and unident_count == 0:
        raise GenerationError(
            "no interior node available to create unidentifiable links"
        )

    # ------------------------------------------------------------------
    # Step 2: true correlation structure = old sets minus the taken
    # links, plus one set per absorbed node.
    # ------------------------------------------------------------------
    true_sets: list[set[int]] = []
    for group in instance.correlation.sets:
        rest = set(group) - taken
        if rest:
            true_sets.append(rest)
    true_sets.extend(set(s) for s in node_sets)
    true_correlation = CorrelationStructure(topology, true_sets)

    # ------------------------------------------------------------------
    # Step 3: congestion ground truth.  Node clumps congest jointly;
    # the remaining budget clusters inside the surviving sets.
    # ------------------------------------------------------------------
    remaining_budget = max(target_total - unident_count, 0)
    lo, hi = per_set_range
    set_order = list(range(len(true_sets)))
    rng.shuffle(set_order)
    node_set_start = len(true_sets) - len(node_sets)
    active_by_set: dict[int, frozenset[int]] = {}
    total = 0
    for set_index in set_order:
        if total >= remaining_budget:
            break
        if set_index >= node_set_start:
            continue  # node clumps handled separately
        members = sorted(true_sets[set_index])
        count = min(
            len(members), hi, max(remaining_budget - total, 0)
        )
        if len(members) >= lo:
            count = min(count, int(rng.integers(lo, min(hi, len(members)) + 1)))
        if count < 1:
            continue
        picks = rng.choice(len(members), size=count, replace=False)
        active_by_set[set_index] = frozenset(members[int(i)] for i in picks)
        total += count

    models = []
    congested: set[int] = set()
    for set_index, group in enumerate(true_correlation.sets):
        if set_index >= node_set_start:
            cause = float(rng.uniform(*cause_probability_range))
            backgrounds = {
                link_id: float(rng.uniform(*background_range))
                for link_id in group
            }
            models.append(
                CommonCauseModel(
                    frozenset(group),
                    cause_probability=cause,
                    background=backgrounds,
                )
            )
            congested.update(group)
            continue
        active = active_by_set.get(set_index, frozenset())
        if active:
            cause = float(rng.uniform(*cause_probability_range))
            backgrounds = {
                link_id: float(rng.uniform(*background_range))
                for link_id in active
            }
            models.append(
                make_cluster_model(
                    frozenset(group),
                    active,
                    cause_probability=cause,
                    background=backgrounds,
                )
            )
            congested.update(active)
        else:
            models.append(
                make_cluster_model(
                    frozenset(group),
                    frozenset(),
                    cause_probability=0.0,
                    background=0.0,
                )
            )
    truth = NetworkCongestionModel(true_correlation, models)

    # ------------------------------------------------------------------
    # Step 4: the algorithm's view — unidentifiable links uncorrelated.
    # ------------------------------------------------------------------
    algo_sets: list[set[int]] = [set(s) for s in true_sets[:node_set_start]]
    for clump in node_sets:
        for link_id in sorted(clump):
            algo_sets.append({link_id})
    algorithm_correlation = CorrelationStructure(topology, algo_sets)

    offenders = structurally_unidentifiable_nodes(topology, true_correlation)
    return CongestionScenario(
        truth_model=truth,
        algorithm_correlation=algorithm_correlation,
        congested_links=frozenset(congested),
        metadata={
            "congested_fraction": congested_fraction,
            "unidentifiable_fraction": unidentifiable_fraction,
            "target_total": target_total,
            "target_unidentifiable": target_unident,
            "unidentifiable_links": frozenset(taken),
            "achieved_unidentifiable": unident_count,
            "achieved_total": unident_count + total,
            "structural_offender_nodes": len(offenders),
        },
    )
