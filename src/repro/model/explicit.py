"""Explicit joint congestion distribution over a (small) correlation set.

The most direct realisation of the paper's model: the experimenter writes
down ``P(Sp = A)`` for each subset ``A`` of the set.  Used by the toy
examples (Section 3.2's walkthrough assigns explicit correlated behaviour
to ``{e1, e2}``) and by property tests that need arbitrary correlated
ground truth with exactly known probabilities.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping

import numpy as np

from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel

__all__ = ["ExplicitJointModel"]

_TOLERANCE = 1e-9


class ExplicitJointModel(SetCongestionModel):
    """A fully tabulated distribution over subsets of the set.

    Args:
        links: The correlation set ``Cp``.
        distribution: ``{frozenset(subset): probability}``.  Subsets
            missing from the mapping have probability 0; if the empty set
            is missing it receives the leftover mass.  Probabilities must
            sum to 1 (within tolerance).
    """

    def __init__(
        self,
        links: frozenset[int],
        distribution: Mapping[frozenset[int], float],
    ) -> None:
        super().__init__(frozenset(links))
        cleaned: dict[frozenset[int], float] = {}
        total = 0.0
        for subset, probability in distribution.items():
            subset = self._check_subset(frozenset(subset))
            if probability < -_TOLERANCE:
                raise ModelError(
                    f"P(Sp = {sorted(subset)}) = {probability} is negative"
                )
            probability = max(probability, 0.0)
            if subset in cleaned:
                raise ModelError(
                    f"duplicate subset {sorted(subset)} in distribution"
                )
            cleaned[subset] = probability
            total += probability
        if frozenset() not in cleaned:
            if total > 1.0 + _TOLERANCE:
                raise ModelError(
                    f"subset probabilities sum to {total} > 1 with no "
                    "explicit empty-set mass"
                )
            cleaned[frozenset()] = max(1.0 - total, 0.0)
            total = sum(cleaned.values())
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ModelError(
                f"subset probabilities must sum to 1, got {total}"
            )
        self._states = sorted(cleaned, key=lambda s: (len(s), sorted(s)))
        self._probabilities = np.array(
            [cleaned[state] for state in self._states], dtype=np.float64
        )
        # Renormalise away float dust so rng.choice never complains.
        self._probabilities = self._probabilities / self._probabilities.sum()
        self._table = dict(zip(self._states, self._probabilities))

    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        index = rng.choice(len(self._states), p=self._probabilities)
        return self._states[int(index)]

    def sample_matrix(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        order = self.member_order
        column_of = {link_id: col for col, link_id in enumerate(order)}
        indicators = np.zeros((len(self._states), len(order)), dtype=bool)
        for row, state in enumerate(self._states):
            for link_id in state:
                indicators[row, column_of[link_id]] = True
        draws = rng.choice(
            len(self._states), size=n_snapshots, p=self._probabilities
        )
        return indicators[draws]

    def marginal(self, link_id: int) -> float:
        self._check_member(link_id)
        return float(
            sum(
                probability
                for state, probability in self._table.items()
                if link_id in state
            )
        )

    def joint(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        return float(
            sum(
                probability
                for state, probability in self._table.items()
                if subset <= state
            )
        )

    @property
    def enumerable(self) -> bool:
        return True

    def support(self) -> Iterator[tuple[frozenset[int], float]]:
        for state in self._states:
            yield state, float(self._table[state])

    def state_probability(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        return float(self._table.get(subset, 0.0))
