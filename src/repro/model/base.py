"""Congestion-model interfaces.

The simulator needs, per correlation set ``Cp``, a *joint* distribution
over which subset of the set is congested during a snapshot — the random
set ``Sp`` of the paper.  Ground-truth evaluation additionally needs exact
marginals ``P(X_ek = 1)`` (the quantity the algorithms are scored on) and,
for the theorem algorithm's oracle, the full support when it is
enumerable.

Models implement :class:`SetCongestionModel`; the network-level composite
lives in :mod:`repro.model.network`.
"""

from __future__ import annotations

import abc
from collections.abc import Iterator

import numpy as np

from repro.exceptions import ModelError

__all__ = ["SetCongestionModel"]


class SetCongestionModel(abc.ABC):
    """Joint congestion behaviour of one correlation set.

    Subclasses model a single stationary random set ``Sp ⊆ Cp``: each call
    to :meth:`sample` draws the congested subset for one snapshot,
    independently across snapshots (Assumption 3, stationarity).
    """

    def __init__(self, links: frozenset[int]) -> None:
        if not links:
            raise ModelError("a congestion model needs at least one link")
        self._links = frozenset(links)

    @property
    def links(self) -> frozenset[int]:
        """The correlation set ``Cp`` this model governs."""
        return self._links

    @property
    def member_order(self) -> list[int]:
        """Member link ids in sorted order — the column order of
        :meth:`sample_matrix`."""
        return sorted(self._links)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        """Draw the congested subset ``Sp`` for one snapshot."""

    def sample_matrix(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        """Draw ``n_snapshots`` i.i.d. states as a boolean matrix.

        Row ``t`` is snapshot ``t``; columns follow :attr:`member_order`.
        The base implementation loops over :meth:`sample`; concrete models
        override it with vectorised draws (the simulator's hot path).
        """
        order = self.member_order
        index = {link_id: column for column, link_id in enumerate(order)}
        out = np.zeros((n_snapshots, len(order)), dtype=bool)
        for row in range(n_snapshots):
            for link_id in self.sample(rng):
                out[row, index[link_id]] = True
        return out

    @abc.abstractmethod
    def marginal(self, link_id: int) -> float:
        """Exact ``P(X_ek = 1)`` for a member link."""

    @abc.abstractmethod
    def joint(self, subset: frozenset[int]) -> float:
        """Exact ``P(all links of subset congested)`` (``subset ⊆ Cp``).

        Note this is the *at least* event, not ``P(Sp = subset)``; the
        exact-state probability is :meth:`state_probability`.
        """

    # ------------------------------------------------------------------
    # Optional exact-support interface (small models only)
    # ------------------------------------------------------------------
    @property
    def enumerable(self) -> bool:
        """Whether :meth:`support` is available."""
        return False

    def support(self) -> Iterator[tuple[frozenset[int], float]]:
        """Yield ``(subset, P(Sp = subset))`` over the whole support.

        Only available when :attr:`enumerable` is True.  Probabilities must
        sum to 1 (the empty subset carries the remaining mass).
        """
        raise ModelError(
            f"{type(self).__name__} cannot enumerate its support"
        )

    def state_probability(self, subset: frozenset[int]) -> float:
        """``P(Sp = subset)`` — exact-state probability.

        Default implementation scans :meth:`support`; models with closed
        forms override it.
        """
        target = frozenset(subset)
        for state, probability in self.support():
            if state == target:
                return probability
        return 0.0

    # ------------------------------------------------------------------
    def _check_member(self, link_id: int) -> None:
        if link_id not in self._links:
            raise ModelError(
                f"link {link_id} is not a member of this correlation set"
            )

    def _check_subset(self, subset: frozenset[int]) -> frozenset[int]:
        subset = frozenset(subset)
        if not subset <= self._links:
            raise ModelError(
                f"{sorted(subset)} is not a subset of the correlation set "
                f"{sorted(self._links)}"
            )
        return subset
