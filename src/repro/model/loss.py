"""Packet-loss-rate model (paper Section 5, after Padmanabhan et al. [13]).

Per snapshot, every link gets a packet-loss rate drawn according to its
congestion status:

* good links: uniform in ``(0, t_l]`` — low residual loss;
* congested links: uniform in ``(t_l, 1]`` — anything above the
  congestion threshold.

The link-congestion threshold is ``t_l = 0.01`` (proposed in [10]; the
paper reports it "works well for mesh topologies and introduce[s]
negligible error").  A path of ``d`` links is declared congested when its
measured loss rate exceeds

    t_p = 1 − (1 − t_l)^d

— the loss a path would accumulate if all its links were exactly at the
threshold (Assumption 2, separability, made operational).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_probability

__all__ = ["LossModel", "path_threshold", "DEFAULT_LINK_THRESHOLD"]

#: The paper's link-congestion threshold ``t_l``.
DEFAULT_LINK_THRESHOLD = 0.01


def path_threshold(n_links: int, link_threshold: float = DEFAULT_LINK_THRESHOLD) -> float:
    """``t_p = 1 − (1 − t_l)^d`` for a path of ``d`` links."""
    if n_links < 1:
        raise ValueError(f"a path traverses at least one link, got {n_links}")
    check_probability(link_threshold, "link_threshold")
    return 1.0 - (1.0 - link_threshold) ** n_links


class LossModel:
    """Draws per-link packet-loss rates given congestion indicators.

    Args:
        link_threshold: ``t_l``; loss-rate boundary between good and
            congested links.
    """

    def __init__(self, link_threshold: float = DEFAULT_LINK_THRESHOLD) -> None:
        self._threshold = check_probability(link_threshold, "link_threshold")
        if self._threshold in (0.0, 1.0):
            raise ValueError(
                "link_threshold must be strictly inside (0, 1) so both "
                f"loss regimes are non-empty; got {self._threshold}"
            )

    @property
    def link_threshold(self) -> float:
        """``t_l``."""
        return self._threshold

    def path_threshold(self, n_links: int) -> float:
        """``t_p`` for a path of the given length."""
        return path_threshold(n_links, self._threshold)

    def sample_loss_rates(
        self,
        congested: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-link loss rates for one snapshot.

        Args:
            congested: Boolean vector over link ids (True = congested this
                snapshot).
            rng: Random source.

        Returns:
            Float vector of loss rates: good links in ``(0, t_l]``,
            congested links in ``(t_l, 1]``.
        """
        congested = np.asarray(congested, dtype=bool)
        uniform = rng.random(congested.shape[0])
        good_rates = uniform * self._threshold
        congested_rates = self._threshold + uniform * (1.0 - self._threshold)
        return np.where(congested, congested_rates, good_rates)
