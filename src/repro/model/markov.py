"""Markov-modulated (bursty) congestion — an Assumption-3 stress test.

The paper's Assumption 3 models each link's congestion as a *stationary*
process and, implicitly through the estimators, treats snapshots as
i.i.d.  Real congestion is bursty: a set that is congested now is more
likely to be congested in the next snapshot.  This model violates the
i.i.d. reading while keeping the stationary *marginals* intact, so it
answers the practical question: does temporal correlation break the
algorithms, or only inflate estimator variance?

Mechanics: a two-state Markov chain per correlation set — ``calm`` and
``burst`` — switching with probabilities ``p_calm_to_burst`` and
``p_burst_to_calm`` per snapshot.  Within a state, member links congest
independently with state-specific probabilities.  The chain starts in
(and all exact queries use) its stationary distribution

    π_burst = p_calm_to_burst / (p_calm_to_burst + p_burst_to_calm)

so marginals and within-snapshot joints are exact mixtures; consecutive
*snapshots* are correlated only through :meth:`sample_matrix` (single
:meth:`sample` calls draw the state fresh from π — i.i.d. by
construction, preserving the base-class contract).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Mapping

import numpy as np

from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel
from repro.utils.validation import check_probability

__all__ = ["MarkovModulatedModel"]


class MarkovModulatedModel(SetCongestionModel):
    """Two-state (calm/burst) Markov-modulated congestion.

    Args:
        links: The correlation set.
        calm: Per-link congestion probabilities in the calm state (a
            float broadcasts to all links).
        burst: Per-link congestion probabilities in the burst state.
        p_calm_to_burst: Per-snapshot transition probability calm→burst
            (must be positive so the chain is ergodic).
        p_burst_to_calm: Per-snapshot transition probability burst→calm
            (must be positive).
    """

    def __init__(
        self,
        links: frozenset[int],
        *,
        calm: float | Mapping[int, float],
        burst: float | Mapping[int, float],
        p_calm_to_burst: float,
        p_burst_to_calm: float,
    ) -> None:
        super().__init__(frozenset(links))
        self._calm = self._normalise(calm, "calm")
        self._burst = self._normalise(burst, "burst")
        self._to_burst = check_probability(
            p_calm_to_burst, "p_calm_to_burst"
        )
        self._to_calm = check_probability(
            p_burst_to_calm, "p_burst_to_calm"
        )
        if self._to_burst == 0.0 or self._to_calm == 0.0:
            raise ModelError(
                "both transition probabilities must be positive so the "
                "chain is ergodic (stationarity needs a unique π)"
            )
        self._order = sorted(self._links)
        self._calm_vector = np.array(
            [self._calm[k] for k in self._order], dtype=np.float64
        )
        self._burst_vector = np.array(
            [self._burst[k] for k in self._order], dtype=np.float64
        )

    def _normalise(self, value, name: str) -> dict[int, float]:
        if isinstance(value, Mapping):
            missing = self._links - set(value)
            if missing:
                raise ModelError(
                    f"{name} probabilities missing for links "
                    f"{sorted(missing)}"
                )
            return {
                k: check_probability(value[k], f"{name}[{k}]")
                for k in self._links
            }
        probability = check_probability(value, name)
        return {k: probability for k in self._links}

    # ------------------------------------------------------------------
    @property
    def stationary_burst_probability(self) -> float:
        """π_burst of the two-state chain."""
        return self._to_burst / (self._to_burst + self._to_calm)

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        """One snapshot with the state drawn fresh from π (i.i.d.)."""
        bursting = rng.random() < self.stationary_burst_probability
        vector = self._burst_vector if bursting else self._calm_vector
        draws = rng.random(len(self._order)) < vector
        return frozenset(
            link_id for link_id, hit in zip(self._order, draws) if hit
        )

    def sample_matrix(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        """Time-correlated snapshots: the chain actually runs.

        This is where the i.i.d. assumption is deliberately violated —
        consecutive rows share the hidden state with high probability
        when transition probabilities are small.
        """
        states = np.zeros(n_snapshots, dtype=bool)
        current = rng.random() < self.stationary_burst_probability
        switches = rng.random(n_snapshots)
        for row in range(n_snapshots):
            states[row] = current
            threshold = self._to_calm if current else self._to_burst
            if switches[row] < threshold:
                current = not current
        vectors = np.where(
            states[:, None], self._burst_vector, self._calm_vector
        )
        return rng.random((n_snapshots, len(self._order))) < vectors

    # ------------------------------------------------------------------
    def marginal(self, link_id: int) -> float:
        self._check_member(link_id)
        pi = self.stationary_burst_probability
        return pi * self._burst[link_id] + (1 - pi) * self._calm[link_id]

    def joint(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        if not subset:
            return 1.0
        pi = self.stationary_burst_probability
        burst_product = math.prod(self._burst[k] for k in subset)
        calm_product = math.prod(self._calm[k] for k in subset)
        return pi * burst_product + (1 - pi) * calm_product

    # ------------------------------------------------------------------
    @property
    def enumerable(self) -> bool:
        return len(self._links) <= 20

    def support(self) -> Iterator[tuple[frozenset[int], float]]:
        if not self.enumerable:
            raise ModelError(
                f"markov model over {len(self._links)} links has too "
                "large a support to enumerate"
            )
        for size in range(len(self._order) + 1):
            for combo in itertools.combinations(self._order, size):
                state = frozenset(combo)
                probability = self.state_probability(state)
                if probability > 0.0:
                    yield state, probability

    def state_probability(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        pi = self.stationary_burst_probability
        total = 0.0
        for weight, table in (
            (pi, self._burst),
            (1 - pi, self._calm),
        ):
            product = 1.0
            for link_id in self._order:
                p = table[link_id]
                product *= p if link_id in subset else 1.0 - p
            total += weight * product
        return total
