"""Shared-resource congestion model (hidden physical substrate).

Models the paper's first correlation scenario (Sections 1, 3.3, 5): each
*logical* link (an edge of the measurement graph) maps to a set of
underlying *physical resources* — router-level links in the Brite
experiments, switch fabric in the Figure-2 LAN.  Each resource congests
independently with its own probability; a logical link is congested
exactly when at least one of its resources is.  Two logical links are
correlated iff they share a resource.

Exact quantities (resources independent):

    P(X_k = 1)            = 1 − Π_{r ∈ R_k} (1 − q_r)
    P(all of A congested) = Σ_{B ⊆ A, B≠∅} (−1)^{|B|+1} Π_{r ∈ ∪R_B}(1−q_r)
                            ... computed by inclusion–exclusion over the
                            complement events, see :meth:`joint`.

This is the ground-truth generator for the Brite evaluation: the paper
assigns congestion probabilities to router-level links and derives the
AS-level (logical) probabilities — exactly what this class does.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Mapping

import numpy as np

from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel
from repro.utils.validation import check_probability

__all__ = ["SharedResourceModel"]


class SharedResourceModel(SetCongestionModel):
    """Logical links congested via independently failing shared resources.

    Args:
        resource_map: ``{link_id: iterable of resource ids}`` — the
            physical resources each logical link depends on.  Every link
            needs at least one resource.
        resource_probabilities: ``{resource_id: P(resource congested)}``.
    """

    def __init__(
        self,
        resource_map: Mapping[int, "frozenset | set | list | tuple"],
        resource_probabilities: Mapping[object, float],
    ) -> None:
        if not resource_map:
            raise ModelError("resource_map must not be empty")
        super().__init__(frozenset(resource_map))
        self._resources_of: dict[int, frozenset] = {}
        used_resources: set = set()
        for link_id, resources in resource_map.items():
            resources = frozenset(resources)
            if not resources:
                raise ModelError(
                    f"link {link_id} depends on no resource; a logical "
                    "link is a sequence of at least one physical link"
                )
            self._resources_of[link_id] = resources
            used_resources.update(resources)
        missing = used_resources - set(resource_probabilities)
        if missing:
            raise ModelError(
                f"no probability given for resources {sorted(map(str, missing))}"
            )
        self._q: dict[object, float] = {
            resource: check_probability(
                resource_probabilities[resource], f"q[{resource}]"
            )
            for resource in used_resources
        }
        self._resource_order = sorted(used_resources, key=str)
        self._q_vector = np.array(
            [self._q[r] for r in self._resource_order], dtype=np.float64
        )
        self._link_order = sorted(self._links)

    # ------------------------------------------------------------------
    @property
    def resources(self) -> list:
        """All resource ids, in deterministic order."""
        return list(self._resource_order)

    def resources_of(self, link_id: int) -> frozenset:
        self._check_member(link_id)
        return self._resources_of[link_id]

    def sharing_pairs(self) -> list[tuple[int, int]]:
        """Pairs of member links that share at least one resource (the
        pairs the paper labels correlated)."""
        pairs = []
        for a, b in itertools.combinations(self._link_order, 2):
            if self._resources_of[a] & self._resources_of[b]:
                pairs.append((a, b))
        return pairs

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        failed_draws = rng.random(len(self._resource_order)) < self._q_vector
        failed = {
            resource
            for resource, hit in zip(self._resource_order, failed_draws)
            if hit
        }
        if not failed:
            return frozenset()
        return frozenset(
            link_id
            for link_id in self._link_order
            if self._resources_of[link_id] & failed
        )

    def _incidence(self) -> np.ndarray:
        """Boolean (n_resources × n_links) dependency matrix, cached."""
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            resource_index = {
                resource: row
                for row, resource in enumerate(self._resource_order)
            }
            cached = np.zeros(
                (len(self._resource_order), len(self._link_order)),
                dtype=bool,
            )
            for column, link_id in enumerate(self._link_order):
                for resource in self._resources_of[link_id]:
                    cached[resource_index[resource], column] = True
            self._incidence_cache = cached
        return cached

    def sample_matrix(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        failed = rng.random(
            (n_snapshots, len(self._resource_order))
        ) < self._q_vector
        # A link is congested when any of its resources failed.
        return (
            failed.astype(np.uint8) @ self._incidence().astype(np.uint8)
        ) > 0

    def _all_good(self, resources: frozenset) -> float:
        """Probability that every resource in the set is good."""
        return math.prod(1.0 - self._q[r] for r in resources)

    def marginal(self, link_id: int) -> float:
        self._check_member(link_id)
        return 1.0 - self._all_good(self._resources_of[link_id])

    def joint(self, subset: frozenset[int]) -> float:
        """``P(all links of subset congested)`` by inclusion–exclusion.

        ``P(∩_k {X_k=1}) = Σ_{B ⊆ A} (−1)^{|B|} P(∩_{k∈B} {X_k=0})`` and
        ``P(∩_{k∈B} {X_k=0})`` is the probability that the *union* of B's
        resources is entirely good.  Exponential in ``|A|``; fine for the
        joint sizes the experiments query (pairs, small subsets).
        """
        subset = self._check_subset(subset)
        members = sorted(subset)
        total = 0.0
        for size in range(len(members) + 1):
            for combo in itertools.combinations(members, size):
                union: frozenset = frozenset()
                for link_id in combo:
                    union |= self._resources_of[link_id]
                term = self._all_good(union)
                total += term if size % 2 == 0 else -term
        # Float dust can push exact-zero joints slightly negative.
        return min(max(total, 0.0), 1.0)

    # ------------------------------------------------------------------
    @property
    def enumerable(self) -> bool:
        return len(self._resource_order) <= 20

    def support(self) -> Iterator[tuple[frozenset[int], float]]:
        """Enumerate over *resource* states and project to link states."""
        if not self.enumerable:
            raise ModelError(
                f"shared-resource model with {len(self._resource_order)} "
                "resources has too large a support to enumerate"
            )
        accumulator: dict[frozenset[int], float] = {}
        n = len(self._resource_order)
        for bits in range(1 << n):
            probability = 1.0
            failed = set()
            for index, resource in enumerate(self._resource_order):
                if bits >> index & 1:
                    probability *= self._q[resource]
                    failed.add(resource)
                else:
                    probability *= 1.0 - self._q[resource]
            if probability == 0.0:
                continue
            state = frozenset(
                link_id
                for link_id in self._link_order
                if self._resources_of[link_id] & failed
            )
            accumulator[state] = accumulator.get(state, 0.0) + probability
        for state in sorted(accumulator, key=lambda s: (len(s), sorted(s))):
            yield state, accumulator[state]

    def state_probability(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        for state, probability in self.support():
            if state == subset:
                return probability
        return 0.0
