"""Common-cause (shared-fate) congestion model.

Models the paper's second correlation scenario (Section 3.3): "congestion
is caused by a traffic pattern that involves a particular set of links" —
a distributed game, a flooding worm, a shared trunk.  A hidden Bernoulli
cause ``Z`` with activation probability ``cause_probability`` congests
*every* member link when active; independently, each link also congests on
its own with its ``background`` probability (cross traffic).

Exact quantities (cause independent of backgrounds):

    P(X_k = 1)            = a + (1-a)·b_k
    P(all of A congested) = a + (1-a)·Π_{k∈A} b_k

where ``a`` is the cause probability and ``b_k`` the backgrounds.  This
model produces arbitrarily strong positive correlation while keeping all
ground-truth probabilities in closed form — ideal for the Figure 5
"unknown correlation pattern" experiments.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Mapping

import numpy as np

from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel
from repro.utils.validation import check_probability

__all__ = ["CommonCauseModel"]


class CommonCauseModel(SetCongestionModel):
    """Hidden shared cause plus independent background congestion.

    Args:
        links: The member links.
        cause_probability: ``P(Z = 1)`` — when the cause fires, every
            member link is congested that snapshot.
        background: Per-link independent congestion probability applying
            whether or not the cause fired.  A plain float applies the
            same background to every link.
    """

    def __init__(
        self,
        links: frozenset[int],
        cause_probability: float,
        background: float | Mapping[int, float] = 0.0,
    ) -> None:
        super().__init__(frozenset(links))
        self._cause = check_probability(cause_probability, "cause_probability")
        if isinstance(background, Mapping):
            missing = self._links - set(background)
            if missing:
                raise ModelError(
                    f"background probabilities missing for links "
                    f"{sorted(missing)}"
                )
            self._background = {
                link_id: check_probability(
                    background[link_id], f"background[{link_id}]"
                )
                for link_id in self._links
            }
        else:
            value = check_probability(background, "background")
            self._background = {link_id: value for link_id in self._links}
        self._order = sorted(self._links)
        self._vector = np.array(
            [self._background[k] for k in self._order], dtype=np.float64
        )

    @property
    def cause_probability(self) -> float:
        return self._cause

    def background_of(self, link_id: int) -> float:
        self._check_member(link_id)
        return self._background[link_id]

    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        if rng.random() < self._cause:
            return frozenset(self._links)
        draws = rng.random(len(self._order)) < self._vector
        return frozenset(
            link_id for link_id, hit in zip(self._order, draws) if hit
        )

    def sample_matrix(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        cause_fired = rng.random(n_snapshots) < self._cause
        background = rng.random((n_snapshots, len(self._order))) < self._vector
        return background | cause_fired[:, None]

    def marginal(self, link_id: int) -> float:
        self._check_member(link_id)
        b = self._background[link_id]
        return self._cause + (1.0 - self._cause) * b

    def joint(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        if not subset:
            return 1.0
        product = math.prod(self._background[k] for k in subset)
        return self._cause + (1.0 - self._cause) * product

    # ------------------------------------------------------------------
    @property
    def enumerable(self) -> bool:
        return len(self._links) <= 20

    def support(self) -> Iterator[tuple[frozenset[int], float]]:
        if not self.enumerable:
            raise ModelError(
                f"common-cause model over {len(self._links)} links has too "
                "large a support to enumerate"
            )
        for size in range(len(self._order) + 1):
            for combo in itertools.combinations(self._order, size):
                state = frozenset(combo)
                probability = self.state_probability(state)
                if probability > 0.0:
                    yield state, probability

    def state_probability(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        # Cause off: independent backgrounds produce exactly `subset`.
        off = 1.0
        for link_id in self._order:
            b = self._background[link_id]
            off *= b if link_id in subset else 1.0 - b
        probability = (1.0 - self._cause) * off
        # Cause on: the state is the full set, regardless of backgrounds.
        if subset == self._links:
            probability += self._cause
        return probability
