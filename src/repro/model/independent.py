"""Independent-links congestion model.

The degenerate correlation case: every member link congests independently
with its own marginal.  Used for the links the paper treats as
uncorrelated (singleton correlation sets) and as the "what the
independence algorithm believes" reference in tests.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Mapping

import numpy as np

from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel
from repro.utils.validation import check_probability

__all__ = ["IndependentModel"]


class IndependentModel(SetCongestionModel):
    """Each link congested independently with probability ``p_k``.

    Args:
        probabilities: ``{link_id: P(X_ek = 1)}`` for every member link.
    """

    def __init__(self, probabilities: Mapping[int, float]) -> None:
        if not probabilities:
            raise ModelError("need at least one link probability")
        super().__init__(frozenset(probabilities))
        self._probabilities = {
            link_id: check_probability(value, f"P(X_{link_id}=1)")
            for link_id, value in probabilities.items()
        }
        self._order = sorted(self._probabilities)
        self._vector = np.array(
            [self._probabilities[k] for k in self._order], dtype=np.float64
        )

    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        draws = rng.random(len(self._order)) < self._vector
        return frozenset(
            link_id for link_id, hit in zip(self._order, draws) if hit
        )

    def sample_matrix(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        return rng.random((n_snapshots, len(self._order))) < self._vector

    def marginal(self, link_id: int) -> float:
        self._check_member(link_id)
        return self._probabilities[link_id]

    def joint(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        return math.prod(self._probabilities[k] for k in subset)

    @property
    def enumerable(self) -> bool:
        return len(self._links) <= 20

    def support(self) -> Iterator[tuple[frozenset[int], float]]:
        if not self.enumerable:
            raise ModelError(
                f"independent model over {len(self._links)} links has "
                "too large a support to enumerate"
            )
        for size in range(len(self._order) + 1):
            for combo in itertools.combinations(self._order, size):
                chosen = frozenset(combo)
                probability = 1.0
                for link_id in self._order:
                    p = self._probabilities[link_id]
                    probability *= p if link_id in chosen else 1.0 - p
                if probability > 0.0:
                    yield chosen, probability

    def state_probability(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        probability = 1.0
        for link_id in self._order:
            p = self._probabilities[link_id]
            probability *= p if link_id in subset else 1.0 - p
        return probability
