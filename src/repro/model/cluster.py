"""Scenario model for controlled per-set congestion clustering (Figure 3).

The Figure-3 captions parameterise experiments by *how many congested links
co-occur per correlation set*: "highly correlated (more than 2 congested
links per correlation set)" versus "loosely correlated (up to 2 congested
links per correlation set)".  Two pieces implement that:

* :class:`ActiveSubsetModel` — restricts any inner congestion model to an
  *active* subset of the correlation set; the remaining links are always
  good (the scenario's "not congested" links, congestion probability 0).
* :func:`make_cluster_model` — the standard Figure-3 construction: the
  active links of a set congest through a :class:`~repro.model.common_cause.
  CommonCauseModel` (shared cause + per-link background), producing the
  strong positive within-set correlation the experiments need, with every
  ground-truth probability in closed form.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

import numpy as np

from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel
from repro.model.common_cause import CommonCauseModel

__all__ = ["ActiveSubsetModel", "make_cluster_model"]


class ActiveSubsetModel(SetCongestionModel):
    """Extend a model over an active subset to the full correlation set.

    Links outside the active subset never congest.  All probabilistic
    queries delegate to the inner model, with inactive links pinned good.
    """

    def __init__(
        self,
        links: frozenset[int],
        inner: SetCongestionModel,
    ) -> None:
        super().__init__(frozenset(links))
        if not inner.links <= self._links:
            raise ModelError(
                f"active links {sorted(inner.links)} are not all members "
                f"of the correlation set {sorted(self._links)}"
            )
        self._inner = inner

    @property
    def active_links(self) -> frozenset[int]:
        return self._inner.links

    @property
    def inner(self) -> SetCongestionModel:
        return self._inner

    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        return self._inner.sample(rng)

    def sample_matrix(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        inner_matrix = self._inner.sample_matrix(rng, n_snapshots)
        inner_order = self._inner.member_order
        out = np.zeros((n_snapshots, len(self.member_order)), dtype=bool)
        column_of = {
            link_id: column
            for column, link_id in enumerate(self.member_order)
        }
        for inner_column, link_id in enumerate(inner_order):
            out[:, column_of[link_id]] = inner_matrix[:, inner_column]
        return out

    def marginal(self, link_id: int) -> float:
        self._check_member(link_id)
        if link_id in self._inner.links:
            return self._inner.marginal(link_id)
        return 0.0

    def joint(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        if not subset <= self._inner.links:
            return 0.0  # an always-good link can never be congested
        return self._inner.joint(subset)

    @property
    def enumerable(self) -> bool:
        return self._inner.enumerable

    def support(self) -> Iterator[tuple[frozenset[int], float]]:
        return self._inner.support()

    def state_probability(self, subset: frozenset[int]) -> float:
        subset = self._check_subset(subset)
        if not subset <= self._inner.links:
            return 0.0
        return self._inner.state_probability(subset)


def make_cluster_model(
    set_links: frozenset[int],
    active_links: frozenset[int],
    *,
    cause_probability: float,
    background: float | Mapping[int, float],
) -> SetCongestionModel:
    """Figure-3 style per-set model.

    Args:
        set_links: The whole correlation set.
        active_links: The scenario's congested links inside it (size > 2
            for the "highly correlated" experiments, ≤ 2 for "loosely
            correlated").  Empty means the set never congests.
        cause_probability: Shared-cause activation probability; the knob
            that makes the active links congest *together*.
        background: Per-link independent congestion on top of the cause.
    """
    active_links = frozenset(active_links)
    if not active_links:
        # Degenerate: the set never congests; represent with an explicit
        # all-good distribution via an independent model at probability 0.
        from repro.model.independent import IndependentModel

        return ActiveSubsetModel(
            frozenset(set_links),
            IndependentModel({next(iter(set_links)): 0.0}),
        )
    inner = CommonCauseModel(
        active_links,
        cause_probability=cause_probability,
        background=background,
    )
    return ActiveSubsetModel(frozenset(set_links), inner)
