"""Network-level congestion model: one set-model per correlation set.

:class:`NetworkCongestionModel` is the ground truth of every experiment:
it owns a :class:`~repro.model.base.SetCongestionModel` per correlation
set, samples the network state ``S = ∪p Sp`` (sets independent — the
definition of the correlation structure), and answers exact probability
queries used for scoring and for the noise-free oracle.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro.core.correlation import CorrelationStructure
from repro.exceptions import ModelError
from repro.model.base import SetCongestionModel
from repro.model.independent import IndependentModel

__all__ = ["NetworkCongestionModel"]


class NetworkCongestionModel:
    """Joint congestion behaviour of the whole network.

    Args:
        correlation: The (ground-truth) correlation structure.  Note this
            may legitimately differ from the structure *given to the
            algorithm* — that is exactly the Figure-5 "unknown correlation
            patterns" experiment.
        models: One set-model per correlation set, aligned with
            ``correlation.sets`` (same order, same member links).
    """

    def __init__(
        self,
        correlation: CorrelationStructure,
        models: Sequence[SetCongestionModel],
    ) -> None:
        if len(models) != correlation.n_sets:
            raise ModelError(
                f"got {len(models)} set models for {correlation.n_sets} "
                "correlation sets"
            )
        for index, (group, model) in enumerate(
            zip(correlation.sets, models)
        ):
            if model.links != group:
                raise ModelError(
                    f"set model #{index} governs links "
                    f"{sorted(model.links)} but correlation set #{index} "
                    f"is {sorted(group)}"
                )
        self._correlation = correlation
        self._models = tuple(models)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def independent(
        cls,
        correlation: CorrelationStructure,
        marginals: Mapping[int, float] | np.ndarray,
    ) -> "NetworkCongestionModel":
        """All links independent with the given marginals.

        The correlation structure is respected only structurally (one
        model per set); within each set, links are independent.  Useful as
        the "what the independence algorithm believes" reference and as a
        degenerate-correlation ground truth.
        """
        if isinstance(marginals, Mapping):
            lookup = dict(marginals)
        else:
            array = np.asarray(marginals, dtype=np.float64)
            lookup = {k: float(array[k]) for k in range(array.shape[0])}
        models = [
            IndependentModel({k: lookup.get(k, 0.0) for k in group})
            for group in correlation.sets
        ]
        return cls(correlation, models)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def correlation(self) -> CorrelationStructure:
        return self._correlation

    @property
    def models(self) -> tuple[SetCongestionModel, ...]:
        return self._models

    @property
    def n_links(self) -> int:
        return self._correlation.topology.n_links

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: np.random.Generator) -> frozenset[int]:
        """Draw the network state ``S`` — the congested links of one
        snapshot (sets sampled independently, then united)."""
        congested: set[int] = set()
        for model in self._models:
            congested.update(model.sample(rng))
        return frozenset(congested)

    def sample_indicator(self, rng: np.random.Generator) -> np.ndarray:
        """Like :meth:`sample` but as a boolean vector over link ids."""
        indicator = np.zeros(self.n_links, dtype=bool)
        congested = self.sample(rng)
        if congested:
            indicator[sorted(congested)] = True
        return indicator

    def sample_states(
        self, rng: np.random.Generator, n_snapshots: int
    ) -> np.ndarray:
        """Draw ``n_snapshots`` network states as a boolean matrix
        (snapshot × link id) — the simulator's bulk entry point."""
        states = np.zeros((n_snapshots, self.n_links), dtype=bool)
        for model in self._models:
            columns = model.member_order
            states[:, columns] = model.sample_matrix(rng, n_snapshots)
        return states

    # ------------------------------------------------------------------
    # Exact queries (ground truth)
    # ------------------------------------------------------------------
    def link_marginals(self) -> np.ndarray:
        """``P(X_ek = 1)`` per link id — the target of the evaluation."""
        marginals = np.zeros(self.n_links, dtype=np.float64)
        for model in self._models:
            for link_id in model.links:
                marginals[link_id] = model.marginal(link_id)
        return marginals

    def joint(self, links) -> float:
        """``P(all given links congested)`` (cross-set product rule)."""
        by_model: dict[int, set[int]] = {}
        for link_id in frozenset(links):
            by_model.setdefault(
                self._correlation.set_index_of(link_id), set()
            ).add(link_id)
        probability = 1.0
        for set_index, members in by_model.items():
            probability *= self._models[set_index].joint(frozenset(members))
        return probability

    @property
    def enumerable(self) -> bool:
        """Whether every set model can enumerate its support."""
        return all(model.enumerable for model in self._models)

    def iter_states(
        self, *, max_states: int = 1_000_000
    ) -> Iterator[tuple[frozenset[int], float]]:
        """Enumerate ``(network state, probability)`` over the product
        support.  Raises :class:`ModelError` past ``max_states`` states.
        """
        if not self.enumerable:
            raise ModelError(
                "not every set model can enumerate its support"
            )
        supports = [list(model.support()) for model in self._models]
        size = 1
        for support in supports:
            size *= max(len(support), 1)
            if size > max_states:
                raise ModelError(
                    f"product support exceeds max_states={max_states}"
                )

        def descend(index: int, state: frozenset[int], probability: float):
            if probability == 0.0:
                return
            if index == len(supports):
                yield state, probability
                return
            for subset, p in supports[index]:
                yield from descend(index + 1, state | subset, probability * p)

        yield from descend(0, frozenset(), 1.0)

    def __repr__(self) -> str:
        return (
            f"NetworkCongestionModel(n_sets={len(self._models)}, "
            f"n_links={self.n_links})"
        )
