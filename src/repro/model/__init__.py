"""Congestion and loss models — the simulator's ground truth."""

from repro.model.base import SetCongestionModel
from repro.model.cluster import ActiveSubsetModel, make_cluster_model
from repro.model.common_cause import CommonCauseModel
from repro.model.explicit import ExplicitJointModel
from repro.model.independent import IndependentModel
from repro.model.loss import (
    DEFAULT_LINK_THRESHOLD,
    LossModel,
    path_threshold,
)
from repro.model.markov import MarkovModulatedModel
from repro.model.network import NetworkCongestionModel
from repro.model.shared_resource import SharedResourceModel

__all__ = [
    "SetCongestionModel",
    "IndependentModel",
    "ExplicitJointModel",
    "CommonCauseModel",
    "SharedResourceModel",
    "MarkovModulatedModel",
    "ActiveSubsetModel",
    "make_cluster_model",
    "NetworkCongestionModel",
    "LossModel",
    "path_threshold",
    "DEFAULT_LINK_THRESHOLD",
]
