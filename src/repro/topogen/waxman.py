"""Waxman random graphs (one of BRITE's flat models).

Waxman's classic model (RFC-era Internet modelling; the default router
placement model in BRITE): ``n`` nodes placed uniformly in the unit
square, an edge between ``u`` and ``v`` appearing with probability

    P(u, v) = α · exp( −d(u, v) / (β · L) )

where ``d`` is Euclidean distance and ``L`` the maximum possible distance.
Larger ``α`` raises overall edge density; larger ``β`` lengthens the
typical edge.

The raw model can produce disconnected graphs; since measurement paths
need end-to-end connectivity we repair connectivity by linking each
stranded component to the closest node of the growing giant component —
the same pragmatic fix BRITE applies.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.exceptions import GenerationError
from repro.utils.rng import as_generator

__all__ = ["waxman_graph"]


def waxman_graph(
    n_nodes: int,
    *,
    alpha: float = 0.4,
    beta: float = 0.2,
    seed=None,
    connect: bool = True,
) -> nx.Graph:
    """Generate a Waxman random graph with node positions.

    Args:
        n_nodes: Number of nodes (labelled ``0..n-1``).
        alpha: Edge-density parameter, in (0, 1].
        beta: Edge-length parameter, in (0, 1].
        seed: RNG seed / generator.
        connect: Repair disconnected results (default True).

    Returns:
        An undirected graph whose nodes carry a ``pos`` attribute.
    """
    if n_nodes < 2:
        raise GenerationError(f"need at least 2 nodes, got {n_nodes}")
    if not 0.0 < alpha <= 1.0:
        raise GenerationError(f"alpha must be in (0, 1], got {alpha}")
    if not 0.0 < beta <= 1.0:
        raise GenerationError(f"beta must be in (0, 1], got {beta}")
    rng = as_generator(seed)

    graph = nx.Graph()
    positions = rng.random((n_nodes, 2))
    for node in range(n_nodes):
        graph.add_node(node, pos=(float(positions[node, 0]), float(positions[node, 1])))

    scale = math.sqrt(2.0)  # max distance in the unit square
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            dx = positions[u, 0] - positions[v, 0]
            dy = positions[u, 1] - positions[v, 1]
            distance = math.hypot(dx, dy)
            probability = alpha * math.exp(-distance / (beta * scale))
            if rng.random() < probability:
                graph.add_edge(u, v, length=distance)

    if connect and n_nodes > 1:
        _repair_connectivity(graph, positions)
    return graph


def _repair_connectivity(graph: nx.Graph, positions) -> None:
    """Join components by adding the shortest possible bridging edges."""
    components = [sorted(c) for c in nx.connected_components(graph)]
    if len(components) <= 1:
        return
    # Grow from the largest component, absorbing the closest outsider.
    components.sort(key=len, reverse=True)
    core = set(components[0])
    pending = [set(c) for c in components[1:]]
    while pending:
        best = None
        for index, component in enumerate(pending):
            for u in component:
                for v in core:
                    dx = positions[u, 0] - positions[v, 0]
                    dy = positions[u, 1] - positions[v, 1]
                    distance = math.hypot(dx, dy)
                    if best is None or distance < best[0]:
                        best = (distance, u, v, index)
        distance, u, v, index = best
        graph.add_edge(u, v, length=distance)
        core |= pending.pop(index)
