"""The paper's toy topologies (Figures 1 and 2).

Figure 1(a): four links, three paths, Assumption 4 *holds* — every
correlation subset covers a distinct path set.  Figure 1(b): three links,
two paths, Assumption 4 *fails* — ``{e1, e2}`` and ``{e3}`` both cover
``{P1, P2}``.  These two instances anchor the unit tests (the coverage
tables of Section 3.1 are asserted verbatim) and the worked example of
Section 3.2.

Figure 2 sketches why logical links end up correlated: hidden network
elements (an Ethernet switch, MPLS switches) that traceroute cannot see
make distinct logical links share physical segments.
:func:`fig_2a_lan` and :func:`fig_2b_mpls_domain` build concrete
instances of those sketches, including the physical-resource map that a
:class:`~repro.model.shared_resource.SharedResourceModel` turns into
correlated ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builder import TopologyBuilder
from repro.core.correlation import CorrelationStructure
from repro.model.shared_resource import SharedResourceModel
from repro.topogen.instance import TomographyInstance
from repro.utils.validation import check_probability

__all__ = [
    "fig_1a",
    "fig_1b",
    "HiddenSharingScenario",
    "fig_2a_lan",
    "fig_2b_mpls_domain",
]


def fig_1a() -> TomographyInstance:
    """Figure 1(a): Assumption 4 holds.

    Links ``E = {e1..e4}``; paths ``P1 = e3·e1``, ``P2 = e3·e2``,
    ``P3 = e4·e2``; correlation sets ``C = {{e1,e2}, {e3}, {e4}}``.
    Coverage (paper Section 3.1)::

        ψ({e1}) = {P1}        ψ({e2}) = {P2, P3}
        ψ({e1,e2}) = {P1,P2,P3}
        ψ({e3}) = {P1, P2}    ψ({e4}) = {P3}
    """
    builder = TopologyBuilder()
    builder.add_link("e1", "v3", "v1")
    builder.add_link("e2", "v3", "v2")
    builder.add_link("e3", "v4", "v3")
    builder.add_link("e4", "v5", "v3")
    builder.add_path("P1", ["e3", "e1"])
    builder.add_path("P2", ["e3", "e2"])
    builder.add_path("P3", ["e4", "e2"])
    topology = builder.build()
    correlation = CorrelationStructure.from_link_names(
        topology, [["e1", "e2"], ["e3"], ["e4"]]
    )
    return TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata={"figure": "1a", "assumption4": True},
    )


def fig_1b() -> TomographyInstance:
    """Figure 1(b): Assumption 4 fails.

    Links ``E = {e1, e2, e3}``; paths ``P1 = e3·e1``, ``P2 = e3·e2``;
    correlation sets ``C = {{e1,e2}, {e3}}``.  Correlation subsets
    ``{e1,e2}`` and ``{e3}`` both cover ``{P1, P2}``: node ``v3`` has all
    its ingress links (``{e3}``) in one set and all its egress links
    (``{e1, e2}``) in one set.
    """
    builder = TopologyBuilder()
    builder.add_link("e1", "v3", "v1")
    builder.add_link("e2", "v3", "v2")
    builder.add_link("e3", "v4", "v3")
    builder.add_path("P1", ["e3", "e1"])
    builder.add_path("P2", ["e3", "e2"])
    topology = builder.build()
    correlation = CorrelationStructure.from_link_names(
        topology, [["e1", "e2"], ["e3"]]
    )
    return TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata={"figure": "1b", "assumption4": False},
    )


@dataclass(frozen=True)
class HiddenSharingScenario:
    """A Figure-2 style instance with its hidden physical substrate.

    Attributes:
        instance: Measurement topology + operator-visible correlation.
        resource_map: ``{link_id: frozenset of physical segment ids}`` —
            which hidden physical links each logical link traverses.
        segment_names: Human-readable names of the physical segments.
    """

    instance: TomographyInstance
    resource_map: dict[int, frozenset]
    segment_names: dict = field(default_factory=dict)

    def make_model(
        self, segment_probabilities: dict
    ) -> SharedResourceModel:
        """Ground-truth model: segments congest independently with the
        given probabilities; logical links inherit congestion from their
        segments (the Figure-2 correlation mechanism)."""
        for segment, probability in segment_probabilities.items():
            check_probability(probability, f"P({segment})")
        return SharedResourceModel(self.resource_map, segment_probabilities)


def fig_2a_lan() -> HiddenSharingScenario:
    """Figure 2(a): a LAN whose Ethernet switch traceroute cannot see.

    Four IP routers ``r1..r4`` hang off one hidden switch ``sw``.  The
    operator's graph has *logical* links router→router; physically each
    logical link crosses two segments (``ri–sw`` up, ``sw–rj`` down).
    Logical links sharing a segment are correlated, so the whole LAN forms
    one correlation set.  External vantage hosts ``a`` and ``b`` each
    reach both ingress routers — two ingress links per router keep the
    instance identifiable (a single ingress would cover exactly the same
    paths as the router's pair of egress LAN links, violating
    Assumption 4; compare Figure 1(b)).
    """
    builder = TopologyBuilder()
    # Access links from vantage hosts into the LAN and out of it.
    builder.add_link("a->r1", "a", "r1")
    builder.add_link("a->r2", "a", "r2")
    builder.add_link("b->r1", "b", "r1")
    builder.add_link("b->r2", "b", "r2")
    builder.add_link("r3->c", "r3", "c")
    builder.add_link("r3->d", "r3", "d")
    builder.add_link("r4->c", "r4", "c")
    builder.add_link("r4->d", "r4", "d")
    # Logical LAN links (through the hidden switch).
    builder.add_link("r1->r3", "r1", "r3")
    builder.add_link("r1->r4", "r1", "r4")
    builder.add_link("r2->r3", "r2", "r3")
    builder.add_link("r2->r4", "r2", "r4")
    # Measurement paths: every vantage × ingress × egress × sink combo.
    index = 1
    for vantage in ("a", "b"):
        for ingress in ("r1", "r2"):
            for egress in ("r3", "r4"):
                for sink in ("c", "d"):
                    builder.add_path(
                        f"P{index}",
                        [
                            f"{vantage}->{ingress}",
                            f"{ingress}->{egress}",
                            f"{egress}->{sink}",
                        ],
                    )
                    index += 1
    topology = builder.build()
    correlation = CorrelationStructure.from_link_names(
        topology,
        [
            ["r1->r3", "r1->r4", "r2->r3", "r2->r4"],  # the LAN
            ["a->r1"],
            ["a->r2"],
            ["b->r1"],
            ["b->r2"],
            ["r3->c"],
            ["r3->d"],
            ["r4->c"],
            ["r4->d"],
        ],
    )
    instance = TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata={"figure": "2a", "hidden_element": "ethernet switch"},
    )
    # Physical segments: each router's leg to the switch, both directions
    # collapsed to one shared segment per router (a congested switch port
    # hits both directions).
    segments = {f"seg_{r}": f"{r}<->sw" for r in ("r1", "r2", "r3", "r4")}
    resource_map = {
        topology.link("r1->r3").id: frozenset({"seg_r1", "seg_r3"}),
        topology.link("r1->r4").id: frozenset({"seg_r1", "seg_r4"}),
        topology.link("r2->r3").id: frozenset({"seg_r2", "seg_r3"}),
        topology.link("r2->r4").id: frozenset({"seg_r2", "seg_r4"}),
        topology.link("a->r1").id: frozenset({"acc_a1"}),
        topology.link("a->r2").id: frozenset({"acc_a2"}),
        topology.link("b->r1").id: frozenset({"acc_b1"}),
        topology.link("b->r2").id: frozenset({"acc_b2"}),
        topology.link("r3->c").id: frozenset({"acc_c3"}),
        topology.link("r3->d").id: frozenset({"acc_d3"}),
        topology.link("r4->c").id: frozenset({"acc_c4"}),
        topology.link("r4->d").id: frozenset({"acc_d4"}),
    }
    return HiddenSharingScenario(
        instance=instance,
        resource_map=resource_map,
        segment_names=segments,
    )


def fig_2b_mpls_domain() -> HiddenSharingScenario:
    """Figure 2(b): an MPLS domain opaque to traceroute.

    Border routers ``b1..b4`` of a neighbour domain; internally, label-
    switched paths cross two hidden MPLS switches ``m1``/``m2`` joined by
    one trunk.  Domain-level logical links between border routers share
    the trunk, correlating the whole domain — the paper's SLA-monitoring
    scenario maps each such domain to one correlation set.
    """
    builder = TopologyBuilder()
    for source in ("s1", "s2"):
        for ingress in ("b1", "b2"):
            builder.add_link(f"{source}->{ingress}", source, ingress)
    for egress in ("b3", "b4"):
        for sink in ("t1", "t2"):
            builder.add_link(f"{egress}->{sink}", egress, sink)
    builder.add_link("b1->b3", "b1", "b3")
    builder.add_link("b1->b4", "b1", "b4")
    builder.add_link("b2->b3", "b2", "b3")
    builder.add_link("b2->b4", "b2", "b4")
    index = 1
    for source in ("s1", "s2"):
        for ingress in ("b1", "b2"):
            for egress in ("b3", "b4"):
                for sink in ("t1", "t2"):
                    builder.add_path(
                        f"P{index}",
                        [
                            f"{source}->{ingress}",
                            f"{ingress}->{egress}",
                            f"{egress}->{sink}",
                        ],
                    )
                    index += 1
    topology = builder.build()
    access_sets = [
        [f"{source}->{ingress}"]
        for source in ("s1", "s2")
        for ingress in ("b1", "b2")
    ] + [
        [f"{egress}->{sink}"]
        for egress in ("b3", "b4")
        for sink in ("t1", "t2")
    ]
    correlation = CorrelationStructure.from_link_names(
        topology,
        [["b1->b3", "b1->b4", "b2->b3", "b2->b4"]] + access_sets,
    )
    instance = TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata={"figure": "2b", "hidden_element": "mpls switches"},
    )
    # Hidden substrate: b1/b2 home to m1, b3/b4 to m2; all domain-level
    # links cross the m1–m2 trunk.
    resource_map = {
        topology.link("b1->b3").id: frozenset({"b1-m1", "trunk", "m2-b3"}),
        topology.link("b1->b4").id: frozenset({"b1-m1", "trunk", "m2-b4"}),
        topology.link("b2->b3").id: frozenset({"b2-m1", "trunk", "m2-b3"}),
        topology.link("b2->b4").id: frozenset({"b2-m1", "trunk", "m2-b4"}),
    }
    for source in ("s1", "s2"):
        for ingress in ("b1", "b2"):
            name = f"{source}->{ingress}"
            resource_map[topology.link(name).id] = frozenset(
                {f"acc_{source}_{ingress}"}
            )
    for egress in ("b3", "b4"):
        for sink in ("t1", "t2"):
            name = f"{egress}->{sink}"
            resource_map[topology.link(name).id] = frozenset(
                {f"acc_{egress}_{sink}"}
            )
    return HiddenSharingScenario(
        instance=instance,
        resource_map=resource_map,
        segment_names={"trunk": "m1<->m2 trunk"},
    )
