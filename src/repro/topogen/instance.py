"""Common return type of topology generators."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.correlation import CorrelationStructure
from repro.core.topology import Topology

__all__ = ["TomographyInstance"]


@dataclass(frozen=True)
class TomographyInstance:
    """A topology paired with its (claimed) correlation structure.

    Attributes:
        topology: The measurement topology.
        correlation: The correlation sets the *operator knows about* — the
            structure handed to the inference algorithm.  Ground truth may
            differ (Figure 5); the ground-truth congestion model carries
            its own structure.
        metadata: Generator-specific extras (AS counts, cluster sizes...).
    """

    topology: Topology
    correlation: CorrelationStructure
    metadata: dict = field(default_factory=dict)

    @property
    def n_links(self) -> int:
        return self.topology.n_links

    @property
    def n_paths(self) -> int:
        return self.topology.n_paths
