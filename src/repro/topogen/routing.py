"""Routing helpers: vantage selection, shortest paths, path sets.

Measurement paths in both evaluation substrates come from shortest-path
routing: AS-level routes in the Brite scenario, traceroute-discovered
router routes in the PlanetLab scenario.  These helpers sample
source/destination pairs, compute routes, and de-duplicate.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import networkx as nx

from repro.exceptions import GenerationError
from repro.utils.rng import as_generator

__all__ = [
    "sample_ordered_pairs",
    "shortest_path_routes",
    "dedupe_routes",
]


def sample_ordered_pairs(
    nodes: Sequence[Hashable],
    n_pairs: int,
    *,
    seed=None,
) -> list[tuple[Hashable, Hashable]]:
    """Sample distinct ordered (src, dst) pairs without replacement.

    Raises :class:`GenerationError` when more pairs are requested than
    exist (``n·(n−1)``).
    """
    nodes = list(nodes)
    n = len(nodes)
    capacity = n * (n - 1)
    if n_pairs > capacity:
        raise GenerationError(
            f"cannot sample {n_pairs} ordered pairs from {n} nodes "
            f"(max {capacity})"
        )
    rng = as_generator(seed)
    # Sample pair indices in [0, n(n-1)) without replacement and decode.
    indices = rng.choice(capacity, size=n_pairs, replace=False)
    pairs = []
    for code in indices:
        src_index, rest = divmod(int(code), n - 1)
        dst_index = rest if rest < src_index else rest + 1
        pairs.append((nodes[src_index], nodes[dst_index]))
    return pairs


def shortest_path_routes(
    graph: nx.Graph,
    pairs: Sequence[tuple[Hashable, Hashable]],
    *,
    weight: str | None = None,
    skip_unreachable: bool = True,
    min_hops: int = 1,
) -> list[list[Hashable]]:
    """Shortest-path node walks for each (src, dst) pair.

    Mirrors the paper's traceroute workflow: pairs with no route (the
    paper's "incomplete traceroute results") are discarded when
    ``skip_unreachable`` is set, otherwise raise.
    """
    routes = []
    for src, dst in pairs:
        try:
            walk = nx.shortest_path(graph, src, dst, weight=weight)
        except nx.NetworkXNoPath:
            if skip_unreachable:
                continue
            raise GenerationError(f"no route from {src!r} to {dst!r}") from None
        if len(walk) - 1 >= min_hops:
            routes.append(list(walk))
    return routes


def dedupe_routes(routes: Sequence[Sequence[Hashable]]) -> list[list[Hashable]]:
    """Drop routes whose node walk duplicates an earlier one."""
    seen: set[tuple] = set()
    unique = []
    for route in routes:
        key = tuple(route)
        if key not in seen:
            seen.add(key)
            unique.append(list(route))
    return unique
