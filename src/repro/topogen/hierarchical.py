"""BRITE-style top-down hierarchical topologies (AS level over routers).

The paper's Brite experiments use *pairs* of AS-level and router-level
topologies: the AS-level graph is the measurement topology, while the
router-level graph determines which AS-level links share physical links
(and hence are correlated).  BRITE's top-down mode generates exactly this
pair; we reimplement it:

1. an AS-level graph (Barabási–Albert by default, Waxman optional);
2. per AS, a small router-level Waxman mesh with a designated *hub*
   (highest-degree router — where the AS's traffic concentrates);
3. per AS-level edge, one inter-AS physical link between a border router
   of each side;
4. each **directed** AS-level link ``(u → v)`` maps to the router-level
   link sequence: hub(u) → border_u (intra-u shortest path), the inter-AS
   physical link, border_v → hub(v) (intra-v shortest path).

Two directed AS links are then correlated exactly when their router-level
sequences share a physical link — e.g. two links leaving the same AS
through partially overlapping internal routes, or the two directions of
one AS adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.exceptions import GenerationError
from repro.topogen.barabasi_albert import barabasi_albert_graph
from repro.topogen.waxman import waxman_graph
from repro.utils.rng import as_generator, spawn_children

__all__ = ["HierarchicalTopology", "generate_hierarchical"]


def _canonical(u, v) -> tuple:
    """Canonical undirected router-edge key."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass(frozen=True)
class HierarchicalTopology:
    """An AS-level graph with its router-level substrate.

    Attributes:
        as_graph: Undirected AS-level graph (nodes: AS ids ``0..n-1``).
        router_graph: Undirected router-level graph; node names are
            ``(as_id, index)`` tuples, each with an ``as_id`` attribute.
        hubs: Per-AS hub router.
        as_link_routes: For each *directed* AS pair ``(u, v)`` adjacent in
            ``as_graph``, the underlying router-level route as a tuple of
            canonical undirected router-edge keys.
    """

    as_graph: nx.Graph
    router_graph: nx.Graph
    hubs: dict[int, tuple]
    as_link_routes: dict[tuple[int, int], tuple] = field(default_factory=dict)

    @property
    def n_ases(self) -> int:
        return self.as_graph.number_of_nodes()

    @property
    def n_routers(self) -> int:
        return self.router_graph.number_of_nodes()

    def shared_resources(
        self, link_a: tuple[int, int], link_b: tuple[int, int]
    ) -> frozenset:
        """Router edges shared by two directed AS links."""
        return frozenset(self.as_link_routes[link_a]) & frozenset(
            self.as_link_routes[link_b]
        )


def generate_hierarchical(
    n_ases: int = 50,
    routers_per_as: int = 6,
    *,
    as_model: str = "ba",
    as_edges_per_node: int = 2,
    as_waxman_alpha: float = 0.4,
    as_waxman_beta: float = 0.2,
    router_waxman_alpha: float = 0.7,
    router_waxman_beta: float = 0.4,
    routing: str = "hub",
    seed=None,
) -> HierarchicalTopology:
    """Generate a BRITE-style two-level topology.

    Args:
        n_ases: AS-level node count.
        routers_per_as: Routers inside each AS.
        as_model: ``"ba"`` (preferential attachment, BRITE's AS default)
            or ``"waxman"``.
        as_edges_per_node: BA attachment parameter ``m``.
        as_waxman_alpha / as_waxman_beta: Waxman parameters when
            ``as_model="waxman"``.
        router_waxman_alpha / router_waxman_beta: Intra-AS router mesh
            Waxman parameters (denser, shorter links than the AS level).
        routing: Where each AS link's intra-AS leg starts.  ``"hub"``
            routes every leg from the AS's best-connected router — heavy
            intra-AS overlap, so the sharing relation chains far (can
            percolate into one giant correlated component).  ``"anchor"``
            draws a random anchor router per adjacency — localized
            overlap, bounded sharing components.
        seed: RNG seed / generator.
    """
    if routers_per_as < 1:
        raise GenerationError(
            f"routers_per_as must be >= 1, got {routers_per_as}"
        )
    if routing not in ("hub", "anchor"):
        raise GenerationError(
            f"routing must be 'hub' or 'anchor', got {routing!r}"
        )
    as_rng, router_rng, border_rng = spawn_children(seed, 3)

    if as_model == "ba":
        as_graph = barabasi_albert_graph(
            n_ases, as_edges_per_node, seed=as_rng
        )
    elif as_model == "waxman":
        as_graph = waxman_graph(
            n_ases,
            alpha=as_waxman_alpha,
            beta=as_waxman_beta,
            seed=as_rng,
        )
    else:
        raise GenerationError(
            f"as_model must be 'ba' or 'waxman', got {as_model!r}"
        )

    # --- Intra-AS router meshes ---------------------------------------
    router_graph = nx.Graph()
    hubs: dict[int, tuple] = {}
    intra: dict[int, nx.Graph] = {}
    for as_id in range(n_ases):
        if routers_per_as == 1:
            mesh = nx.Graph()
            mesh.add_node(0)
        else:
            mesh = waxman_graph(
                routers_per_as,
                alpha=router_waxman_alpha,
                beta=router_waxman_beta,
                seed=router_rng,
            )
        intra[as_id] = mesh
        for router in mesh.nodes:
            router_graph.add_node((as_id, router), as_id=as_id)
        for u, v in mesh.edges:
            router_graph.add_edge((as_id, u), (as_id, v))
        # Hub: the best-connected router (traffic concentration point).
        hub_router = max(
            mesh.nodes, key=lambda r: (mesh.degree[r], -r)
        )
        hubs[as_id] = (as_id, hub_router)

    # --- Inter-AS physical links and directed AS-link routes -----------
    as_link_routes: dict[tuple[int, int], tuple] = {}
    for as_u, as_v in as_graph.edges:
        border_u = (
            as_u,
            int(border_rng.integers(intra[as_u].number_of_nodes())),
        )
        border_v = (
            as_v,
            int(border_rng.integers(intra[as_v].number_of_nodes())),
        )
        router_graph.add_edge(border_u, border_v)
        if routing == "hub":
            start_u = hubs[as_u][1]
            end_v = hubs[as_v][1]
        else:
            start_u = int(
                border_rng.integers(intra[as_u].number_of_nodes())
            )
            end_v = int(
                border_rng.integers(intra[as_v].number_of_nodes())
            )
        # Intra-AS legs are routed on the AS's own mesh (local labels) so
        # they can never stray through another AS's routers.
        route_u = [
            (as_u, r)
            for r in nx.shortest_path(intra[as_u], start_u, border_u[1])
        ]
        route_v = [
            (as_v, r)
            for r in nx.shortest_path(intra[as_v], border_v[1], end_v)
        ]
        forward: list[tuple] = []
        for a, b in zip(route_u, route_u[1:]):
            forward.append(_canonical(a, b))
        forward.append(_canonical(border_u, border_v))
        for a, b in zip(route_v, route_v[1:]):
            forward.append(_canonical(a, b))
        as_link_routes[(as_u, as_v)] = tuple(forward)
        as_link_routes[(as_v, as_u)] = tuple(reversed(forward))

    return HierarchicalTopology(
        as_graph=as_graph,
        router_graph=router_graph,
        hubs=hubs,
        as_link_routes=as_link_routes,
    )
