"""Barabási–Albert preferential attachment (BRITE's AS-level model).

BRITE generates AS-level topologies with incremental growth and
preferential connectivity: each new node attaches ``m`` edges to existing
nodes with probability proportional to their current degree, reproducing
the heavy-tailed degree distributions observed in the AS graph.

Implemented from scratch (repeated-endpoint sampling, the standard
efficient realisation): every accepted edge endpoint is appended to a
ballot list, so drawing a uniform ballot is exactly degree-proportional
sampling.
"""

from __future__ import annotations

import networkx as nx

from repro.exceptions import GenerationError
from repro.utils.rng import as_generator

__all__ = ["barabasi_albert_graph"]


def barabasi_albert_graph(
    n_nodes: int,
    m_edges: int = 2,
    *,
    seed=None,
) -> nx.Graph:
    """Generate a BA preferential-attachment graph.

    Args:
        n_nodes: Final node count (labelled ``0..n-1``).
        m_edges: Edges added per new node (also the size of the connected
            seed clique-path).
        seed: RNG seed / generator.

    Returns:
        A connected undirected graph.
    """
    if m_edges < 1:
        raise GenerationError(f"m_edges must be >= 1, got {m_edges}")
    if n_nodes <= m_edges:
        raise GenerationError(
            f"need n_nodes > m_edges, got n={n_nodes}, m={m_edges}"
        )
    rng = as_generator(seed)

    graph = nx.Graph()
    # Seed: a path over the first m+1 nodes (connected, minimal bias).
    for node in range(m_edges + 1):
        graph.add_node(node)
    ballots: list[int] = []
    for node in range(1, m_edges + 1):
        graph.add_edge(node - 1, node)
        ballots.extend((node - 1, node))

    for node in range(m_edges + 1, n_nodes):
        targets: set[int] = set()
        while len(targets) < m_edges:
            pick = ballots[int(rng.integers(len(ballots)))]
            targets.add(pick)
        graph.add_node(node)
        for target in targets:
            graph.add_edge(node, target)
            ballots.extend((node, target))
    return graph
