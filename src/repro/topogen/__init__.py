"""Topology generators: toys, Brite-style hierarchies, PlanetLab meshes."""

from repro.topogen.barabasi_albert import barabasi_albert_graph
from repro.topogen.brite import BriteScenario, generate_brite
from repro.topogen.hierarchical import (
    HierarchicalTopology,
    generate_hierarchical,
)
from repro.topogen.instance import TomographyInstance
from repro.topogen.planetlab import (
    contiguous_link_clusters,
    generate_planetlab,
)
from repro.topogen.routing import (
    dedupe_routes,
    sample_ordered_pairs,
    shortest_path_routes,
)
from repro.topogen.toy import (
    HiddenSharingScenario,
    fig_1a,
    fig_1b,
    fig_2a_lan,
    fig_2b_mpls_domain,
)
from repro.topogen.waxman import waxman_graph

__all__ = [
    "TomographyInstance",
    "fig_1a",
    "fig_1b",
    "fig_2a_lan",
    "fig_2b_mpls_domain",
    "HiddenSharingScenario",
    "waxman_graph",
    "barabasi_albert_graph",
    "HierarchicalTopology",
    "generate_hierarchical",
    "BriteScenario",
    "generate_brite",
    "generate_planetlab",
    "contiguous_link_clusters",
    "sample_ordered_pairs",
    "shortest_path_routes",
    "dedupe_routes",
]
