"""PlanetLab-style evaluation scenario: a traceroute mesh with clustered
correlation sets.

The paper's PlanetLab topologies come from running traceroute between
PlanetLab hosts, keeping complete routes, and assigning links to
correlation sets "such that each correlation set consisted of a contiguous
cluster of links" (modelling a LAN or administrative domain).  PlanetLab
is not available offline; we synthesise the same structure:

* an Internet-like router graph (Waxman by default, BA optional);
* vantage nodes playing the PlanetLab hosts, preferring low-degree
  (edge-like) nodes;
* shortest-path routes between sampled vantage pairs (the traceroute
  mesh), de-duplicated — paths with no route are discarded exactly like
  the paper's incomplete traceroutes;
* correlation sets grown as contiguous link clusters: starting from a
  seed link, a BFS over link adjacency (links sharing an endpoint)
  absorbs unassigned links up to the cluster size.

The substitution preserves what the algorithms actually consume: a mesh
of overlapping multi-hop paths whose links are correlated in contiguous
clumps.
"""

from __future__ import annotations

from collections import deque

from repro.core.builder import TopologyBuilder
from repro.core.correlation import CorrelationStructure
from repro.exceptions import GenerationError
from repro.topogen.barabasi_albert import barabasi_albert_graph
from repro.topogen.instance import TomographyInstance
from repro.topogen.routing import (
    dedupe_routes,
    sample_ordered_pairs,
    shortest_path_routes,
)
from repro.topogen.waxman import waxman_graph
from repro.utils.rng import spawn_children

__all__ = ["generate_planetlab", "contiguous_link_clusters"]


def contiguous_link_clusters(
    topology,
    *,
    cluster_size_range: tuple[int, int] = (2, 6),
    cluster_fraction: float = 1.0,
    seed=None,
) -> CorrelationStructure:
    """Partition links into contiguous clusters (plus leftover singletons).

    Args:
        topology: The topology whose links get clustered.
        cluster_size_range: Inclusive (min, max) target cluster size; the
            actual size may fall short when a seed link's neighbourhood is
            exhausted.
        cluster_fraction: Fraction of links to place into (multi-link)
            clusters; the rest become singleton sets (the "otherwise
            uncorrelated" links that Figure 5's worm later targets).
        seed: RNG seed / generator.
    """
    low, high = cluster_size_range
    if low < 1 or high < low:
        raise GenerationError(
            f"invalid cluster_size_range {cluster_size_range}"
        )
    (rng,) = spawn_children(seed, 1)

    # Link adjacency: links touching a common node are neighbours.
    by_node: dict[object, list[int]] = {}
    for link in topology.links:
        by_node.setdefault(link.src, []).append(link.id)
        by_node.setdefault(link.dst, []).append(link.id)
    neighbours: list[set[int]] = [set() for _ in range(topology.n_links)]
    for members in by_node.values():
        for a in members:
            for b in members:
                if a != b:
                    neighbours[a].add(b)

    unassigned = set(range(topology.n_links))
    target_clustered = round(cluster_fraction * topology.n_links)
    clustered = 0
    sets: list[set[int]] = []
    order = list(range(topology.n_links))
    rng.shuffle(order)
    for seed_link in order:
        if clustered >= target_clustered:
            break
        if seed_link not in unassigned:
            continue
        size = int(rng.integers(low, high + 1))
        cluster = {seed_link}
        unassigned.discard(seed_link)
        frontier = deque([seed_link])
        while frontier and len(cluster) < size:
            current = frontier.popleft()
            candidates = sorted(neighbours[current] & unassigned)
            rng.shuffle(candidates)
            for nxt in candidates:
                if len(cluster) >= size:
                    break
                cluster.add(nxt)
                unassigned.discard(nxt)
                frontier.append(nxt)
        sets.append(cluster)
        clustered += len(cluster)
    for leftover in sorted(unassigned):
        sets.append({leftover})
    return CorrelationStructure(topology, sets)


def generate_planetlab(
    n_routers: int = 300,
    n_vantages: int = 25,
    n_paths: int = 200,
    *,
    graph_model: str = "waxman",
    waxman_alpha: float = 0.12,
    waxman_beta: float = 0.3,
    ba_edges_per_node: int = 2,
    cluster_size_range: tuple[int, int] = (2, 6),
    cluster_fraction: float = 0.7,
    seed=None,
) -> TomographyInstance:
    """Generate a PlanetLab-style tomography instance.

    Args:
        n_routers: Size of the synthetic router graph.
        n_vantages: PlanetLab-host stand-ins probing each other.
        n_paths: Target number of kept traceroute paths (paper: 1500 over
            ~2000 links; defaults are laptop scale).
        graph_model: ``"waxman"`` or ``"ba"`` router graph.
        waxman_alpha / waxman_beta: Waxman parameters (sparse defaults so
            shortest paths are several hops long, like real traceroutes).
        ba_edges_per_node: BA attachment parameter.
        cluster_size_range: Correlation-cluster sizes.
        cluster_fraction: Fraction of links placed in multi-link clusters.
        seed: RNG seed / generator.
    """
    graph_rng, vantage_rng, pair_rng, cluster_rng = spawn_children(seed, 4)
    if graph_model == "waxman":
        graph = waxman_graph(
            n_routers, alpha=waxman_alpha, beta=waxman_beta, seed=graph_rng
        )
    elif graph_model == "ba":
        graph = barabasi_albert_graph(
            n_routers, ba_edges_per_node, seed=graph_rng
        )
    else:
        raise GenerationError(
            f"graph_model must be 'waxman' or 'ba', got {graph_model!r}"
        )

    if n_vantages < 2:
        raise GenerationError(f"need >= 2 vantages, got {n_vantages}")
    if n_vantages > n_routers:
        raise GenerationError(
            f"cannot place {n_vantages} vantages on {n_routers} routers"
        )
    # Prefer low-degree nodes: PlanetLab hosts sit at the network edge.
    by_degree = sorted(graph.nodes, key=lambda v: (graph.degree[v], v))
    pool = by_degree[: max(n_vantages * 3, n_vantages)]
    picks = vantage_rng.choice(len(pool), size=n_vantages, replace=False)
    vantages = [pool[int(i)] for i in picks]

    capacity = n_vantages * (n_vantages - 1)
    n_pairs = min(capacity, max(n_paths + n_paths // 4, n_paths + 8))
    pairs = sample_ordered_pairs(vantages, n_pairs, seed=pair_rng)
    routes = dedupe_routes(
        shortest_path_routes(graph, pairs, min_hops=2)
    )
    if not routes:
        raise GenerationError(
            "no usable routes between vantages; densify the graph"
        )
    routes = routes[:n_paths]

    builder = TopologyBuilder()
    for index, route in enumerate(routes):
        link_names = []
        for src, dst in zip(route, route[1:]):
            link = builder.ensure_link(f"r{src}->r{dst}", src, dst)
            link_names.append(link.name)
        builder.add_path(f"P{index + 1}", link_names)
    topology = builder.build()

    correlation = contiguous_link_clusters(
        topology,
        cluster_size_range=cluster_size_range,
        cluster_fraction=cluster_fraction,
        seed=cluster_rng,
    )
    return TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata={
            "generator": "planetlab",
            "n_routers": n_routers,
            "n_vantages": n_vantages,
            "requested_paths": n_paths,
            "graph_model": graph_model,
            "cluster_size_range": cluster_size_range,
            "cluster_fraction": cluster_fraction,
        },
    )
