"""Brite evaluation scenario: AS-level tomography over a router substrate.

Reproduces the paper's Section-5 "Brite topologies" workflow:

* generate a pair of AS-level / router-level topologies (top-down
  hierarchy, :mod:`repro.topogen.hierarchical`);
* the AS-level graph becomes the measurement topology, with paths routed
  between random AS pairs;
* every AS-level link maps to its router-level link sequence;
* two AS-level links are *correlated iff they share at least one
  router-level link* — correlation sets are the connected components of
  that sharing relation (each component sits inside one administrative
  neighbourhood, the paper's "correlation set corresponds to an
  administrative domain" reading);
* congestion ground truth can be generated *organically*: router-level
  links get congestion probabilities, AS-level links inherit congestion
  whenever an underlying router link congests
  (:meth:`BriteScenario.make_organic_model`).

The controlled Figure-3 congestion knobs (exact congested fraction,
links-per-set clustering) live in :mod:`repro.eval.scenario` and operate
on the instance produced here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import TopologyBuilder
from repro.core.correlation import CorrelationStructure
from repro.exceptions import GenerationError
from repro.model.network import NetworkCongestionModel
from repro.model.shared_resource import SharedResourceModel
from repro.topogen.hierarchical import (
    HierarchicalTopology,
    generate_hierarchical,
)
from repro.topogen.instance import TomographyInstance
from repro.topogen.routing import (
    dedupe_routes,
    sample_ordered_pairs,
    shortest_path_routes,
)
from repro.utils.rng import as_generator, spawn_children
from repro.utils.validation import check_fraction

__all__ = ["BriteScenario", "generate_brite"]


class _UnionFind:
    """Minimal union–find for grouping links into sharing components."""

    def __init__(self, size: int) -> None:
        self._parent = list(range(size))

    def find(self, x: int) -> int:
        while self._parent[x] != x:
            self._parent[x] = self._parent[self._parent[x]]
            x = self._parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


@dataclass(frozen=True)
class BriteScenario:
    """A generated Brite instance plus its hidden substrate.

    Attributes:
        instance: Measurement topology + sharing-derived correlation.
        hierarchy: The two-level topology it was generated from.
        resource_map: ``{link_id: frozenset of router-level edge keys}``.
    """

    instance: TomographyInstance
    hierarchy: HierarchicalTopology
    resource_map: dict[int, frozenset]

    def make_organic_model(
        self,
        *,
        congested_resource_fraction: float = 0.1,
        resource_probability_range: tuple[float, float] = (0.1, 0.7),
        seed=None,
    ) -> NetworkCongestionModel:
        """Organic ground truth: congestion assigned at the router level.

        A ``congested_resource_fraction`` of router-level links receive a
        congestion probability drawn uniformly from
        ``resource_probability_range``; the rest never congest.  AS-level
        links inherit congestion through their resource sets (the paper's
        derivation of AS-level probabilities "accordingly").
        """
        check_fraction(
            congested_resource_fraction, "congested_resource_fraction"
        )
        low, high = resource_probability_range
        rng = as_generator(seed)
        all_resources = sorted(
            {r for resources in self.resource_map.values() for r in resources},
            key=str,
        )
        n_congested = round(congested_resource_fraction * len(all_resources))
        congested = set(
            tuple(all_resources[i])
            for i in rng.choice(
                len(all_resources), size=n_congested, replace=False
            )
        )
        probabilities = {
            resource: (
                float(rng.uniform(low, high))
                if tuple(resource) in congested
                else 0.0
            )
            for resource in all_resources
        }
        correlation = self.instance.correlation
        models = []
        for group in correlation.sets:
            group_resources = {
                resource
                for link_id in group
                for resource in self.resource_map[link_id]
            }
            models.append(
                SharedResourceModel(
                    {
                        link_id: self.resource_map[link_id]
                        for link_id in group
                    },
                    {
                        resource: probabilities[resource]
                        for resource in group_resources
                    },
                )
            )
        return NetworkCongestionModel(correlation, models)


def generate_brite(
    n_ases: int = 50,
    routers_per_as: int = 6,
    n_paths: int = 200,
    *,
    as_model: str = "ba",
    as_edges_per_node: int = 2,
    correlation_mode: str = "cluster",
    routing: str = "hub",
    seed=None,
) -> BriteScenario:
    """Generate a Brite evaluation scenario.

    Args:
        n_ases: AS count of the AS-level graph.
        routers_per_as: Router mesh size inside each AS.
        n_paths: Target number of measurement paths (the paper uses 1500;
            defaults are laptop scale — pass paper-scale values to match).
        as_model: AS-level generative model (``"ba"`` or ``"waxman"``).
        as_edges_per_node: BA attachment parameter.
        correlation_mode: How links group into correlation sets.
            ``"cluster"`` (default) groups links into bounded contiguous
            clusters around shared ASes — the regime of the paper's
            evaluation, where consecutive AS-level links of a path are
            correlated because they share the transit AS's internal
            routers.  ``"domain"`` follows the Section-3.3 operator
            shorthand — each directed AS link joins the cluster of one of
            its endpoint domains (balanced assignment) — which yields
            bounded sets but rarely puts two links of one *path* in the
            same set.  ``"sharing"`` derives sets exactly as connected
            components of the router-link sharing relation (the paper's
            Section-5 ground criterion); note that with hub-concentrated
            routing this relation percolates into very large components.
        seed: RNG seed / generator.
    """
    if correlation_mode not in ("cluster", "domain", "sharing"):
        raise GenerationError(
            "correlation_mode must be 'cluster', 'domain' or 'sharing', "
            f"got {correlation_mode!r}"
        )
    hierarchy_rng, pair_rng, cluster_rng = spawn_children(seed, 3)
    hierarchy = generate_hierarchical(
        n_ases,
        routers_per_as,
        as_model=as_model,
        as_edges_per_node=as_edges_per_node,
        routing=routing,
        seed=hierarchy_rng,
    )

    capacity = n_ases * (n_ases - 1)
    n_pairs = min(capacity, max(n_paths + n_paths // 4, n_paths + 8))
    pairs = sample_ordered_pairs(
        range(n_ases), n_pairs, seed=pair_rng
    )
    routes = dedupe_routes(
        shortest_path_routes(hierarchy.as_graph, pairs, min_hops=2)
    )
    if len(routes) < n_paths:
        routes = dedupe_routes(
            shortest_path_routes(hierarchy.as_graph, pairs, min_hops=1)
        )
    if not routes:
        raise GenerationError(
            "no usable AS-level routes; increase n_ases or n_paths"
        )
    routes = routes[:n_paths]

    builder = TopologyBuilder()
    for index, route in enumerate(routes):
        link_names = []
        for src, dst in zip(route, route[1:]):
            link = builder.ensure_link(f"AS{src}->AS{dst}", src, dst)
            link_names.append(link.name)
        builder.add_path(f"P{index + 1}", link_names)
    topology = builder.build()

    # Resource map: each used directed AS link -> its router-edge set.
    resource_map: dict[int, frozenset] = {}
    for link in topology.links:
        resource_map[link.id] = frozenset(
            hierarchy.as_link_routes[(link.src, link.dst)]
        )

    if correlation_mode == "cluster":
        from repro.topogen.planetlab import contiguous_link_clusters

        correlation = contiguous_link_clusters(
            topology,
            cluster_size_range=(2, 6),
            cluster_fraction=0.8,
            seed=cluster_rng,
        )
    elif correlation_mode == "sharing":
        # Correlation sets = connected components of resource sharing.
        union_find = _UnionFind(topology.n_links)
        owner_of_resource: dict[tuple, int] = {}
        for link_id, resources in resource_map.items():
            for resource in resources:
                if resource in owner_of_resource:
                    union_find.union(owner_of_resource[resource], link_id)
                else:
                    owner_of_resource[resource] = link_id
        components: dict[int, set[int]] = {}
        for link_id in range(topology.n_links):
            components.setdefault(union_find.find(link_id), set()).add(
                link_id
            )
        correlation = CorrelationStructure(topology, components.values())
    else:
        # Domain mode: every directed AS link joins the cluster of one of
        # its endpoint domains, balancing cluster sizes (rng tie-break).
        clusters: dict[int, set[int]] = {}
        order = list(range(topology.n_links))
        cluster_rng.shuffle(order)
        for link_id in order:
            link = topology.links[link_id]
            side_src = clusters.setdefault(link.src, set())
            side_dst = clusters.setdefault(link.dst, set())
            if len(side_src) < len(side_dst):
                side_src.add(link_id)
            elif len(side_dst) < len(side_src):
                side_dst.add(link_id)
            elif cluster_rng.random() < 0.5:
                side_src.add(link_id)
            else:
                side_dst.add(link_id)
        correlation = CorrelationStructure(
            topology,
            [group for group in clusters.values() if group],
        )

    instance = TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata={
            "generator": "brite",
            "n_ases": n_ases,
            "routers_per_as": routers_per_as,
            "as_model": as_model,
            "correlation_mode": correlation_mode,
            "requested_paths": n_paths,
        },
    )
    return BriteScenario(
        instance=instance,
        hierarchy=hierarchy,
        resource_map=resource_map,
    )
