"""Serialization of tomography instances (JSON).

Generated instances (Brite hierarchies, PlanetLab meshes) are expensive
to rebuild and impossible to reproduce without the exact generator
version and seed; persisting them lets experiments pin their inputs.
The format is deliberately plain JSON — diffable, versioned, and
readable by other tooling:

.. code-block:: json

    {
      "format": "repro-instance",
      "version": 1,
      "links":  [{"name": "e1", "src": "v3", "dst": "v1"}, ...],
      "paths":  [{"name": "P1", "links": ["e3", "e1"]}, ...],
      "correlation_sets": [["e1", "e2"], ["e3"], ["e4"]],
      "metadata": {...}
    }

Node identifiers are serialised with ``repr``-free JSON coercion: strings
and integers round-trip exactly; other hashables are stringified (the
topology semantics only need equality, which stringified ids preserve
within one file).
"""

from __future__ import annotations

import json
import pathlib

from repro.core.correlation import CorrelationStructure
from repro.core.link import Link, Path
from repro.core.topology import Topology
from repro.exceptions import TopologyError
from repro.topogen.instance import TomographyInstance

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
]

_FORMAT = "repro-instance"
_VERSION = 1


def _coerce_node(node) -> "str | int":
    if isinstance(node, (str, int)):
        return node
    return str(node)


def instance_to_dict(instance: TomographyInstance) -> dict:
    """Convert an instance into the JSON-ready dictionary form."""
    topology = instance.topology
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "links": [
            {
                "name": link.name,
                "src": _coerce_node(link.src),
                "dst": _coerce_node(link.dst),
            }
            for link in topology.links
        ],
        "paths": [
            {
                "name": path.name,
                "links": [
                    topology.links[k].name for k in path.link_ids
                ],
            }
            for path in topology.paths
        ],
        "correlation_sets": [
            sorted(topology.links[k].name for k in group)
            for group in instance.correlation.sets
        ],
        "metadata": _jsonable_metadata(instance.metadata),
    }


def _jsonable_metadata(metadata: dict) -> dict:
    """Best-effort metadata coercion: drop entries JSON cannot carry."""
    cleaned = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except TypeError:
            cleaned[str(key)] = str(value)
        else:
            cleaned[str(key)] = value
    return cleaned


def instance_from_dict(payload: dict) -> TomographyInstance:
    """Rebuild an instance from its dictionary form.

    Raises :class:`TopologyError` on format mismatches; structural
    violations (duplicate names, non-contiguous paths, non-partition
    correlation sets) surface through the normal constructors.
    """
    if payload.get("format") != _FORMAT:
        raise TopologyError(
            f"not a {_FORMAT} document (format="
            f"{payload.get('format')!r})"
        )
    if payload.get("version") != _VERSION:
        raise TopologyError(
            f"unsupported {_FORMAT} version {payload.get('version')!r}"
        )
    links = [
        Link(
            id=index,
            name=entry["name"],
            src=entry["src"],
            dst=entry["dst"],
        )
        for index, entry in enumerate(payload["links"])
    ]
    name_to_id = {link.name: link.id for link in links}
    paths = [
        Path(
            id=index,
            name=entry["name"],
            link_ids=tuple(
                name_to_id[link_name] for link_name in entry["links"]
            ),
        )
        for index, entry in enumerate(payload["paths"])
    ]
    topology = Topology(links, paths)
    correlation = CorrelationStructure(
        topology,
        [
            [name_to_id[name] for name in group]
            for group in payload["correlation_sets"]
        ],
    )
    return TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata=dict(payload.get("metadata", {})),
    )


def save_instance(instance: TomographyInstance, path) -> None:
    """Write an instance to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(instance_to_dict(instance), indent=2, sort_keys=True)
        + "\n"
    )


def load_instance(path) -> TomographyInstance:
    """Read an instance from a JSON file."""
    path = pathlib.Path(path)
    return instance_from_dict(json.loads(path.read_text()))
