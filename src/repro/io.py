"""Serialization of tomography instances (JSON).

Generated instances (Brite hierarchies, PlanetLab meshes) are expensive
to rebuild and impossible to reproduce without the exact generator
version and seed; persisting them lets experiments pin their inputs.
The format is deliberately plain JSON — diffable, versioned, and
readable by other tooling:

.. code-block:: json

    {
      "format": "repro-instance",
      "version": 1,
      "links":  [{"name": "e1", "src": "v3", "dst": "v1"}, ...],
      "paths":  [{"name": "P1", "links": ["e3", "e1"]}, ...],
      "correlation_sets": [["e1", "e2"], ["e3"], ["e4"]],
      "metadata": {...}
    }

Node identifiers are serialised with ``repr``-free JSON coercion: strings
and integers round-trip exactly; other hashables are stringified (the
topology semantics only need equality, which stringified ids preserve
within one file).
"""

from __future__ import annotations

import hashlib
import json
import pathlib

from repro.core.correlation import CorrelationStructure
from repro.core.link import Link, Path
from repro.core.topology import Topology
from repro.exceptions import TopologyError
from repro.topogen.instance import TomographyInstance

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "canonical_json",
    "instance_fingerprint",
]

_FORMAT = "repro-instance"
_VERSION = 1


def _coerce_node(node) -> "str | int":
    if isinstance(node, (str, int)):
        return node
    return str(node)


def instance_to_dict(instance: TomographyInstance) -> dict:
    """Convert an instance into the JSON-ready dictionary form."""
    topology = instance.topology
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "links": [
            {
                "name": link.name,
                "src": _coerce_node(link.src),
                "dst": _coerce_node(link.dst),
            }
            for link in topology.links
        ],
        "paths": [
            {
                "name": path.name,
                "links": [
                    topology.links[k].name for k in path.link_ids
                ],
            }
            for path in topology.paths
        ],
        "correlation_sets": [
            sorted(topology.links[k].name for k in group)
            for group in instance.correlation.sets
        ],
        "metadata": _jsonable_metadata(instance.metadata),
    }


def _jsonable_metadata(metadata: dict) -> dict:
    """Best-effort metadata coercion: drop entries JSON cannot carry."""
    cleaned = {}
    for key, value in metadata.items():
        try:
            json.dumps(value)
        except TypeError:
            cleaned[str(key)] = str(value)
        else:
            cleaned[str(key)] = value
    return cleaned


def instance_from_dict(payload: dict) -> TomographyInstance:
    """Rebuild an instance from its dictionary form.

    Raises :class:`TopologyError` on format mismatches; structural
    violations (duplicate names, non-contiguous paths, non-partition
    correlation sets) surface through the normal constructors.
    """
    if payload.get("format") != _FORMAT:
        raise TopologyError(
            f"not a {_FORMAT} document (format="
            f"{payload.get('format')!r})"
        )
    if payload.get("version") != _VERSION:
        raise TopologyError(
            f"unsupported {_FORMAT} version {payload.get('version')!r}"
        )
    links = [
        Link(
            id=index,
            name=entry["name"],
            src=entry["src"],
            dst=entry["dst"],
        )
        for index, entry in enumerate(payload["links"])
    ]
    name_to_id = {link.name: link.id for link in links}
    paths = [
        Path(
            id=index,
            name=entry["name"],
            link_ids=tuple(
                name_to_id[link_name] for link_name in entry["links"]
            ),
        )
        for index, entry in enumerate(payload["paths"])
    ]
    topology = Topology(links, paths)
    correlation = CorrelationStructure(
        topology,
        [
            [name_to_id[name] for name in group]
            for group in payload["correlation_sets"]
        ],
    )
    return TomographyInstance(
        topology=topology,
        correlation=correlation,
        metadata=dict(payload.get("metadata", {})),
    )


def save_instance(instance: TomographyInstance, path) -> None:
    """Write an instance to a JSON file."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(instance_to_dict(instance), indent=2, sort_keys=True)
        + "\n"
    )


def load_instance(path) -> TomographyInstance:
    """Read an instance from a JSON file."""
    path = pathlib.Path(path)
    return instance_from_dict(json.loads(path.read_text()))


def _canonical_default(value):
    """Lossless coercion for the non-native types cache keys carry.

    Anything else raises: a lossy fallback (``str`` elides large numpy
    arrays, for example) could hash distinct payloads equal, which for a
    content address is corruption, not convenience.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dep
        np = None
    if np is not None:
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, np.generic):
            return value.item()
    raise TypeError(
        f"canonical_json cannot encode {type(value).__name__} losslessly"
    )


def canonical_json(payload) -> str:
    """Deterministic, lossless JSON encoding for content addressing.

    Sorted keys, no insignificant whitespace; numpy arrays/scalars
    convert exactly, and any other non-JSON-native value raises rather
    than degrading to a possibly-eliding ``str`` — so equal payloads
    always hash equal and unequal payloads never collide by truncation.
    Tuples serialise as lists, which is fine for hashing: no caller
    round-trips this form back into Python objects.
    """
    return json.dumps(
        payload,
        sort_keys=True,
        separators=(",", ":"),
        default=_canonical_default,
    )


def instance_fingerprint(instance: TomographyInstance) -> str:
    """Stable content hash of an instance (links, paths, correlation).

    Built on :func:`instance_to_dict`, so two instances that serialise
    identically — regardless of how they were generated — share a
    fingerprint.  Generator metadata is included: it records the knobs
    (AS counts, cluster sizes, seeds) that produced the instance, and
    distinct metadata conservatively yields distinct fingerprints.  The
    trial-result cache (:mod:`repro.eval.cache`) uses this as the
    instance component of its keys.
    """
    payload = canonical_json(instance_to_dict(instance))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
