"""Network-state enumeration for the exact theorem algorithm.

A *network state* ``S_n`` assigns to every correlation set ``Cp`` the subset
``S_n^p ⊆ Cp`` of its links that are congested (paper Appendix A.1).  The
theorem algorithm repeatedly needs all states whose congested-path set
matches a target:  ``{ S_n | ψ(S_n) = ψ(A) }``.

:func:`iter_exact_covers` implements that search generically: given, per
correlation set, the list of candidate subsets (each with its coverage
mask), it yields every combination whose masks OR to exactly the target.
A suffix-reachability prune keeps the search from exploding on states that
can no longer complete the cover.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import TypeVar

from repro.utils.bitset import subset_of

__all__ = ["StateCandidate", "iter_exact_covers"]

T = TypeVar("T")

#: A candidate choice for one correlation set: (payload, coverage mask).
#: The payload is opaque to the search (the theorem algorithm passes the
#: subset's frozenset; the oracle passes model support atoms).
StateCandidate = tuple[T, int]


def iter_exact_covers(
    target_mask: int,
    per_set_candidates: Sequence[Sequence[StateCandidate]],
) -> Iterator[tuple]:
    """Yield every combination of per-set candidates covering the target.

    Args:
        target_mask: The path bitmask ``ψ(A)`` that the union of the chosen
            candidates' masks must equal exactly.
        per_set_candidates: For each correlation set, the admissible
            ``(payload, mask)`` choices.  Candidates whose mask is not a
            subset of ``target_mask`` are skipped (they would cover a path
            outside the target, contradicting ``ψ(S_n) = ψ(A)``).

    Yields:
        Tuples of payloads, one per correlation set, in input order.
    """
    filtered: list[list[StateCandidate]] = []
    for candidates in per_set_candidates:
        admissible = [
            (payload, mask)
            for payload, mask in candidates
            if subset_of(mask, target_mask)
        ]
        if not admissible:
            # No admissible choice for this set (not even the empty subset
            # was offered): no state can match.
            return
        filtered.append(admissible)

    n_sets = len(filtered)
    # suffix_reach[p] = OR of every admissible mask from set p onwards;
    # used to prune branches that can no longer complete the cover.
    suffix_reach = [0] * (n_sets + 1)
    for p in range(n_sets - 1, -1, -1):
        combined = 0
        for _, mask in filtered[p]:
            combined |= mask
        suffix_reach[p] = suffix_reach[p + 1] | combined

    if not subset_of(target_mask, suffix_reach[0]):
        return

    chosen: list = [None] * n_sets

    def descend(p: int, covered: int) -> Iterator[tuple]:
        if p == n_sets:
            if covered == target_mask:
                yield tuple(chosen)
            return
        remaining = target_mask & ~covered
        if not subset_of(remaining, suffix_reach[p]):
            return
        for payload, mask in filtered[p]:
            chosen[p] = payload
            yield from descend(p + 1, covered | mask)
        chosen[p] = None

    yield from descend(0, 0)
