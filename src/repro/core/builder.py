"""Fluent construction of topologies.

``Topology`` is immutable and validates eagerly, which makes incremental
construction awkward; :class:`TopologyBuilder` accumulates links and paths
with human-readable names and assembles the validated object at the end.

Example (the paper's Figure 1(a) topology)::

    builder = TopologyBuilder()
    builder.add_link("e1", "v4", "v3")
    builder.add_link("e2", "v4", "v3b")   # parallel logical links are fine
    ...
    builder.add_path("P1", ["e1", "e3"])
    topology = builder.build()

Paths may also be declared as node sequences (``add_path_via_nodes``) when
each consecutive node pair is joined by exactly one link, which is the
common case for generated topologies.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Hashable

from repro.core.link import Link, Path
from repro.core.topology import Topology
from repro.exceptions import TopologyError

__all__ = ["TopologyBuilder"]


class TopologyBuilder:
    """Accumulates links and paths, then builds a validated Topology."""

    def __init__(self) -> None:
        self._links: list[Link] = []
        self._link_by_name: dict[str, Link] = {}
        self._link_by_endpoints: dict[tuple[Hashable, Hashable], list[Link]] = {}
        self._paths: list[Path] = []
        self._path_names: set[str] = set()

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def add_link(self, name: str, src: Hashable, dst: Hashable) -> Link:
        """Register a directed logical link and return it.

        Raises :class:`TopologyError` on duplicate names.
        """
        if name in self._link_by_name:
            raise TopologyError(f"duplicate link name {name!r}")
        link = Link(id=len(self._links), name=name, src=src, dst=dst)
        self._links.append(link)
        self._link_by_name[name] = link
        self._link_by_endpoints.setdefault((src, dst), []).append(link)
        return link

    def has_link(self, name: str) -> bool:
        return name in self._link_by_name

    def link(self, name: str) -> Link:
        try:
            return self._link_by_name[name]
        except KeyError:
            raise TopologyError(f"no link named {name!r}") from None

    def ensure_link(self, name: str, src: Hashable, dst: Hashable) -> Link:
        """Return the named link, creating it on first use.

        Convenience for generators that discover the same logical link on
        many routed paths (the traceroute workflow of the paper's PlanetLab
        experiments).
        """
        if name in self._link_by_name:
            existing = self._link_by_name[name]
            if (existing.src, existing.dst) != (src, dst):
                raise TopologyError(
                    f"link {name!r} already exists with endpoints "
                    f"({existing.src!r}, {existing.dst!r}), not "
                    f"({src!r}, {dst!r})"
                )
            return existing
        return self.add_link(name, src, dst)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def add_path(self, name: str, link_names: Sequence[str]) -> Path:
        """Register a path as an ordered sequence of link names."""
        if name in self._path_names:
            raise TopologyError(f"duplicate path name {name!r}")
        link_ids = tuple(self.link(link_name).id for link_name in link_names)
        path = Path(id=len(self._paths), name=name, link_ids=link_ids)
        self._paths.append(path)
        self._path_names.add(name)
        return path

    def add_path_via_nodes(self, name: str, nodes: Sequence[Hashable]) -> Path:
        """Register a path as a node walk.

        Each consecutive node pair must be joined by exactly one registered
        link; otherwise the walk is ambiguous and a :class:`TopologyError`
        is raised (use :meth:`add_path` with explicit link names instead).
        """
        if len(nodes) < 2:
            raise TopologyError(
                f"path {name!r} needs at least two nodes, got {len(nodes)}"
            )
        link_names = []
        for src, dst in zip(nodes, nodes[1:]):
            candidates = self._link_by_endpoints.get((src, dst), [])
            if not candidates:
                raise TopologyError(
                    f"path {name!r}: no link from {src!r} to {dst!r}"
                )
            if len(candidates) > 1:
                names = [link.name for link in candidates]
                raise TopologyError(
                    f"path {name!r}: ambiguous hop {src!r}->{dst!r} "
                    f"(candidates: {names}); use add_path with link names"
                )
            link_names.append(candidates[0].name)
        return self.add_path(name, link_names)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def n_paths(self) -> int:
        return len(self._paths)

    def build(self, *, require_all_links_used: bool = True) -> Topology:
        """Assemble and validate the topology."""
        return Topology(
            self._links,
            self._paths,
            require_all_links_used=require_all_links_used,
        )

    @staticmethod
    def from_paths(
        node_paths: Iterable[Sequence[Hashable]],
        *,
        path_prefix: str = "P",
    ) -> Topology:
        """Build a topology from raw node walks, creating links on demand.

        This mirrors the traceroute workflow: each walk contributes the
        logical links between its consecutive nodes; links seen on several
        walks are shared.  Link names are ``"src->dst"``.
        """
        builder = TopologyBuilder()
        for index, nodes in enumerate(node_paths):
            if len(nodes) < 2:
                raise TopologyError(
                    f"walk #{index} needs at least two nodes, got {len(nodes)}"
                )
            link_names = []
            for src, dst in zip(nodes, nodes[1:]):
                link = builder.ensure_link(f"{src}->{dst}", src, dst)
                link_names.append(link.name)
            builder.add_path(f"{path_prefix}{index + 1}", link_names)
        return builder.build()
