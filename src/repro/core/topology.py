"""The measurement topology: links, paths, and the coverage function ψ.

``Topology`` is the central immutable container of the library.  It owns the
link and path arrays, validates the paper's structural invariants (no loops
in paths, no unused links), and provides the *path coverage* function

    ψ(A) = { P_i ∈ P | P_i ∋ e_k for some e_k ∈ A }      (paper Eq. 1)

as fast bitmask arithmetic: ``Topology.coverage[k]`` is the bitmask of paths
crossing link ``e_k``, and ``Topology.coverage_of(A)`` ORs those masks.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Hashable

import numpy as np

from repro.core.link import Link, Path
from repro.exceptions import TopologyError

__all__ = ["Topology"]


class Topology:
    """An immutable set of links plus the measurement paths over them.

    Args:
        links: The logical links of the network graph.  Ids must be dense
            (``0..len-1``) and match each link's position.
        paths: The measurement paths.  Ids must be dense and match position.
        require_all_links_used: When True (the paper's model), every link
            must appear on at least one path.  Generators that build the
            topology from routed paths always satisfy this; set it to False
            only for intermediate construction states.
    """

    def __init__(
        self,
        links: Sequence[Link],
        paths: Sequence[Path],
        *,
        require_all_links_used: bool = True,
    ) -> None:
        self._links: tuple[Link, ...] = tuple(links)
        self._paths: tuple[Path, ...] = tuple(paths)
        self._validate(require_all_links_used)
        self._link_by_name = {link.name: link for link in self._links}
        self._path_by_name = {path.name: path for path in self._paths}
        # coverage[k] = bitmask over path ids crossing link k  (ψ({e_k}))
        coverage = [0] * len(self._links)
        for path in self._paths:
            bit = 1 << path.id
            for link_id in path.link_ids:
                coverage[link_id] |= bit
        self._coverage: tuple[int, ...] = tuple(coverage)
        self._all_paths_mask = (1 << len(self._paths)) - 1
        self._routing_dense: np.ndarray | None = None
        self._routing_sparse = None
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Construction-time validation
    # ------------------------------------------------------------------
    def _validate(self, require_all_links_used: bool) -> None:
        if not self._links:
            raise TopologyError("a topology needs at least one link")
        if not self._paths:
            raise TopologyError("a topology needs at least one path")
        for position, link in enumerate(self._links):
            if link.id != position:
                raise TopologyError(
                    f"link ids must be dense and ordered; link at position "
                    f"{position} has id {link.id}"
                )
        for position, path in enumerate(self._paths):
            if path.id != position:
                raise TopologyError(
                    f"path ids must be dense and ordered; path at position "
                    f"{position} has id {path.id}"
                )
        names = [link.name for link in self._links]
        if len(set(names)) != len(names):
            raise TopologyError("link names must be unique")
        path_names = [path.name for path in self._paths]
        if len(set(path_names)) != len(path_names):
            raise TopologyError("path names must be unique")
        n_links = len(self._links)
        used: set[int] = set()
        for path in self._paths:
            for link_id in path.link_ids:
                if not 0 <= link_id < n_links:
                    raise TopologyError(
                        f"path {path.name!r} references unknown link id "
                        f"{link_id}"
                    )
            self._check_contiguous(path)
            used.update(path.link_ids)
        if require_all_links_used and len(used) != n_links:
            unused = sorted(set(range(n_links)) - used)
            unused_names = [self._links[k].name for k in unused]
            raise TopologyError(
                "the paper's model forbids unused links; links on no path: "
                f"{unused_names}"
            )

    def _check_contiguous(self, path: Path) -> None:
        """Paths must be node-contiguous: each link starts where the
        previous one ended."""
        for prev_id, next_id in zip(path.link_ids, path.link_ids[1:]):
            prev_link = self._links[prev_id]
            next_link = self._links[next_id]
            if prev_link.dst != next_link.src:
                raise TopologyError(
                    f"path {path.name!r} is not contiguous: link "
                    f"{prev_link} is followed by {next_link}"
                )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def links(self) -> tuple[Link, ...]:
        """All links, indexed by id."""
        return self._links

    @property
    def paths(self) -> tuple[Path, ...]:
        """All paths, indexed by id."""
        return self._paths

    @property
    def n_links(self) -> int:
        return len(self._links)

    @property
    def n_paths(self) -> int:
        return len(self._paths)

    @property
    def nodes(self) -> list[Hashable]:
        """All node identifiers, in first-appearance order."""
        seen: dict[Hashable, None] = {}
        for link in self._links:
            seen.setdefault(link.src)
            seen.setdefault(link.dst)
        return list(seen)

    def link(self, name: str) -> Link:
        """Look a link up by name."""
        try:
            return self._link_by_name[name]
        except KeyError:
            raise TopologyError(f"no link named {name!r}") from None

    def path(self, name: str) -> Path:
        """Look a path up by name."""
        try:
            return self._path_by_name[name]
        except KeyError:
            raise TopologyError(f"no path named {name!r}") from None

    def link_ids(self, names: Iterable[str]) -> frozenset[int]:
        """Map link names to a frozenset of ids (convenience for tests)."""
        return frozenset(self.link(name).id for name in names)

    # ------------------------------------------------------------------
    # Coverage function ψ
    # ------------------------------------------------------------------
    @property
    def coverage(self) -> tuple[int, ...]:
        """Per-link coverage masks: ``coverage[k]`` encodes ``ψ({e_k})``."""
        return self._coverage

    @property
    def all_paths_mask(self) -> int:
        """Bitmask with one bit per path (the value of ``ψ(E)``)."""
        return self._all_paths_mask

    def coverage_of(self, link_ids: Iterable[int]) -> int:
        """``ψ(A)`` as a path bitmask, for ``A`` given as link ids."""
        mask = 0
        for link_id in link_ids:
            mask |= self._coverage[link_id]
        return mask

    def covered_paths(self, link_ids: Iterable[int]) -> list[Path]:
        """``ψ(A)`` as a list of :class:`Path` objects (for reports)."""
        mask = self.coverage_of(link_ids)
        return [path for path in self._paths if mask >> path.id & 1]

    def paths_through(self, link_id: int) -> list[Path]:
        """All paths crossing link ``e_k`` (``ψ({e_k})`` expanded)."""
        mask = self._coverage[link_id]
        return [path for path in self._paths if mask >> path.id & 1]

    # ------------------------------------------------------------------
    # Linear-algebra view
    # ------------------------------------------------------------------
    def routing_matrix(self) -> np.ndarray:
        """The 0/1 routing matrix ``R`` with ``R[i, k] = 1`` iff ``e_k ∈ P_i``.

        This is the matrix behind the paper's Eq. 9: stacking the rows of
        correlation-free paths gives ``y = R x`` for the log-good
        probabilities ``x_k = log P(X_ek = 0)``.

        The matrix is built once and cached (the topology is immutable);
        the returned array is marked read-only.
        """
        if self._routing_dense is None:
            matrix = np.asarray(
                self.routing_matrix_sparse().todense(), dtype=np.float64
            )
            matrix.flags.writeable = False
            self._routing_dense = matrix
        return self._routing_dense

    def routing_matrix_sparse(self):
        """The routing matrix as a cached ``scipy.sparse.csr_matrix``.

        Hot paths (bulk simulation, the batch equation builder) consume
        this directly instead of densifying ``|P| × |E|`` zeros.
        """
        if self._routing_sparse is None:
            from scipy import sparse

            indptr = np.zeros(self.n_paths + 1, dtype=np.int64)
            indices: list[int] = []
            for path in self._paths:
                link_ids = sorted(path.link_ids)
                indices.extend(link_ids)
                indptr[path.id + 1] = indptr[path.id] + len(link_ids)
            matrix = sparse.csr_matrix(
                (
                    np.ones(len(indices), dtype=np.float64),
                    np.asarray(indices, dtype=np.int64),
                    indptr,
                ),
                shape=(self.n_paths, self.n_links),
            )
            self._routing_sparse = matrix
        return self._routing_sparse

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"Topology(n_links={self.n_links}, n_paths={self.n_paths}, "
            f"n_nodes={len(self.nodes)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._links == other._links and self._paths == other._paths

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._links, self._paths))
        return self._hash
