"""The paper's primary contribution: tomography on correlated links.

Public surface:

* data model — :class:`Link`, :class:`Path`, :class:`Topology`,
  :class:`TopologyBuilder`, :class:`CorrelationStructure`;
* identifiability — :func:`check_assumption4`,
  :func:`structurally_unidentifiable_nodes`, merge transformations;
* inference — :class:`TheoremAlgorithm` (exact),
  :func:`infer_congestion` (practical, Section 4),
  :func:`infer_congestion_independent` (baseline [12]),
  :func:`infer_congestion_single_path` (classic variant),
  localization extensions.
"""

from repro.core.builder import TopologyBuilder
from repro.core.correlation import CorrelationStructure
from repro.core.correlation_algorithm import (
    AlgorithmOptions,
    CorrelationTomography,
    infer_congestion,
)
from repro.core.equations import EquationRow, EquationSystem, build_equations
from repro.core.factors import CongestionFactors
from repro.core.identifiability import (
    IdentifiabilityReport,
    check_assumption4,
    structurally_unidentifiable_nodes,
    unidentifiable_links_structural,
)
from repro.core.independence_algorithm import infer_congestion_independent
from repro.core.link import Link, Path
from repro.core.localization import (
    LocalizationResult,
    localize_map,
    localize_smallest_set,
)
from repro.core.nguyen_thiran import infer_congestion_single_path
from repro.core.prepared import (
    DEFAULT_REGISTRY,
    PreparedRegistry,
    PreparedTopology,
    get_prepared,
    use_registry,
)
from repro.core.results import InferenceResult
from repro.core.streaming import (
    EquationTemplate,
    StreamingTomography,
    WindowVerdict,
)
from repro.core.solvers import solve, solve_bounded_least_squares, solve_l1
from repro.core.theorem import TheoremAlgorithm, TheoremResult
from repro.core.topology import Topology
from repro.core.transform import (
    TransformResult,
    merge_correlated_node,
    merge_indistinguishable_links,
    transform_until_identifiable,
)

__all__ = [
    "Link",
    "Path",
    "Topology",
    "TopologyBuilder",
    "CorrelationStructure",
    "IdentifiabilityReport",
    "check_assumption4",
    "structurally_unidentifiable_nodes",
    "unidentifiable_links_structural",
    "TransformResult",
    "merge_correlated_node",
    "merge_indistinguishable_links",
    "transform_until_identifiable",
    "CongestionFactors",
    "TheoremAlgorithm",
    "TheoremResult",
    "EquationRow",
    "EquationSystem",
    "build_equations",
    "PreparedTopology",
    "PreparedRegistry",
    "DEFAULT_REGISTRY",
    "get_prepared",
    "use_registry",
    "solve",
    "solve_l1",
    "solve_bounded_least_squares",
    "AlgorithmOptions",
    "CorrelationTomography",
    "infer_congestion",
    "infer_congestion_independent",
    "infer_congestion_single_path",
    "InferenceResult",
    "EquationTemplate",
    "StreamingTomography",
    "WindowVerdict",
    "LocalizationResult",
    "localize_map",
    "localize_smallest_set",
]
