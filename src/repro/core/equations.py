"""Linear-equation construction for the practical algorithm (Section 4).

The practical algorithm forms equations over the unknowns

    x_k = log P(X_ek = 0)

from two kinds of observable events:

* **Single paths** (paper Eq. 9): a path ``P_i`` that "does not involve
  correlated links" (no two of its links share a correlation set) satisfies
  ``y_i = Σ_{k: e_k ∈ P_i} x_k`` where ``y_i = log P(Y_Pi = 0)``.
* **Path pairs** (paper Eq. 10): a pair ``(P_i, P_j)`` whose *union* of
  links has no two distinct links in a common correlation set satisfies
  ``y_ij = Σ_{k: e_k ∈ P_i ∪ P_j} x_k``.

Only pairs that *share at least one link* are enumerated: for a disjoint
eligible pair the union row is the sum of the two single rows, hence never
linearly independent from the singles (both singles are always eligible
when the pair is).  This observation shrinks the candidate space from
``|P|²`` to roughly ``Σ_k |ψ({e_k})|²`` without losing any rank.

Two selection modes:

* ``"independent"`` (the paper's description): keep only rows that increase
  the rank, tracked by incremental Gaussian elimination, stopping at full
  column rank.
* ``"all"``: keep every eligible row and let the solver's L1/L2 objective
  reconcile redundancy — more robust under measurement noise, identical in
  the noise-free consistent case.

The builder is batch-first: candidate pairs are enumerated with array
operations on the sparse routing matrix, eligibility is decided by
:meth:`~repro.core.correlation.CorrelationStructure.pairs_correlation_free`
in one shot, measured values are fetched through the provider's vectorised
``log_good_all`` / ``log_good_pairs`` APIs when available (falling back to
the scalar protocol otherwise), and the accepted system is assembled as
sparse COO triplets — the dense ``|rows| × |E|`` matrix is only
materialised on explicit request.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.core.correlation import CorrelationStructure
from repro.core.interfaces import PathGoodProvider, batch_log_good_all
from repro.core.topology import Topology
from repro.exceptions import SolverError
from repro.utils.rng import as_generator

__all__ = ["EquationRow", "EquationSystem", "build_equations"]


@dataclass(frozen=True)
class EquationRow:
    """One linear equation ``value = Σ_{k ∈ link_ids} x_k``.

    Attributes:
        kind: ``"path"`` (Eq. 9) or ``"pair"`` (Eq. 10).
        paths: The observed path ids (one or two).
        link_ids: Links with coefficient 1 in the row.
        value: The measured log-good probability (``y_i`` or ``y_ij``).
    """

    kind: str
    paths: tuple[int, ...]
    link_ids: frozenset[int]
    value: float


@dataclass
class EquationSystem:
    """The assembled system ``R x = y`` plus diagnostics.

    Attributes:
        n_links: Number of unknowns (columns of R).
        rows: The accepted equations in acceptance order.
        n_single: Count of Eq.-9 rows (the paper's ``N1``).
        n_pair: Count of Eq.-10 rows (the paper's ``N2``).
        rank: Numerical rank of R at assembly time.
        eligible_paths: Paths that passed the correlation-free test.
        uncovered_links: Links appearing in no accepted row; their unknowns
            are unconstrained and the solver will leave them at the
            "never congested" default (Section 5 discusses the resulting
            error on unidentifiable links).
    """

    n_links: int
    rows: list[EquationRow] = field(default_factory=list)
    n_single: int = 0
    n_pair: int = 0
    rank: int = 0
    eligible_paths: tuple[int, ...] = ()
    uncovered_links: frozenset[int] = frozenset()

    def sparse_matrix(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Assemble ``(R, y)`` with ``R`` as a CSR matrix (COO triplets;
        no dense intermediate)."""
        if not self.rows:
            raise SolverError(
                "no equations could be formed: every path involves "
                "correlated links"
            )
        counts = np.array(
            [len(row.link_ids) for row in self.rows], dtype=np.int64
        )
        row_index = np.repeat(np.arange(len(self.rows)), counts)
        col_index = np.concatenate(
            [sorted(row.link_ids) for row in self.rows]
        ).astype(np.int64)
        matrix = sparse.csr_matrix(
            (
                np.ones(col_index.size, dtype=np.float64),
                (row_index, col_index),
            ),
            shape=(len(self.rows), self.n_links),
        )
        values = np.array([row.value for row in self.rows], dtype=np.float64)
        return matrix, values

    def matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise ``(R, y)`` as dense numpy arrays."""
        matrix, values = self.sparse_matrix()
        return matrix.toarray(), values

    @property
    def is_fully_determined(self) -> bool:
        """True when ``N1 + N2`` reached ``|E|`` *and* rank is full."""
        return self.rank >= self.n_links


class _RankTracker:
    """Incremental Gaussian elimination over accepted rows.

    Stored rows are kept *fully* reduced (reduced row-echelon form): each
    is normalised at its pivot and has zeros at every other stored pivot.
    Reducing a candidate therefore needs a single gather of its pivot
    coefficients plus one small matrix product over the rows with nonzero
    coefficient — no Python loop over the stored rows.
    """

    def __init__(self, n_cols: int, tol: float = 1e-9) -> None:
        self._n_cols = n_cols
        self._tol = tol
        self._rows = np.empty((min(n_cols, 64), n_cols), dtype=np.float64)
        self._pivots = np.empty(n_cols, dtype=np.int64)
        self._rank = 0

    @property
    def rank(self) -> int:
        return self._rank

    def residual(self, row: np.ndarray) -> np.ndarray:
        reduced = row.astype(np.float64, copy=True)
        if self._rank:
            pivots = self._pivots[: self._rank]
            coefficients = reduced[pivots]
            nonzero = np.flatnonzero(coefficients)
            if nonzero.size:
                reduced -= coefficients[nonzero] @ self._rows[nonzero]
        return reduced

    def batch_dependent(self, rows) -> np.ndarray:
        """True for rows already inside the tracked row space.

        A residual that vanishes at rank ``r`` stays zero as the space
        only grows, so such rows can never be accepted later — callers
        use this to discard hopeless candidates in one sparse product
        instead of examining them one by one.
        """
        n_rows = rows.shape[0]
        if self._rank == 0 or n_rows == 0:
            return np.zeros(n_rows, dtype=bool)
        stored = self._rows[: self._rank]
        pivots = self._pivots[: self._rank]
        dependent = np.empty(n_rows, dtype=bool)
        # Chunked so the dense residual block stays bounded regardless
        # of how many candidates the caller throws at us.
        chunk = max(1, 8 * 1024 * 1024 // (8 * max(1, self._n_cols)))
        for start in range(0, n_rows, chunk):
            block = rows[start : start + chunk]
            residual = block[:, pivots] @ stored
            np.negative(residual, out=residual)
            # Add the sparse candidate entries without densifying them;
            # CSR entries are unique, so a fancy-indexed add suffices.
            coo = block.tocoo()
            residual[coo.row, coo.col] += coo.data
            dependent[start : start + chunk] = (
                np.abs(residual).max(axis=1) <= self._tol
            )
        return dependent

    def clone(self) -> "_RankTracker":
        """Independent copy of the current elimination state.

        Lets measurement-independent prefixes of the elimination (the
        single-path phase, which depends only on topology + correlation)
        be computed once and reused across measurement batches.
        """
        other = _RankTracker.__new__(_RankTracker)
        other._n_cols = self._n_cols
        other._tol = self._tol
        other._rows = self._rows[: self._rank].copy()
        other._pivots = self._pivots.copy()
        other._rank = self._rank
        return other

    def try_add(self, row: np.ndarray) -> bool:
        """Add ``row`` if it increases the rank; report whether it did."""
        reduced = self.residual(row)
        pivot = int(np.argmax(np.abs(reduced)))
        if abs(reduced[pivot]) <= self._tol:
            return False
        reduced /= reduced[pivot]
        rank = self._rank
        if rank == self._rows.shape[0]:
            grown = np.empty(
                (min(self._n_cols, max(64, 2 * rank)), self._n_cols),
                dtype=np.float64,
            )
            grown[:rank] = self._rows[:rank]
            self._rows = grown
        if rank:
            # Restore RREF: eliminate the new pivot from stored rows.
            column = self._rows[:rank, pivot].copy()
            nonzero = np.flatnonzero(column)
            if nonzero.size:
                self._rows[nonzero] -= column[nonzero, None] * reduced
        self._rows[rank] = reduced
        self._pivots[rank] = pivot
        self._rank = rank + 1
        return True


def _row_vector(link_ids, n_links: int) -> np.ndarray:
    row = np.zeros(n_links, dtype=np.float64)
    row[sorted(link_ids)] = 1.0
    return row


def _shared_link_pair_candidates(
    topology: Topology,
    eligible_mask: np.ndarray,
) -> np.ndarray:
    """Unique eligible-path pairs sharing at least one link, as an
    ``(m, 2)`` array.

    Enumeration order matches the historical generator: scan links in id
    order, emit the pairs of eligible paths through each link in
    lexicographic order, and keep the first occurrence of every pair.
    """
    routing = topology.routing_matrix_sparse().tocsc()
    blocks_a: list[np.ndarray] = []
    blocks_b: list[np.ndarray] = []
    for link_id in range(topology.n_links):
        through = routing.indices[
            routing.indptr[link_id] : routing.indptr[link_id + 1]
        ]
        through = through[eligible_mask[through]]
        if through.size < 2:
            continue
        first, second = np.triu_indices(through.size, k=1)
        blocks_a.append(through[first])
        blocks_b.append(through[second])
    if not blocks_a:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.stack(
        [
            np.concatenate(blocks_a).astype(np.int64),
            np.concatenate(blocks_b).astype(np.int64),
        ],
        axis=1,
    )
    codes = pairs[:, 0] * np.int64(topology.n_paths) + pairs[:, 1]
    _, first_seen = np.unique(codes, return_index=True)
    return pairs[np.sort(first_seen)]


def _single_values(
    measurements: PathGoodProvider,
    path_ids: list[int],
    n_paths: int,
) -> np.ndarray:
    """``y_i`` for the eligible paths, batch when the provider allows."""
    all_values = batch_log_good_all(measurements, n_paths)
    if all_values is not None:
        return all_values[np.asarray(path_ids, dtype=np.int64)]
    return np.array(
        [measurements.log_good(path_id) for path_id in path_ids],
        dtype=np.float64,
    )


def _pair_values(
    measurements: PathGoodProvider,
    pairs: np.ndarray,
) -> np.ndarray | None:
    """``y_ij`` for candidate pairs in one batch call, or ``None`` when
    the provider only speaks the scalar protocol (values are then fetched
    lazily, only for accepted rows)."""
    if pairs.size and hasattr(measurements, "log_good_pairs"):
        return np.asarray(
            measurements.log_good_pairs(pairs), dtype=np.float64
        )
    return None


#: Measurement-independent builder state per correlation structure: the
#: eligible paths, the single-path elimination (rows + tracker snapshot),
#: the candidate pairs with their eligibility verdicts, and the lazily
#: computed dependence mask.  A sweep re-infers against the same
#: (topology, correlation) for every trial; this prep is computed once.
_BUILDER_PREP: "weakref.WeakKeyDictionary[CorrelationStructure, dict]" = (
    weakref.WeakKeyDictionary()
)


def _builder_prep(
    topology: Topology, correlation: CorrelationStructure
) -> dict:
    prep = _BUILDER_PREP.get(correlation)
    if prep is not None and prep["topology"] is topology:
        return prep
    n_links = topology.n_links
    eligible_mask = correlation.path_correlation_free_mask()
    eligible = [int(path_id) for path_id in np.flatnonzero(eligible_mask)]
    tracker = _RankTracker(n_links)
    singles = []
    for path_id in eligible:
        link_ids = frozenset(topology.paths[path_id].link_ids)
        added = tracker.try_add(_row_vector(link_ids, n_links))
        singles.append((path_id, link_ids, added))
    candidates = _shared_link_pair_candidates(topology, eligible_mask)
    prep = {
        "topology": topology,
        "eligible": tuple(eligible),
        "singles": tuple(singles),
        "tracker": tracker,
        "candidates": candidates,
        "pair_eligible": correlation.pairs_correlation_free(candidates),
        "dependent_mask": None,
    }
    _BUILDER_PREP[correlation] = prep
    return prep


def _dependent_mask(topology: Topology, prep: dict) -> np.ndarray:
    """Batch dependence verdicts for the cached candidates (lazy).

    Candidates whose union row is already spanned by the single-path
    rows can never be accepted; dropping them spares the sequential
    examination.  The mask is order-independent, so it is computed once
    per correlation structure and permuted alongside the candidates.
    """
    if prep["dependent_mask"] is None:
        candidates = prep["candidates"]
        links = topology.routing_matrix_sparse()
        union = links[candidates[:, 0]] + links[candidates[:, 1]]
        union.data = np.minimum(union.data, 1.0)
        prep["dependent_mask"] = prep["tracker"].batch_dependent(union)
    return prep["dependent_mask"]


def build_equations(
    topology: Topology,
    correlation: CorrelationStructure,
    measurements: PathGoodProvider,
    *,
    selection: str = "independent",
    max_pair_candidates: int = 200_000,
    pair_order_seed=0,
) -> EquationSystem:
    """Assemble the Section-4 equation system.

    Args:
        topology: The measurement topology.
        correlation: Known correlation structure (pass the trivial
            structure to obtain the independence baseline's system).
        measurements: Provider of the measured ``y`` values.
        selection: ``"independent"`` (paper) or ``"all"`` (keep every
            eligible row).
        max_pair_candidates: Bound on examined shared-link pairs; beyond it
            the system is returned as-is (rank possibly deficient — the
            L1 solve then picks the minimum-error solution, Section 4).
        pair_order_seed: Seed for shuffling pair candidates so truncation
            is not biased toward low-id links; ``None`` keeps generation
            order.
    """
    if selection not in ("independent", "all"):
        raise ValueError(
            f"selection must be 'independent' or 'all', got {selection!r}"
        )
    n_links = topology.n_links
    system = EquationSystem(n_links=n_links)
    prep = _builder_prep(topology, correlation)
    tracker = prep["tracker"].clone()
    system.eligible_paths = prep["eligible"]

    # --- Single-path rows (Eq. 9) -------------------------------------
    single_values = _single_values(
        measurements, list(prep["eligible"]), topology.n_paths
    )
    for (path_id, link_ids, added), value in zip(
        prep["singles"], single_values
    ):
        if selection == "all" or added:
            system.rows.append(
                EquationRow(
                    kind="path",
                    paths=(path_id,),
                    link_ids=link_ids,
                    value=float(value),
                )
            )
            system.n_single += 1

    # --- Pair rows (Eq. 10) -------------------------------------------
    if tracker.rank < n_links or selection == "all":
        candidates = prep["candidates"]
        pair_eligible = prep["pair_eligible"]
        # Prefilter is skipped when the candidate cap binds (dropped
        # rows would otherwise still count as "examined") and in "all"
        # mode, which keeps dependent rows.
        use_prefilter = (
            selection == "independent"
            and 0 < candidates.shape[0] <= max_pair_candidates
        )
        keep = (
            ~_dependent_mask(topology, prep) if use_prefilter else None
        )
        if pair_order_seed is not None:
            # Permute the FULL candidate list — identical RNG use and
            # examination order to the historical builder — and only
            # then drop the provably dependent rows (skipping them does
            # not change the tracker, so acceptance is preserved).
            order = as_generator(pair_order_seed).permutation(
                candidates.shape[0]
            )
            candidates = candidates[order]
            pair_eligible = pair_eligible[order]
            if keep is not None:
                keep = keep[order]
        if keep is not None:
            candidates = candidates[keep]
            pair_eligible = pair_eligible[keep]
        pair_values = _pair_values(measurements, candidates)
        examined = 0
        for index in range(candidates.shape[0]):
            if examined >= max_pair_candidates:
                break
            if selection == "independent" and tracker.rank >= n_links:
                break
            examined += 1
            if not pair_eligible[index]:
                continue
            path_a, path_b = (
                int(candidates[index, 0]),
                int(candidates[index, 1]),
            )
            link_ids = frozenset(
                topology.paths[path_a].link_ids
            ) | frozenset(topology.paths[path_b].link_ids)
            row = _row_vector(link_ids, n_links)
            added = tracker.try_add(row)
            if selection == "all" or added:
                value = (
                    float(pair_values[index])
                    if pair_values is not None
                    else measurements.log_good_pair(path_a, path_b)
                )
                system.rows.append(
                    EquationRow(
                        kind="pair",
                        paths=(path_a, path_b),
                        link_ids=link_ids,
                        value=value,
                    )
                )
                system.n_pair += 1

    system.rank = tracker.rank
    covered: set[int] = set()
    for row in system.rows:
        covered.update(row.link_ids)
    system.uncovered_links = frozenset(range(n_links)) - frozenset(covered)
    return system
