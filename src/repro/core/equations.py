"""Linear-equation construction for the practical algorithm (Section 4).

The practical algorithm forms equations over the unknowns

    x_k = log P(X_ek = 0)

from two kinds of observable events:

* **Single paths** (paper Eq. 9): a path ``P_i`` that "does not involve
  correlated links" (no two of its links share a correlation set) satisfies
  ``y_i = Σ_{k: e_k ∈ P_i} x_k`` where ``y_i = log P(Y_Pi = 0)``.
* **Path pairs** (paper Eq. 10): a pair ``(P_i, P_j)`` whose *union* of
  links has no two distinct links in a common correlation set satisfies
  ``y_ij = Σ_{k: e_k ∈ P_i ∪ P_j} x_k``.

Only pairs that *share at least one link* are enumerated: for a disjoint
eligible pair the union row is the sum of the two single rows, hence never
linearly independent from the singles (both singles are always eligible
when the pair is).  This observation shrinks the candidate space from
``|P|²`` to roughly ``Σ_k |ψ({e_k})|²`` without losing any rank.

Two selection modes:

* ``"independent"`` (the paper's description): keep only rows that increase
  the rank, tracked by incremental Gaussian elimination, stopping at full
  column rank.
* ``"all"``: keep every eligible row and let the solver's L1/L2 objective
  reconcile redundancy — more robust under measurement noise, identical in
  the noise-free consistent case.

The builder is batch-first: candidate pairs are enumerated with array
operations on the sparse routing matrix, eligibility is decided by
:meth:`~repro.core.correlation.CorrelationStructure.pairs_correlation_free`
in one shot, measured values are fetched through the provider's vectorised
``log_good_all`` / ``log_good_pairs`` APIs when available (falling back to
the scalar protocol otherwise), and the accepted system is assembled as
sparse COO triplets — the dense ``|rows| × |E|`` matrix is only
materialised on explicit request.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.core.correlation import CorrelationStructure
from repro.core.interfaces import PathGoodProvider, batch_log_good_all
from repro.core.prepared import (  # noqa: F401  (re-exported for compat)
    PreparedRegistry,
    PreparedTopology,
    _RankTracker,
    _row_vector,
    _shared_link_pair_candidates,
    get_prepared,
)
from repro.core.topology import Topology
from repro.exceptions import SolverError
from repro.utils.rng import as_generator

__all__ = ["EquationRow", "EquationSystem", "build_equations"]


@dataclass(frozen=True)
class EquationRow:
    """One linear equation ``value = Σ_{k ∈ link_ids} x_k``.

    Attributes:
        kind: ``"path"`` (Eq. 9) or ``"pair"`` (Eq. 10).
        paths: The observed path ids (one or two).
        link_ids: Links with coefficient 1 in the row.
        value: The measured log-good probability (``y_i`` or ``y_ij``).
    """

    kind: str
    paths: tuple[int, ...]
    link_ids: frozenset[int]
    value: float


@dataclass
class EquationSystem:
    """The assembled system ``R x = y`` plus diagnostics.

    Attributes:
        n_links: Number of unknowns (columns of R).
        rows: The accepted equations in acceptance order.
        n_single: Count of Eq.-9 rows (the paper's ``N1``).
        n_pair: Count of Eq.-10 rows (the paper's ``N2``).
        rank: Numerical rank of R at assembly time.
        eligible_paths: Paths that passed the correlation-free test.
        uncovered_links: Links appearing in no accepted row; their unknowns
            are unconstrained and the solver will leave them at the
            "never congested" default (Section 5 discusses the resulting
            error on unidentifiable links).
    """

    n_links: int
    rows: list[EquationRow] = field(default_factory=list)
    n_single: int = 0
    n_pair: int = 0
    rank: int = 0
    eligible_paths: tuple[int, ...] = ()
    uncovered_links: frozenset[int] = frozenset()

    def sparse_matrix(self) -> tuple[sparse.csr_matrix, np.ndarray]:
        """Assemble ``(R, y)`` with ``R`` as a CSR matrix (COO triplets;
        no dense intermediate)."""
        if not self.rows:
            raise SolverError(
                "no equations could be formed: every path involves "
                "correlated links"
            )
        counts = np.array(
            [len(row.link_ids) for row in self.rows], dtype=np.int64
        )
        row_index = np.repeat(np.arange(len(self.rows)), counts)
        col_index = np.concatenate(
            [sorted(row.link_ids) for row in self.rows]
        ).astype(np.int64)
        matrix = sparse.csr_matrix(
            (
                np.ones(col_index.size, dtype=np.float64),
                (row_index, col_index),
            ),
            shape=(len(self.rows), self.n_links),
        )
        values = np.array([row.value for row in self.rows], dtype=np.float64)
        return matrix, values

    def matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise ``(R, y)`` as dense numpy arrays."""
        matrix, values = self.sparse_matrix()
        return matrix.toarray(), values

    @property
    def is_fully_determined(self) -> bool:
        """True when ``N1 + N2`` reached ``|E|`` *and* rank is full."""
        return self.rank >= self.n_links


def _single_values(
    measurements: PathGoodProvider,
    path_ids: list[int],
    n_paths: int,
) -> np.ndarray:
    """``y_i`` for the eligible paths, batch when the provider allows."""
    all_values = batch_log_good_all(measurements, n_paths)
    if all_values is not None:
        return all_values[np.asarray(path_ids, dtype=np.int64)]
    return np.array(
        [measurements.log_good(path_id) for path_id in path_ids],
        dtype=np.float64,
    )


def _pair_values(
    measurements: PathGoodProvider,
    pairs: np.ndarray,
) -> np.ndarray | None:
    """``y_ij`` for candidate pairs in one batch call, or ``None`` when
    the provider only speaks the scalar protocol (values are then fetched
    lazily, only for accepted rows)."""
    if pairs.size and hasattr(measurements, "log_good_pairs"):
        return np.asarray(
            measurements.log_good_pairs(pairs), dtype=np.float64
        )
    return None


def build_equations(
    topology: Topology,
    correlation: CorrelationStructure,
    measurements: PathGoodProvider,
    *,
    selection: str = "independent",
    max_pair_candidates: int = 200_000,
    pair_order_seed=0,
    prepared: PreparedTopology | None = None,
    registry: PreparedRegistry | None = None,
) -> EquationSystem:
    """Assemble the Section-4 equation system.

    Args:
        topology: The measurement topology.
        correlation: Known correlation structure (pass the trivial
            structure to obtain the independence baseline's system).
        measurements: Provider of the measured ``y`` values.
        selection: ``"independent"`` (paper) or ``"all"`` (keep every
            eligible row).
        max_pair_candidates: Bound on examined shared-link pairs; beyond it
            the system is returned as-is (rank possibly deficient — the
            L1 solve then picks the minimum-error solution, Section 4).
        pair_order_seed: Seed for shuffling pair candidates so truncation
            is not biased toward low-id links; ``None`` keeps generation
            order.
        prepared: Pre-built measurement-independent state for this
            ``(topology, correlation)`` pair; skips the registry lookup.
        registry: Registry to resolve/cache the prepared state in;
            defaults to the ambient registry (see
            :func:`repro.core.prepared.use_registry`).
    """
    if selection not in ("independent", "all"):
        raise ValueError(
            f"selection must be 'independent' or 'all', got {selection!r}"
        )
    n_links = topology.n_links
    system = EquationSystem(n_links=n_links)
    prep = get_prepared(
        topology, correlation, registry=registry, prepared=prepared
    )
    tracker = prep.clone_tracker()
    system.eligible_paths = prep.eligible

    # --- Single-path rows (Eq. 9) -------------------------------------
    single_values = _single_values(
        measurements, list(prep.eligible), topology.n_paths
    )
    for (path_id, link_ids, added), value in zip(
        prep.singles, single_values
    ):
        if selection == "all" or added:
            system.rows.append(
                EquationRow(
                    kind="path",
                    paths=(path_id,),
                    link_ids=link_ids,
                    value=float(value),
                )
            )
            system.n_single += 1

    # --- Pair rows (Eq. 10) -------------------------------------------
    if tracker.rank < n_links or selection == "all":
        candidates = prep.candidates
        pair_eligible = prep.pair_eligible
        # Prefilter is skipped when the candidate cap binds (dropped
        # rows would otherwise still count as "examined") and in "all"
        # mode, which keeps dependent rows.
        use_prefilter = (
            selection == "independent"
            and 0 < candidates.shape[0] <= max_pair_candidates
        )
        keep = ~prep.dependent_mask() if use_prefilter else None
        if pair_order_seed is not None:
            # Permute the FULL candidate list — identical RNG use and
            # examination order to the historical builder — and only
            # then drop the provably dependent rows (skipping them does
            # not change the tracker, so acceptance is preserved).
            order = as_generator(pair_order_seed).permutation(
                candidates.shape[0]
            )
            candidates = candidates[order]
            pair_eligible = pair_eligible[order]
            if keep is not None:
                keep = keep[order]
        if keep is not None:
            candidates = candidates[keep]
            pair_eligible = pair_eligible[keep]
        pair_values = _pair_values(measurements, candidates)
        examined = 0
        for index in range(candidates.shape[0]):
            if examined >= max_pair_candidates:
                break
            if selection == "independent" and tracker.rank >= n_links:
                break
            examined += 1
            if not pair_eligible[index]:
                continue
            path_a, path_b = (
                int(candidates[index, 0]),
                int(candidates[index, 1]),
            )
            link_ids = frozenset(
                topology.paths[path_a].link_ids
            ) | frozenset(topology.paths[path_b].link_ids)
            row = _row_vector(link_ids, n_links)
            added = tracker.try_add(row)
            if selection == "all" or added:
                value = (
                    float(pair_values[index])
                    if pair_values is not None
                    else measurements.log_good_pair(path_a, path_b)
                )
                system.rows.append(
                    EquationRow(
                        kind="pair",
                        paths=(path_a, path_b),
                        link_ids=link_ids,
                        value=value,
                    )
                )
                system.n_pair += 1

    system.rank = tracker.rank
    covered: set[int] = set()
    for row in system.rows:
        covered.update(row.link_ids)
    system.uncovered_links = frozenset(range(n_links)) - frozenset(covered)
    return system
