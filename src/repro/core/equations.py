"""Linear-equation construction for the practical algorithm (Section 4).

The practical algorithm forms equations over the unknowns

    x_k = log P(X_ek = 0)

from two kinds of observable events:

* **Single paths** (paper Eq. 9): a path ``P_i`` that "does not involve
  correlated links" (no two of its links share a correlation set) satisfies
  ``y_i = Σ_{k: e_k ∈ P_i} x_k`` where ``y_i = log P(Y_Pi = 0)``.
* **Path pairs** (paper Eq. 10): a pair ``(P_i, P_j)`` whose *union* of
  links has no two distinct links in a common correlation set satisfies
  ``y_ij = Σ_{k: e_k ∈ P_i ∪ P_j} x_k``.

Only pairs that *share at least one link* are enumerated: for a disjoint
eligible pair the union row is the sum of the two single rows, hence never
linearly independent from the singles (both singles are always eligible
when the pair is).  This observation shrinks the candidate space from
``|P|²`` to roughly ``Σ_k |ψ({e_k})|²`` without losing any rank.

Two selection modes:

* ``"independent"`` (the paper's description): keep only rows that increase
  the rank, tracked by incremental Gaussian elimination, stopping at full
  column rank.
* ``"all"``: keep every eligible row and let the solver's L1/L2 objective
  reconcile redundancy — more robust under measurement noise, identical in
  the noise-free consistent case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation import CorrelationStructure
from repro.core.interfaces import PathGoodProvider
from repro.core.topology import Topology
from repro.exceptions import SolverError
from repro.utils.rng import as_generator

__all__ = ["EquationRow", "EquationSystem", "build_equations"]


@dataclass(frozen=True)
class EquationRow:
    """One linear equation ``value = Σ_{k ∈ link_ids} x_k``.

    Attributes:
        kind: ``"path"`` (Eq. 9) or ``"pair"`` (Eq. 10).
        paths: The observed path ids (one or two).
        link_ids: Links with coefficient 1 in the row.
        value: The measured log-good probability (``y_i`` or ``y_ij``).
    """

    kind: str
    paths: tuple[int, ...]
    link_ids: frozenset[int]
    value: float


@dataclass
class EquationSystem:
    """The assembled system ``R x = y`` plus diagnostics.

    Attributes:
        n_links: Number of unknowns (columns of R).
        rows: The accepted equations in acceptance order.
        n_single: Count of Eq.-9 rows (the paper's ``N1``).
        n_pair: Count of Eq.-10 rows (the paper's ``N2``).
        rank: Numerical rank of R at assembly time.
        eligible_paths: Paths that passed the correlation-free test.
        uncovered_links: Links appearing in no accepted row; their unknowns
            are unconstrained and the solver will leave them at the
            "never congested" default (Section 5 discusses the resulting
            error on unidentifiable links).
    """

    n_links: int
    rows: list[EquationRow] = field(default_factory=list)
    n_single: int = 0
    n_pair: int = 0
    rank: int = 0
    eligible_paths: tuple[int, ...] = ()
    uncovered_links: frozenset[int] = frozenset()

    def matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Materialise ``(R, y)`` as dense numpy arrays."""
        if not self.rows:
            raise SolverError(
                "no equations could be formed: every path involves "
                "correlated links"
            )
        matrix = np.zeros((len(self.rows), self.n_links), dtype=np.float64)
        values = np.empty(len(self.rows), dtype=np.float64)
        for index, row in enumerate(self.rows):
            matrix[index, sorted(row.link_ids)] = 1.0
            values[index] = row.value
        return matrix, values

    @property
    def is_fully_determined(self) -> bool:
        """True when ``N1 + N2`` reached ``|E|`` *and* rank is full."""
        return self.rank >= self.n_links


class _RankTracker:
    """Incremental Gaussian elimination over accepted rows.

    Stored rows are kept partially reduced: each is normalised at its pivot
    and reduced against every earlier stored row, so reducing a candidate
    against stored rows in insertion order eliminates each pivot exactly
    once.
    """

    def __init__(self, n_cols: int, tol: float = 1e-9) -> None:
        self._n_cols = n_cols
        self._tol = tol
        self._rows: list[np.ndarray] = []
        self._pivots: list[int] = []

    @property
    def rank(self) -> int:
        return len(self._rows)

    def residual(self, row: np.ndarray) -> np.ndarray:
        reduced = row.astype(np.float64, copy=True)
        for pivot, stored in zip(self._pivots, self._rows):
            coefficient = reduced[pivot]
            if coefficient != 0.0:
                reduced -= coefficient * stored
        return reduced

    def try_add(self, row: np.ndarray) -> bool:
        """Add ``row`` if it increases the rank; report whether it did."""
        reduced = self.residual(row)
        pivot = int(np.argmax(np.abs(reduced)))
        if abs(reduced[pivot]) <= self._tol:
            return False
        reduced /= reduced[pivot]
        self._rows.append(reduced)
        self._pivots.append(pivot)
        return True


def _row_vector(link_ids: frozenset[int], n_links: int) -> np.ndarray:
    row = np.zeros(n_links, dtype=np.float64)
    row[sorted(link_ids)] = 1.0
    return row


def _iter_shared_link_pairs(
    topology: Topology,
    eligible: set[int],
):
    """Unique pairs of eligible paths that share at least one link."""
    seen: set[tuple[int, int]] = set()
    for link_id in range(topology.n_links):
        through = [
            path.id
            for path in topology.paths_through(link_id)
            if path.id in eligible
        ]
        for a, b in itertools.combinations(through, 2):
            pair = (a, b) if a < b else (b, a)
            if pair not in seen:
                seen.add(pair)
                yield pair


def build_equations(
    topology: Topology,
    correlation: CorrelationStructure,
    measurements: PathGoodProvider,
    *,
    selection: str = "independent",
    max_pair_candidates: int = 200_000,
    pair_order_seed=0,
) -> EquationSystem:
    """Assemble the Section-4 equation system.

    Args:
        topology: The measurement topology.
        correlation: Known correlation structure (pass the trivial
            structure to obtain the independence baseline's system).
        measurements: Provider of the measured ``y`` values.
        selection: ``"independent"`` (paper) or ``"all"`` (keep every
            eligible row).
        max_pair_candidates: Bound on examined shared-link pairs; beyond it
            the system is returned as-is (rank possibly deficient — the
            L1 solve then picks the minimum-error solution, Section 4).
        pair_order_seed: Seed for shuffling pair candidates so truncation
            is not biased toward low-id links; ``None`` keeps generation
            order.
    """
    if selection not in ("independent", "all"):
        raise ValueError(
            f"selection must be 'independent' or 'all', got {selection!r}"
        )
    n_links = topology.n_links
    system = EquationSystem(n_links=n_links)
    tracker = _RankTracker(n_links)

    eligible = [
        path.id
        for path in topology.paths
        if correlation.path_is_correlation_free(path.id)
    ]
    system.eligible_paths = tuple(eligible)
    eligible_set = set(eligible)

    # --- Single-path rows (Eq. 9) -------------------------------------
    for path_id in eligible:
        link_ids = frozenset(topology.paths[path_id].link_ids)
        row = _row_vector(link_ids, n_links)
        added = tracker.try_add(row)
        if selection == "all" or added:
            system.rows.append(
                EquationRow(
                    kind="path",
                    paths=(path_id,),
                    link_ids=link_ids,
                    value=measurements.log_good(path_id),
                )
            )
            system.n_single += 1

    # --- Pair rows (Eq. 10) -------------------------------------------
    if tracker.rank < n_links or selection == "all":
        candidates = list(_iter_shared_link_pairs(topology, eligible_set))
        if pair_order_seed is not None:
            as_generator(pair_order_seed).shuffle(candidates)
        examined = 0
        for path_a, path_b in candidates:
            if examined >= max_pair_candidates:
                break
            if selection == "independent" and tracker.rank >= n_links:
                break
            examined += 1
            if not correlation.pair_is_correlation_free(path_a, path_b):
                continue
            link_ids = frozenset(
                topology.paths[path_a].link_ids
            ) | frozenset(topology.paths[path_b].link_ids)
            row = _row_vector(link_ids, n_links)
            added = tracker.try_add(row)
            if selection == "all" or added:
                system.rows.append(
                    EquationRow(
                        kind="pair",
                        paths=(path_a, path_b),
                        link_ids=link_ids,
                        value=measurements.log_good_pair(path_a, path_b),
                    )
                )
                system.n_pair += 1

    system.rank = tracker.rank
    covered: set[int] = set()
    for row in system.rows:
        covered.update(row.link_ids)
    system.uncovered_links = frozenset(range(n_links)) - frozenset(covered)
    return system
