"""The "independence algorithm" baseline (paper Section 5).

The paper compares against the algorithm of Nguyen & Thiran [12], which
learns per-link congestion probabilities under the assumption that *all*
links are independent: every path contributes the equation

    y_i = Σ_{k: e_k ∈ P_i} x_k,        x_k = log P(X_ek = 0)

(the factorisation is *assumed* to hold on every path), and the resulting
— typically under-determined and, under correlation, inconsistent —
system is solved in the least-squares sense with the sign constraint
``x ≤ 0``.

Two deviations from that baseline are available for ablation:

* :func:`repro.core.nguyen_thiran.infer_congestion_single_path` is the
  same computation with a selectable solver;
* running :func:`repro.core.correlation_algorithm.infer_congestion` with
  ``CorrelationStructure.trivial(topology)`` gives the independence
  assumption *plus* this paper's pair equations and L1 objective — i.e.
  what the baseline would gain from the paper's machinery alone
  (benchmark A1 in DESIGN.md).

When links actually are correlated, the measured ``y`` values deviate
from the assumed sums; least squares spreads the discrepancy across every
link of the involved equations, producing the cascading
mischaracterisations the paper's Figures 3–5 quantify.
"""

from __future__ import annotations

from repro.core.correlation_algorithm import AlgorithmOptions
from repro.core.interfaces import PathGoodProvider
from repro.core.nguyen_thiran import infer_congestion_single_path
from repro.core.results import InferenceResult
from repro.core.topology import Topology

__all__ = ["infer_congestion_independent"]


def infer_congestion_independent(
    topology: Topology,
    measurements: PathGoodProvider,
    *,
    options: AlgorithmOptions | None = None,
) -> InferenceResult:
    """Run the independence baseline [12] on a measurement batch.

    ``options`` is accepted for interface parity with the correlation
    algorithm; only its solver choice would be meaningful, and the
    baseline's published formulation is least squares, so it is ignored.
    """
    del options  # interface parity; the baseline is fixed to [12]'s form
    result = infer_congestion_single_path(
        topology, measurements, solver="min_norm"
    )
    return InferenceResult(
        algorithm="independence",
        congestion_probabilities=result.congestion_probabilities,
        log_good=result.log_good,
        uncovered_links=result.uncovered_links,
        n_single_equations=result.n_single_equations,
        n_pair_equations=result.n_pair_equations,
        rank=result.rank,
        solver=result.solver,
        diagnostics=result.diagnostics,
    )
