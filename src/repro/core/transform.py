"""Topology transformations for unidentifiable instances (Section 3.3).

Two merge operations are implemented:

* :func:`merge_correlated_node` / :func:`transform_until_identifiable` —
  the paper's transformation: when an intermediate node has all its ingress
  links in one correlation set and all its egress links in one correlation
  set, remove the node and draw a *merged link* ``v_last -> v_next`` for
  every path that crossed it.  The merged links inherit the union of the
  two correlation sets.  Inference on the transformed graph characterises
  merged links, not the originals — tomography at reduced granularity.

* :func:`merge_indistinguishable_links` — the classical transformation of
  independent-link tomography: consecutive links traversed by exactly the
  same paths are collapsed into one, restoring the traditional assumption
  that no two links share a coverage.

Both return a :class:`TransformResult` carrying the new topology, the new
correlation structure, and a mapping from each new link to the original
links it stands for, so callers can push inferred probabilities back onto
(groups of) original links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.correlation import CorrelationStructure
from repro.core.link import Link, Path
from repro.core.topology import Topology
from repro.exceptions import TopologyError

__all__ = [
    "TransformResult",
    "merge_correlated_node",
    "transform_until_identifiable",
    "merge_indistinguishable_links",
]


@dataclass(frozen=True)
class TransformResult:
    """A transformed instance plus provenance.

    Attributes:
        topology: The transformed topology.
        correlation: Correlation structure over the transformed links.
        origin: For each new link id, the frozenset of *original* link ids
            it represents (singleton for untouched links).
        merged_nodes: Nodes removed by the transformation, in order.
    """

    topology: Topology
    correlation: CorrelationStructure
    origin: dict[int, frozenset[int]]
    merged_nodes: tuple[Hashable, ...] = ()

    def project_probabilities(
        self, probabilities
    ) -> dict[frozenset[int], float]:
        """Map inferred per-merged-link probabilities back to groups of
        original links.

        The paper's transformation trades granularity for identifiability:
        inference on the transformed graph characterises each merged link
        — i.e. the probability that *at least one* of its original links
        is congested — but cannot split that probability among them.
        Returns ``{frozenset(original link ids): P(any congested)}``.
        """
        projected: dict[frozenset[int], float] = {}
        for new_id, originals in self.origin.items():
            projected[originals] = float(probabilities[new_id])
        return projected


def _eligible_nodes(
    topology: Topology, correlation: CorrelationStructure
) -> list:
    """Interior nodes with single-set ingress and single-set egress whose
    every crossing path passes through (no path starts/ends there)."""
    from repro.core.identifiability import structurally_unidentifiable_nodes

    candidates = structurally_unidentifiable_nodes(topology, correlation)
    eligible = []
    for node in candidates:
        endpoint = False
        for path in topology.paths:
            first = topology.links[path.link_ids[0]]
            last = topology.links[path.link_ids[-1]]
            if first.src == node or last.dst == node:
                endpoint = True
                break
        if not endpoint:
            eligible.append(node)
    return eligible


def merge_correlated_node(
    topology: Topology,
    correlation: CorrelationStructure,
    node: Hashable,
    *,
    origin: dict[int, frozenset[int]] | None = None,
) -> TransformResult:
    """Apply the Section-3.3 merge at one node.

    Every path crossing ``node`` has its (ingress, egress) link pair at the
    node replaced by a merged link from the ingress link's source to the
    egress link's destination.  Links incident to the node that survive on
    no path disappear.  The correlation sets of the removed ingress and
    egress links are united into a single set that also receives the merged
    links; the remaining sets are untouched.

    Raises :class:`TopologyError` when a path starts or ends at ``node``
    (the transformation is only defined for pass-through nodes).
    """
    if origin is None:
        origin = {
            link.id: frozenset([link.id]) for link in topology.links
        }

    incident = {
        link.id
        for link in topology.links
        if link.src == node or link.dst == node
    }
    if not incident:
        raise TopologyError(f"node {node!r} has no incident links")
    for path in topology.paths:
        first = topology.links[path.link_ids[0]]
        last = topology.links[path.link_ids[-1]]
        if first.src == node or last.dst == node:
            raise TopologyError(
                f"path {path.name!r} starts or ends at {node!r}; the merge "
                "transformation needs pass-through traffic only"
            )

    # Correlation sets feeding the merge: those of the removed links.
    affected_sets = {
        correlation.set_index_of(link_id) for link_id in incident
    }

    # Rebuild paths, creating merged links on demand.  A merged link is
    # keyed by its (ingress link, egress link) pair so distinct routes
    # through the node stay distinct logical links.
    new_links: list[Link] = []
    new_origin: dict[int, frozenset[int]] = {}
    keep_map: dict[int, int] = {}  # old id -> new id for untouched links
    merged_map: dict[tuple[int, int], int] = {}
    merged_set_members: set[int] = set()

    def keep(old_id: int) -> int:
        if old_id not in keep_map:
            old = topology.links[old_id]
            new_id = len(new_links)
            new_links.append(
                Link(id=new_id, name=old.name, src=old.src, dst=old.dst)
            )
            new_origin[new_id] = origin[old_id]
            keep_map[old_id] = new_id
        return keep_map[old_id]

    def merged(in_id: int, out_id: int) -> int:
        key = (in_id, out_id)
        if key not in merged_map:
            in_link = topology.links[in_id]
            out_link = topology.links[out_id]
            new_id = len(new_links)
            new_links.append(
                Link(
                    id=new_id,
                    name=f"{in_link.name}+{out_link.name}",
                    src=in_link.src,
                    dst=out_link.dst,
                )
            )
            new_origin[new_id] = origin[in_id] | origin[out_id]
            merged_map[key] = new_id
            merged_set_members.add(new_id)
        return merged_map[key]

    new_paths: list[Path] = []
    for path in topology.paths:
        sequence: list[int] = []
        ids = path.link_ids
        i = 0
        while i < len(ids):
            link = topology.links[ids[i]]
            if link.dst == node:
                if i + 1 >= len(ids):
                    raise TopologyError(
                        f"path {path.name!r} ends on an ingress of {node!r}"
                    )
                sequence.append(merged(ids[i], ids[i + 1]))
                i += 2
            else:
                sequence.append(keep(ids[i]))
                i += 1
        new_paths.append(
            Path(id=len(new_paths), name=path.name, link_ids=tuple(sequence))
        )

    new_topology = Topology(new_links, new_paths)

    # Rebuild correlation sets: affected sets fuse into one (plus merged
    # links); other sets map through keep_map, dropping vanished links.
    new_sets: list[set[int]] = []
    fused: set[int] = set(merged_set_members)
    for index, group in enumerate(correlation.sets):
        mapped = {
            keep_map[link_id] for link_id in group if link_id in keep_map
        }
        if index in affected_sets:
            fused.update(mapped)
        elif mapped:
            new_sets.append(mapped)
    if fused:
        new_sets.append(fused)
    new_correlation = CorrelationStructure(new_topology, new_sets)

    return TransformResult(
        topology=new_topology,
        correlation=new_correlation,
        origin=new_origin,
        merged_nodes=(node,),
    )


def transform_until_identifiable(
    topology: Topology,
    correlation: CorrelationStructure,
    *,
    max_iterations: int = 1000,
) -> TransformResult:
    """Repeatedly merge offending nodes until the structural criterion of
    Section 3.3 finds none (or no further node is mergeable).

    This implements the paper's "we can apply a transformation to the
    network topology (merge certain consecutive links) so that
    [Assumption 4] does" workflow.  Nodes where some path starts/ends are
    skipped — they cannot be merged away.
    """
    result = TransformResult(
        topology=topology,
        correlation=correlation,
        origin={link.id: frozenset([link.id]) for link in topology.links},
        merged_nodes=(),
    )
    for _ in range(max_iterations):
        nodes = _eligible_nodes(result.topology, result.correlation)
        if not nodes:
            return result
        step = merge_correlated_node(
            result.topology,
            result.correlation,
            nodes[0],
            origin=result.origin,
        )
        result = TransformResult(
            topology=step.topology,
            correlation=step.correlation,
            origin=step.origin,
            merged_nodes=result.merged_nodes + step.merged_nodes,
        )
    raise TopologyError(
        f"transformation did not converge in {max_iterations} iterations"
    )


def merge_indistinguishable_links(topology: Topology) -> TransformResult:
    """Collapse consecutive links with identical path coverage.

    Classical tomography preprocessing: two links traversed by exactly the
    same paths cannot be told apart from end-to-end observations; when they
    appear consecutively they are replaced by one merged link.  The result
    carries a trivial (all-singleton) correlation structure — this helper
    exists for the independent-links baseline and for comparison tests.
    """
    coverage = topology.coverage
    new_links: list[Link] = []
    new_origin: dict[int, frozenset[int]] = {}
    rep_map: dict[tuple[int, ...], int] = {}  # run of old ids -> new id

    def link_for_run(run: tuple[int, ...]) -> int:
        if run not in rep_map:
            first = topology.links[run[0]]
            last = topology.links[run[-1]]
            name = (
                first.name
                if len(run) == 1
                else "+".join(topology.links[k].name for k in run)
            )
            new_id = len(new_links)
            new_links.append(
                Link(id=new_id, name=name, src=first.src, dst=last.dst)
            )
            new_origin[new_id] = frozenset(run)
            rep_map[run] = new_id
        return rep_map[run]

    new_paths: list[Path] = []
    for path in topology.paths:
        sequence: list[int] = []
        ids = path.link_ids
        i = 0
        while i < len(ids):
            j = i
            while (
                j + 1 < len(ids) and coverage[ids[j + 1]] == coverage[ids[i]]
            ):
                j += 1
            sequence.append(link_for_run(tuple(ids[i : j + 1])))
            i = j + 1
        new_paths.append(
            Path(id=len(new_paths), name=path.name, link_ids=tuple(sequence))
        )

    new_topology = Topology(new_links, new_paths)
    return TransformResult(
        topology=new_topology,
        correlation=CorrelationStructure.trivial(new_topology),
        origin=new_origin,
        merged_nodes=(),
    )
