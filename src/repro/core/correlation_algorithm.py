"""The practical correlation algorithm (paper Section 4).

Pipeline: identify correlation-free paths and path pairs, form the linear
system over ``x_k = log P(X_ek = 0)`` (Eqs. 9–10), solve — exactly when
``N1 + N2 = |E|`` equations of full rank were gathered, by L1-error
minimisation otherwise — and convert to congestion probabilities
``P(X_ek = 1) = 1 − e^{x_k}``.

Unlike the theorem algorithm, the amount of computation depends only on
the number of links, never on ``|C̃|``; this is the algorithm evaluated in
the paper's Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.correlation import CorrelationStructure
from repro.core.equations import build_equations
from repro.core.interfaces import PathGoodProvider
from repro.core.prepared import PreparedRegistry, PreparedTopology, get_prepared
from repro.core.results import InferenceResult
from repro.core.solvers import solve
from repro.core.topology import Topology

__all__ = ["AlgorithmOptions", "CorrelationTomography", "infer_congestion"]


@dataclass(frozen=True)
class AlgorithmOptions:
    """Tuning knobs of the practical algorithm.

    Attributes:
        selection: ``"independent"`` keeps only rank-increasing equations
            (the paper's formulation); ``"all"`` keeps every eligible row
            for noise averaging.
        solver: ``"l1"`` (paper), ``"least_squares"``, or ``"auto"``.
        max_pair_candidates: Bound on examined path pairs.
        pair_order_seed: Shuffle seed for pair examination order.
    """

    selection: str = "independent"
    solver: str = "l1"
    max_pair_candidates: int = 200_000
    pair_order_seed: int | None = 0


def infer_congestion(
    topology: Topology,
    correlation: CorrelationStructure,
    measurements: PathGoodProvider,
    *,
    options: AlgorithmOptions | None = None,
    algorithm_label: str = "correlation",
    prepared: PreparedTopology | None = None,
    registry: PreparedRegistry | None = None,
) -> InferenceResult:
    """Run the Section-4 algorithm end to end.

    Args:
        topology: The measurement topology.
        correlation: Known correlation sets.  Passing
            ``CorrelationStructure.trivial(topology)`` yields the
            independence baseline (see
            :mod:`repro.core.independence_algorithm`).
        measurements: Log-good probability provider (empirical estimator
            or exact oracle).
        options: Algorithm knobs; defaults follow the paper.
        algorithm_label: Recorded in the result for reporting.
        prepared: Pre-built measurement-independent state (skips the
            registry lookup entirely).
        registry: Prepared-state registry to resolve against; ``None``
            uses the ambient/default registry.
    """
    options = options or AlgorithmOptions()
    system = build_equations(
        topology,
        correlation,
        measurements,
        selection=options.selection,
        max_pair_candidates=options.max_pair_candidates,
        pair_order_seed=options.pair_order_seed,
        prepared=prepared,
        registry=registry,
    )
    matrix, values = system.sparse_matrix()
    solution, solver_used = solve(matrix, values, method=options.solver)
    # Guard the exp() below: solution entries are log-probabilities and the
    # solver already enforces <= 0, but numerical round-off can leave tiny
    # positive values.
    solution = np.minimum(solution, 0.0)
    probabilities = 1.0 - np.exp(solution)
    probabilities = np.clip(probabilities, 0.0, 1.0)
    return InferenceResult(
        algorithm=algorithm_label,
        congestion_probabilities=probabilities,
        log_good=solution,
        uncovered_links=system.uncovered_links,
        n_single_equations=system.n_single,
        n_pair_equations=system.n_pair,
        rank=system.rank,
        solver=solver_used,
        diagnostics={
            "n_eligible_paths": len(system.eligible_paths),
            "n_links": topology.n_links,
            "fully_determined": system.is_fully_determined,
        },
    )


class CorrelationTomography:
    """Object-style front-end binding a topology and correlation structure.

    Useful when many measurement batches are inferred against the same
    instance (e.g. the sweep drivers in :mod:`repro.eval.figures`).
    """

    def __init__(
        self,
        topology: Topology,
        correlation: CorrelationStructure,
        *,
        options: AlgorithmOptions | None = None,
    ) -> None:
        self._topology = topology
        self._correlation = correlation
        self._options = options or AlgorithmOptions()
        self._prepared: PreparedTopology | None = None
        self._template = None

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def correlation(self) -> CorrelationStructure:
        return self._correlation

    def prepare(self) -> PreparedTopology:
        """Warm (and pin) the measurement-independent prepared state."""
        if self._prepared is None:
            self._prepared = get_prepared(self._topology, self._correlation)
        return self._prepared

    def infer(self, measurements: PathGoodProvider) -> InferenceResult:
        """Infer congestion probabilities from one measurement batch."""
        return infer_congestion(
            self._topology,
            self._correlation,
            measurements,
            options=self._options,
            prepared=self.prepare(),
        )

    def update(self, measurements: PathGoodProvider) -> InferenceResult:
        """Window-incremental inference over a cached equation structure.

        The first call extracts the accepted row structure (which, under
        both selection modes, depends only on the prepared topology —
        never on measured values) and caches the assembled sparse matrix;
        every call then pays only the right-hand-side gather plus the
        solve.  Bit-identical to :meth:`infer` on the same observations.
        """
        from repro.core.streaming import EquationTemplate

        if self._template is None:
            self._template = EquationTemplate.build(
                self._topology,
                self._correlation,
                options=self._options,
                prepared=self.prepare(),
            )
        return self._template.infer(measurements)
