"""Link and path value objects.

A :class:`Link` is a directed *logical* link between two network elements —
the paper stresses that an edge of the measurement graph may stand for a
whole sequence of physical links (an IP-level or domain-level hop).  A
:class:`Path` is a loop-free sequence of links whose end-to-end congestion
status can be observed.

Both classes are immutable value objects; the mutable, index-carrying
container is :class:`repro.core.topology.Topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

__all__ = ["Link", "Path"]


@dataclass(frozen=True, slots=True)
class Link:
    """A directed logical link ``src -> dst``.

    Attributes:
        id: Dense index of the link inside its topology (0-based).  The id
            doubles as the bit position of the link in link bitmasks.
        name: Human-readable label.  The toy topologies use the paper's
            names (``"e1"``, ``"e2"``, ...).
        src: Source node identifier (any hashable).
        dst: Destination node identifier (any hashable).
    """

    id: int
    name: str
    src: Hashable
    dst: Hashable

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"link id must be non-negative, got {self.id}")
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.src == self.dst:
            raise ValueError(
                f"link {self.name!r} is a self-loop at node {self.src!r}"
            )

    def __str__(self) -> str:
        return f"{self.name}({self.src}->{self.dst})"


@dataclass(frozen=True, slots=True)
class Path:
    """A measurement path: an ordered, loop-free sequence of link ids.

    Attributes:
        id: Dense index of the path inside its topology (0-based).  The id
            doubles as the bit position of the path in path bitmasks, i.e.
            in values of the coverage function ``ψ``.
        name: Human-readable label (``"P1"``, ``"P2"``, ... in the toys).
        link_ids: The links traversed, in order.  A path never crosses a
            link more than once (paper Section 2.1).
    """

    id: int
    name: str
    link_ids: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"path id must be non-negative, got {self.id}")
        if not self.name:
            raise ValueError("path name must be non-empty")
        if not self.link_ids:
            raise ValueError(f"path {self.name!r} traverses no links")
        if len(set(self.link_ids)) != len(self.link_ids):
            raise ValueError(
                f"path {self.name!r} crosses a link more than once: "
                f"{self.link_ids}"
            )

    @property
    def length(self) -> int:
        """Number of links traversed (the ``d`` in ``t_p = 1-(1-t_l)^d``)."""
        return len(self.link_ids)

    def traverses(self, link_id: int) -> bool:
        """True when this path crosses the given link (``e_k ∈ P_i``)."""
        return link_id in self.link_ids

    def __str__(self) -> str:
        return f"{self.name}[{','.join(map(str, self.link_ids))}]"
