"""Correlation sets and correlation subsets (paper Section 2.1).

A :class:`CorrelationStructure` is a partition ``C = {C1, ..., C|C|}`` of the
link set: links inside one set may be arbitrarily correlated, links across
sets are independent.  The structure knows nothing about the *degree* of
correlation — exactly the paper's model.

The set of all *correlation subsets*

    C̃ = { A ⊆ E | A ≠ ∅ and A ⊆ Cp for some Cp ∈ C }

drives both the identifiability condition (Assumption 4) and the exact
theorem algorithm; :meth:`CorrelationStructure.iter_subsets` enumerates it.

The structure also answers the two eligibility questions of the practical
algorithm (paper Section 4): does a path "involve correlated links", and
does a *pair* of paths?
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

import numpy as np

from repro.core.topology import Topology
from repro.exceptions import CorrelationError

__all__ = ["CorrelationStructure"]

#: Refuse full subset enumeration above this set size unless the caller
#: explicitly caps the subset size; 2^20 subsets is already ~1M.
_MAX_ENUMERABLE_SET_SIZE = 20


class CorrelationStructure:
    """A partition of a topology's links into correlation sets.

    Args:
        topology: The topology whose links are being partitioned.
        sets: An iterable of link-id groups.  Together they must cover every
            link exactly once.  Groups may be given in any order; internally
            they are stored as frozensets indexed ``0..|C|-1``.
    """

    def __init__(
        self,
        topology: Topology,
        sets: Iterable[Iterable[int]],
    ) -> None:
        self._topology = topology
        self._sets: tuple[frozenset[int], ...] = tuple(
            frozenset(group) for group in sets
        )
        self._validate()
        self._set_of: dict[int, int] = {}
        for index, group in enumerate(self._sets):
            for link_id in group:
                self._set_of[link_id] = index
        self._set_index_array: np.ndarray | None = None
        self._incidence_cache: tuple | None = None

    def _validate(self) -> None:
        n_links = self._topology.n_links
        seen: set[int] = set()
        for index, group in enumerate(self._sets):
            if not group:
                raise CorrelationError(f"correlation set #{index} is empty")
            for link_id in group:
                if not 0 <= link_id < n_links:
                    raise CorrelationError(
                        f"correlation set #{index} references unknown link "
                        f"id {link_id}"
                    )
                if link_id in seen:
                    name = self._topology.links[link_id].name
                    raise CorrelationError(
                        f"link {name!r} appears in more than one "
                        "correlation set; sets must form a partition"
                    )
                seen.add(link_id)
        if len(seen) != n_links:
            missing = sorted(set(range(n_links)) - seen)
            names = [self._topology.links[k].name for k in missing]
            raise CorrelationError(
                f"correlation sets must cover every link; missing: {names}"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def trivial(cls, topology: Topology) -> "CorrelationStructure":
        """The all-singletons partition: every link independent.

        This is the structure under which the practical algorithm collapses
        to the paper's "independence algorithm" baseline [12].
        """
        return cls(topology, [[k] for k in range(topology.n_links)])

    @classmethod
    def from_link_names(
        cls,
        topology: Topology,
        named_sets: Iterable[Iterable[str]],
    ) -> "CorrelationStructure":
        """Build from groups of link *names* (convenient in tests/examples)."""
        return cls(
            topology,
            [
                [topology.link(name).id for name in group]
                for group in named_sets
            ],
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def sets(self) -> tuple[frozenset[int], ...]:
        """The correlation sets ``C1..C|C|`` as frozensets of link ids."""
        return self._sets

    @property
    def n_sets(self) -> int:
        return len(self._sets)

    @property
    def is_trivial(self) -> bool:
        """True when every correlation set is a singleton."""
        return all(len(group) == 1 for group in self._sets)

    @property
    def largest_set_size(self) -> int:
        return max(len(group) for group in self._sets)

    def set_index_of(self, link_id: int) -> int:
        """Index ``p`` of the correlation set ``Cp`` containing the link."""
        try:
            return self._set_of[link_id]
        except KeyError:
            raise CorrelationError(f"unknown link id {link_id}") from None

    def set_of(self, link_id: int) -> frozenset[int]:
        """The correlation set ``Cp`` containing the link."""
        return self._sets[self.set_index_of(link_id)]

    def same_set(self, link_a: int, link_b: int) -> bool:
        """True when the two links may be correlated (same ``Cp``)."""
        return self.set_index_of(link_a) == self.set_index_of(link_b)

    # ------------------------------------------------------------------
    # Correlation subsets  (C-tilde)
    # ------------------------------------------------------------------
    def iter_subsets(
        self,
        *,
        max_subset_size: int | None = None,
    ) -> Iterator[frozenset[int]]:
        """Enumerate the correlation subsets ``C̃``.

        Subsets are yielded grouped by correlation set, by increasing size.
        Enumeration is exponential in the set size; sets larger than
        ``_MAX_ENUMERABLE_SET_SIZE`` raise unless ``max_subset_size`` bounds
        the enumeration (the practical algorithm never needs this method —
        only the theorem algorithm and the exact identifiability checker do,
        and both target small instances).
        """
        for group in self._sets:
            if (
                max_subset_size is None
                and len(group) > _MAX_ENUMERABLE_SET_SIZE
            ):
                raise CorrelationError(
                    f"correlation set of size {len(group)} is too large to "
                    "enumerate; pass max_subset_size to bound the search"
                )
            members = sorted(group)
            top = len(members)
            if max_subset_size is not None:
                top = min(top, max_subset_size)
            for size in range(1, top + 1):
                for combo in itertools.combinations(members, size):
                    yield frozenset(combo)

    def n_subsets(self) -> int:
        """``|C̃|`` — number of correlation subsets (may be astronomically
        large; computed arithmetically, not by enumeration)."""
        return sum(2 ** len(group) - 1 for group in self._sets)

    def subsets_of_set(self, set_index: int) -> Iterator[frozenset[int]]:
        """All non-empty subsets of one correlation set, by size."""
        members = sorted(self._sets[set_index])
        if len(members) > _MAX_ENUMERABLE_SET_SIZE:
            raise CorrelationError(
                f"correlation set of size {len(members)} is too large to "
                "enumerate"
            )
        for size in range(1, len(members) + 1):
            for combo in itertools.combinations(members, size):
                yield frozenset(combo)

    # ------------------------------------------------------------------
    # Eligibility tests for the practical algorithm (Section 4)
    # ------------------------------------------------------------------
    def path_touch_map(self, path_id: int) -> dict[int, list[int]]:
        """Map ``set index -> links of the path inside that set``."""
        touched: dict[int, list[int]] = {}
        for link_id in self._topology.paths[path_id].link_ids:
            touched.setdefault(self.set_index_of(link_id), []).append(link_id)
        return touched

    def path_is_correlation_free(self, path_id: int) -> bool:
        """True when no two links of the path share a correlation set.

        Such a path satisfies ``P(Y=0) = Π_k P(X_ek=0)`` (paper Eq. 9)
        because its links are pairwise independent.
        """
        seen: set[int] = set()
        for link_id in self._topology.paths[path_id].link_ids:
            set_index = self.set_index_of(link_id)
            if set_index in seen:
                return False
            seen.add(set_index)
        return True

    def set_index_array(self) -> np.ndarray:
        """``set_index_of`` as a cached vectorised lookup table."""
        if self._set_index_array is None:
            table = np.empty(self._topology.n_links, dtype=np.int64)
            for index, group in enumerate(self._sets):
                table[list(group)] = index
            table.flags.writeable = False
            self._set_index_array = table
        return self._set_index_array

    def _path_incidence(self):
        """Cached sparse incidences driving the batch eligibility tests.

        Returns ``(links, sets, free)`` where ``links`` is the binary
        path × link routing matrix, ``sets`` the binary path × set touch
        matrix, and ``free`` the per-path correlation-free mask.
        """
        if self._incidence_cache is None:
            from scipy import sparse

            topology = self._topology
            links = topology.routing_matrix_sparse()
            rows = np.repeat(
                np.arange(topology.n_paths), np.diff(links.indptr)
            )
            cols = self.set_index_array()[links.indices]
            sets = sparse.coo_matrix(
                (np.ones(len(rows)), (rows, cols)),
                shape=(topology.n_paths, self.n_sets),
            ).tocsr()
            sets.sum_duplicates()
            # A path is correlation-free iff its links land in pairwise
            # distinct sets: #touched sets == #links.
            free = np.diff(sets.indptr) == np.diff(links.indptr)
            sets.data = np.ones_like(sets.data)
            self._incidence_cache = (links, sets, free)
        return self._incidence_cache

    def path_correlation_free_mask(self) -> np.ndarray:
        """Per-path :meth:`path_is_correlation_free`, all paths at once."""
        return self._path_incidence()[2]

    def pairs_correlation_free(self, pairs) -> np.ndarray:
        """Batch :meth:`pair_is_correlation_free` over ``(m, 2)`` pairs.

        A pair of individually correlation-free paths is eligible iff
        every correlation set touched by both paths is touched *via the
        same link*; since each such path touches a set through at most
        one link, that holds exactly when the number of commonly-touched
        sets equals the number of shared links.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise CorrelationError(
                f"pairs must have shape (m, 2), got {pairs.shape}"
            )
        if pairs.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        links, sets, free = self._path_incidence()
        eligible = free[pairs[:, 0]] & free[pairs[:, 1]]
        shared_links = np.asarray(
            links[pairs[:, 0]].multiply(links[pairs[:, 1]]).sum(axis=1)
        ).ravel()
        common_sets = np.asarray(
            sets[pairs[:, 0]].multiply(sets[pairs[:, 1]]).sum(axis=1)
        ).ravel()
        return eligible & (common_sets == shared_links)

    def pair_is_correlation_free(self, path_a: int, path_b: int) -> bool:
        """True when the *union* of the two paths' links has no two distinct
        links in the same correlation set (paper Eq. 10 eligibility).

        Sharing the *same* link is allowed — one link is one random
        variable.  Requires both paths to be individually correlation-free
        (otherwise the union trivially is not).
        """
        touch_a: dict[int, int] = {}
        for link_id in self._topology.paths[path_a].link_ids:
            set_index = self.set_index_of(link_id)
            if set_index in touch_a:
                return False
            touch_a[set_index] = link_id
        seen_b: set[int] = set()
        for link_id in self._topology.paths[path_b].link_ids:
            set_index = self.set_index_of(link_id)
            if set_index in seen_b:
                return False
            seen_b.add(set_index)
            if set_index in touch_a and touch_a[set_index] != link_id:
                return False
        return True

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        sizes = sorted((len(group) for group in self._sets), reverse=True)
        return (
            f"CorrelationStructure(n_sets={self.n_sets}, "
            f"set_sizes={sizes[:8]}{'...' if len(sizes) > 8 else ''})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CorrelationStructure):
            return NotImplemented
        return (
            self._topology == other._topology
            and frozenset(self._sets) == frozenset(other._sets)
        )

    def __hash__(self) -> int:
        return hash((self._topology, frozenset(self._sets)))
