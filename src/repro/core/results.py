"""Inference-result container shared by all algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.topology import Topology

__all__ = ["InferenceResult"]


@dataclass(frozen=True)
class InferenceResult:
    """Per-link congestion probabilities plus provenance.

    Attributes:
        algorithm: ``"correlation"``, ``"independence"``, or
            ``"nguyen_thiran"``.
        congestion_probabilities: ``P(X_ek = 1)`` per link id, clipped to
            [0, 1].
        log_good: The raw solution vector ``x_k = log P(X_ek = 0)``.
        uncovered_links: Links constrained by no equation; their
            probability defaults to 0 ("never congested") and should be
            treated as unknown by consumers.
        n_single_equations: The paper's ``N1``.
        n_pair_equations: The paper's ``N2``.
        rank: Rank of the assembled system.
        solver: Which solver produced ``log_good``.
        diagnostics: Free-form extras (eligible path counts, timings...).
    """

    algorithm: str
    congestion_probabilities: np.ndarray
    log_good: np.ndarray
    uncovered_links: frozenset[int]
    n_single_equations: int
    n_pair_equations: int
    rank: int
    solver: str
    diagnostics: dict = field(default_factory=dict)

    @property
    def n_links(self) -> int:
        return int(self.congestion_probabilities.shape[0])

    @property
    def n_equations(self) -> int:
        """``N1 + N2`` — the paper compares this against ``|E|``."""
        return self.n_single_equations + self.n_pair_equations

    def probability(self, link_id: int) -> float:
        """``P(X_ek = 1)`` for one link id."""
        return float(self.congestion_probabilities[link_id])

    def probability_by_name(self, topology: Topology, name: str) -> float:
        """``P(X_ek = 1)`` looked up by link name."""
        return self.probability(topology.link(name).id)

    def absolute_errors(self, truth: np.ndarray) -> np.ndarray:
        """``|estimated − true|`` per link (the paper's error metric)."""
        truth = np.asarray(truth, dtype=np.float64)
        if truth.shape != self.congestion_probabilities.shape:
            raise ValueError(
                f"truth has shape {truth.shape}, expected "
                f"{self.congestion_probabilities.shape}"
            )
        return np.abs(self.congestion_probabilities - truth)

    def as_dict(self, topology: Topology) -> dict[str, float]:
        """``{link name: probability}`` for reports."""
        return {
            link.name: self.probability(link.id) for link in topology.links
        }
