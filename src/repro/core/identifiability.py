"""Assumption 4 (identifiability) checking.

The paper's key new assumption:

    **Assumption 4.** Given any two correlation subsets ``A, B ∈ C̃``,
    ``A ≠ B``, it holds that ``ψ(A) ≠ ψ(B)`` — A and B are not traversed
    by exactly the same paths.

This module provides two complementary checkers:

* :func:`check_assumption4` — the *exact* check: enumerate ``C̃`` (with an
  optional subset-size cap for large sets), hash coverage masks, report
  every colliding pair.  Exponential in correlation-set size, meant for
  validation-scale instances.
* :func:`structurally_unidentifiable_nodes` — the *structural* criterion
  from Section 3.3: an intermediate node whose ingress links all live in one
  correlation set and whose egress links all live in one correlation set
  makes the ingress subset and the egress subset cover exactly the same
  paths.  Linear time; used by scenario generators to *create* controlled
  unidentifiability for the Figure 4 experiments.

Links that belong to any colliding subset are called *unidentifiable*
(Section 5, "Unidentifiable Links").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.correlation import CorrelationStructure
from repro.core.topology import Topology

__all__ = [
    "IdentifiabilityReport",
    "check_assumption4",
    "structurally_unidentifiable_nodes",
    "unidentifiable_links_structural",
]


@dataclass(frozen=True)
class IdentifiabilityReport:
    """Outcome of an Assumption-4 check.

    Attributes:
        holds: True when no coverage collision was found.
        collisions: Pairs of distinct correlation subsets with identical
            coverage, as (frozenset, frozenset) of link ids.
        unidentifiable_links: Union of the links in colliding subsets.
        exhaustive: True when the check enumerated all of ``C̃``; False when
            a subset-size cap truncated the search (a clean report is then
            only evidence, not proof).
    """

    holds: bool
    collisions: tuple[tuple[frozenset[int], frozenset[int]], ...] = ()
    unidentifiable_links: frozenset[int] = frozenset()
    exhaustive: bool = True

    def describe(self, topology: Topology) -> str:
        """Human-readable summary using link names."""
        if self.holds:
            suffix = "" if self.exhaustive else " (non-exhaustive check)"
            return f"Assumption 4 holds{suffix}."
        lines = [f"Assumption 4 violated: {len(self.collisions)} collision(s)."]
        for left, right in self.collisions[:10]:
            left_names = sorted(topology.links[k].name for k in left)
            right_names = sorted(topology.links[k].name for k in right)
            lines.append(f"  ψ({left_names}) == ψ({right_names})")
        if len(self.collisions) > 10:
            lines.append(f"  ... and {len(self.collisions) - 10} more")
        return "\n".join(lines)


def check_assumption4(
    correlation: CorrelationStructure,
    *,
    max_subset_size: int | None = None,
    collect_all: bool = False,
) -> IdentifiabilityReport:
    """Exhaustively check Assumption 4 by coverage-mask hashing.

    Args:
        correlation: The correlation structure to check.
        max_subset_size: Bound subset enumeration per correlation set.  When
            the largest set exceeds the enumerable limit this argument is
            required; the resulting report is marked non-exhaustive.
        collect_all: When False (default) stop at the first collision per
            coverage mask pair; when True, collect every colliding pair
            (quadratic in the number of subsets sharing a mask).
    """
    topology = correlation.topology
    by_mask: dict[int, list[frozenset[int]]] = {}
    for subset in correlation.iter_subsets(max_subset_size=max_subset_size):
        mask = topology.coverage_of(subset)
        by_mask.setdefault(mask, []).append(subset)

    collisions: list[tuple[frozenset[int], frozenset[int]]] = []
    unidentifiable: set[int] = set()
    for subsets in by_mask.values():
        if len(subsets) < 2:
            continue
        for links in subsets:
            unidentifiable.update(links)
        if collect_all:
            for i in range(len(subsets)):
                for j in range(i + 1, len(subsets)):
                    collisions.append((subsets[i], subsets[j]))
        else:
            collisions.append((subsets[0], subsets[1]))

    exhaustive = (
        max_subset_size is None
        or max_subset_size >= correlation.largest_set_size
    )
    return IdentifiabilityReport(
        holds=not collisions,
        collisions=tuple(collisions),
        unidentifiable_links=frozenset(unidentifiable),
        exhaustive=exhaustive,
    )


def _interior_nodes(topology: Topology) -> set:
    """Nodes that appear strictly inside at least one path."""
    interior = set()
    for path in topology.paths:
        for link_id in path.link_ids[:-1]:
            interior.add(topology.links[link_id].dst)
    return interior


def structurally_unidentifiable_nodes(
    topology: Topology,
    correlation: CorrelationStructure,
) -> list:
    """Nodes matching the Section-3.3 structural criterion.

    A node qualifies when it is interior to some path, all links entering
    it belong to a single correlation set, and all links leaving it belong
    to a single correlation set (possibly the same).  At such a node the
    ingress-link subset and the egress-link subset cover exactly the paths
    through the node, violating Assumption 4 — unless one of the two
    subsets is a single link equal to the other, which cannot happen since
    ingress and egress links are distinct.
    """
    in_links: dict[object, list[int]] = {}
    out_links: dict[object, list[int]] = {}
    for link in topology.links:
        out_links.setdefault(link.src, []).append(link.id)
        in_links.setdefault(link.dst, []).append(link.id)

    offenders = []
    for node in _interior_nodes(topology):
        ingress = in_links.get(node, [])
        egress = out_links.get(node, [])
        if not ingress or not egress:
            continue
        ingress_sets = {correlation.set_index_of(k) for k in ingress}
        egress_sets = {correlation.set_index_of(k) for k in egress}
        if len(ingress_sets) == 1 and len(egress_sets) == 1:
            offenders.append(node)
    return offenders


def unidentifiable_links_structural(
    topology: Topology,
    correlation: CorrelationStructure,
) -> frozenset[int]:
    """Links incident to structurally unidentifiable nodes.

    This is the fast, sufficient-condition companion of
    :func:`check_assumption4`: every returned link genuinely belongs to a
    colliding correlation subset, but deeper collisions (spanning links of
    several nodes) are not detected.
    """
    offenders = set(structurally_unidentifiable_nodes(topology, correlation))
    links: set[int] = set()
    for link in topology.links:
        if link.src in offenders or link.dst in offenders:
            links.add(link.id)
    return frozenset(links)
