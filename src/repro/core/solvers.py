"""Solvers for the tomographic linear system.

The unknowns are ``x_k = log P(X_ek = 0) ≤ 0``.  When the equation system
has full column rank the solution is unique; otherwise the paper "picks the
one that minimizes the L1 norm error" — we implement that as the linear
program

    minimize   ‖R x − y‖₁
    subject to x ≤ 0

solved with scipy's HiGHS backend.  A bounded least-squares alternative is
provided for ablation (:func:`solve_bounded_least_squares`) along with an
automatic chooser.

Every solver accepts ``R`` either dense (:class:`numpy.ndarray`) or sparse
(any :mod:`scipy.sparse` matrix).  Sparse inputs — the native output of
:meth:`repro.core.equations.EquationSystem.sparse_matrix` — flow into the
LP without a densify round-trip; bounds are constructed as vectorised
``(n, 2)`` arrays rather than per-column Python lists.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog, lsq_linear

from repro.exceptions import SolverError

__all__ = [
    "solve_l1",
    "solve_bounded_least_squares",
    "solve_min_norm_least_squares",
    "min_norm_least_squares_with_rank",
    "solve",
    "SOLVERS",
]


def _coerce_matrix(matrix, values: np.ndarray):
    """Validate shapes; return ``(R, y, n_rows, n_cols)`` with ``R`` kept
    sparse when it came in sparse."""
    if sparse.issparse(matrix):
        matrix = matrix.tocsr().astype(np.float64)
    else:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise SolverError(f"R must be 2-D, got shape {matrix.shape}")
    values = np.asarray(values, dtype=np.float64)
    n_rows, n_cols = matrix.shape
    if values.shape != (n_rows,):
        raise SolverError(
            f"y has shape {values.shape}, expected ({n_rows},)"
        )
    return matrix, values, n_rows, n_cols


def _covered_columns(matrix) -> np.ndarray:
    """Boolean mask of columns appearing in at least one equation."""
    return np.asarray(np.abs(matrix).sum(axis=0)).ravel() > 0


def _densify(matrix) -> np.ndarray:
    return matrix.toarray() if sparse.issparse(matrix) else matrix


def solve_l1(
    matrix,
    values: np.ndarray,
    *,
    upper_bound: float = 0.0,
) -> np.ndarray:
    """Minimise ``‖Rx − y‖₁`` subject to ``x ≤ upper_bound``.

    Standard LP lift: auxiliary ``t ≥ |Rx − y|`` per row, minimise
    ``Σ t``.  Columns of ``R`` that are entirely zero (links covered by no
    equation) are pinned to 0 so the LP does not wander on free variables.
    """
    matrix, values, n_rows, n_cols = _coerce_matrix(matrix, values)

    sparse_matrix = (
        matrix if sparse.issparse(matrix) else sparse.csr_matrix(matrix)
    )
    identity = sparse.identity(n_rows, format="csr")
    constraint = sparse.vstack(
        [
            sparse.hstack([sparse_matrix, -identity]),
            sparse.hstack([-sparse_matrix, -identity]),
        ],
        format="csr",
    )
    rhs = np.concatenate([values, -values])
    objective = np.concatenate([np.zeros(n_cols), np.ones(n_rows)])

    covered = _covered_columns(sparse_matrix)
    bounds = np.empty((n_cols + n_rows, 2), dtype=np.float64)
    bounds[:n_cols, 0] = np.where(covered, -np.inf, 0.0)
    bounds[:n_cols, 1] = np.where(covered, upper_bound, 0.0)
    bounds[n_cols:, 0] = 0.0
    bounds[n_cols:, 1] = np.inf

    result = linprog(
        objective,
        A_ub=constraint,
        b_ub=rhs,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"L1 linear program failed: {result.message}")
    return result.x[:n_cols]


def min_norm_least_squares_with_rank(
    matrix,
    values: np.ndarray,
    *,
    upper_bound: float = 0.0,
) -> tuple[np.ndarray, int]:
    """Minimum-norm least squares plus the numerical rank of ``R``.

    The rank comes out of the ``lstsq`` factorisation itself — callers
    that previously ran a separate ``matrix_rank`` SVD get it for free.
    """
    dense = np.asarray(_densify(matrix), dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    solution, _, rank, _ = np.linalg.lstsq(dense, values, rcond=None)
    return np.minimum(solution, upper_bound), int(rank)


def solve_min_norm_least_squares(
    matrix,
    values: np.ndarray,
    *,
    upper_bound: float = 0.0,
) -> np.ndarray:
    """Minimum-norm least squares, clipped to ``x ≤ upper_bound``.

    This is the pseudo-inverse solution ``x = R⁺ y`` — the classic
    resolution of an under-determined tomographic system (the baseline of
    [12] learns link probabilities this way): directions unconstrained by
    the measurements stay at zero ("never congested") instead of drifting,
    and inconsistent measurements are spread across the involved links in
    the L2 sense.  The sign constraint is applied by clipping.
    """
    solution, _ = min_norm_least_squares_with_rank(
        matrix, values, upper_bound=upper_bound
    )
    return solution


def solve_bounded_least_squares(
    matrix,
    values: np.ndarray,
    *,
    upper_bound: float = 0.0,
) -> np.ndarray:
    """Minimise ``‖Rx − y‖₂`` subject to ``x ≤ upper_bound``.

    Ablation alternative to :func:`solve_l1`; uncovered columns are zeroed
    after the solve for parity with the L1 path.  Falls back to the
    clipped minimum-norm solution when the active-set iteration stalls.
    """
    matrix, values, _, n_cols = _coerce_matrix(matrix, values)
    # BVLS needs a dense operator; TRF works on sparse matrices natively.
    use_bvls = n_cols <= 400
    operator = _densify(matrix) if use_bvls else matrix
    result = lsq_linear(
        operator,
        values,
        bounds=(np.full(n_cols, -np.inf), np.full(n_cols, upper_bound)),
        method="bvls" if use_bvls else "trf",
    )
    if result.status < 0 or not np.all(np.isfinite(result.x)):
        solution = solve_min_norm_least_squares(
            matrix, values, upper_bound=upper_bound
        )
    else:
        solution = result.x
    covered = _covered_columns(matrix)
    solution = np.where(covered, solution, 0.0)
    return solution


#: Registry used by the algorithm front-ends ("auto" prefers L1, falling
#: back to least squares if the LP fails — rare, but measurement noise can
#: produce degenerate systems).
SOLVERS = {
    "l1": solve_l1,
    "least_squares": solve_bounded_least_squares,
    "min_norm": solve_min_norm_least_squares,
}


def solve(
    matrix,
    values: np.ndarray,
    *,
    method: str = "l1",
    upper_bound: float = 0.0,
) -> tuple[np.ndarray, str]:
    """Dispatch to a registered solver; returns ``(x, solver_used)``."""
    if method == "auto":
        try:
            return solve_l1(matrix, values, upper_bound=upper_bound), "l1"
        except SolverError:
            return (
                solve_bounded_least_squares(
                    matrix, values, upper_bound=upper_bound
                ),
                "least_squares",
            )
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise SolverError(
            f"unknown solver {method!r}; available: "
            f"{sorted(SOLVERS)} or 'auto'"
        ) from None
    return solver(matrix, values, upper_bound=upper_bound), method
