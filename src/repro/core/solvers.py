"""Solvers for the tomographic linear system.

The unknowns are ``x_k = log P(X_ek = 0) ≤ 0``.  When the equation system
has full column rank the solution is unique; otherwise the paper "picks the
one that minimizes the L1 norm error" — we implement that as the linear
program

    minimize   ‖R x − y‖₁
    subject to x ≤ 0

solved with scipy's HiGHS backend.  A bounded least-squares alternative is
provided for ablation (:func:`solve_bounded_least_squares`) along with an
automatic chooser.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog, lsq_linear

from repro.exceptions import SolverError

__all__ = [
    "solve_l1",
    "solve_bounded_least_squares",
    "solve_min_norm_least_squares",
    "solve",
    "SOLVERS",
]


def solve_l1(
    matrix: np.ndarray,
    values: np.ndarray,
    *,
    upper_bound: float = 0.0,
) -> np.ndarray:
    """Minimise ``‖Rx − y‖₁`` subject to ``x ≤ upper_bound``.

    Standard LP lift: auxiliary ``t ≥ |Rx − y|`` per row, minimise
    ``Σ t``.  Columns of ``R`` that are entirely zero (links covered by no
    equation) are pinned to 0 so the LP does not wander on free variables.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if matrix.ndim != 2:
        raise SolverError(f"R must be 2-D, got shape {matrix.shape}")
    n_rows, n_cols = matrix.shape
    if values.shape != (n_rows,):
        raise SolverError(
            f"y has shape {values.shape}, expected ({n_rows},)"
        )

    sparse_matrix = sparse.csr_matrix(matrix)
    identity = sparse.identity(n_rows, format="csr")
    constraint = sparse.vstack(
        [
            sparse.hstack([sparse_matrix, -identity]),
            sparse.hstack([-sparse_matrix, -identity]),
        ],
        format="csr",
    )
    rhs = np.concatenate([values, -values])
    objective = np.concatenate([np.zeros(n_cols), np.ones(n_rows)])

    covered = np.asarray(np.abs(matrix).sum(axis=0) > 0).ravel()
    bounds: list[tuple[float | None, float | None]] = []
    for column in range(n_cols):
        if covered[column]:
            bounds.append((None, upper_bound))
        else:
            bounds.append((0.0, 0.0))
    bounds.extend([(0.0, None)] * n_rows)

    result = linprog(
        objective,
        A_ub=constraint,
        b_ub=rhs,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise SolverError(f"L1 linear program failed: {result.message}")
    return result.x[:n_cols]


def solve_min_norm_least_squares(
    matrix: np.ndarray,
    values: np.ndarray,
    *,
    upper_bound: float = 0.0,
) -> np.ndarray:
    """Minimum-norm least squares, clipped to ``x ≤ upper_bound``.

    This is the pseudo-inverse solution ``x = R⁺ y`` — the classic
    resolution of an under-determined tomographic system (the baseline of
    [12] learns link probabilities this way): directions unconstrained by
    the measurements stay at zero ("never congested") instead of drifting,
    and inconsistent measurements are spread across the involved links in
    the L2 sense.  The sign constraint is applied by clipping.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    solution, *_ = np.linalg.lstsq(matrix, values, rcond=None)
    return np.minimum(solution, upper_bound)


def solve_bounded_least_squares(
    matrix: np.ndarray,
    values: np.ndarray,
    *,
    upper_bound: float = 0.0,
) -> np.ndarray:
    """Minimise ``‖Rx − y‖₂`` subject to ``x ≤ upper_bound``.

    Ablation alternative to :func:`solve_l1`; uncovered columns are zeroed
    after the solve for parity with the L1 path.  Falls back to the
    clipped minimum-norm solution when the active-set iteration stalls.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    n_cols = matrix.shape[1]
    result = lsq_linear(
        matrix,
        values,
        bounds=(np.full(n_cols, -np.inf), np.full(n_cols, upper_bound)),
        method="bvls" if n_cols <= 400 else "trf",
    )
    if result.status < 0 or not np.all(np.isfinite(result.x)):
        solution = solve_min_norm_least_squares(
            matrix, values, upper_bound=upper_bound
        )
    else:
        solution = result.x
    covered = np.abs(matrix).sum(axis=0) > 0
    solution = np.where(covered, solution, 0.0)
    return solution


#: Registry used by the algorithm front-ends ("auto" prefers L1, falling
#: back to least squares if the LP fails — rare, but measurement noise can
#: produce degenerate systems).
SOLVERS = {
    "l1": solve_l1,
    "least_squares": solve_bounded_least_squares,
    "min_norm": solve_min_norm_least_squares,
}


def solve(
    matrix: np.ndarray,
    values: np.ndarray,
    *,
    method: str = "l1",
    upper_bound: float = 0.0,
) -> tuple[np.ndarray, str]:
    """Dispatch to a registered solver; returns ``(x, solver_used)``."""
    if method == "auto":
        try:
            return solve_l1(matrix, values, upper_bound=upper_bound), "l1"
        except SolverError:
            return (
                solve_bounded_least_squares(
                    matrix, values, upper_bound=upper_bound
                ),
                "least_squares",
            )
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise SolverError(
            f"unknown solver {method!r}; available: "
            f"{sorted(SOLVERS)} or 'auto'"
        ) from None
    return solver(matrix, values, upper_bound=upper_bound), method
