"""Per-snapshot congested-link localization (paper Section 3.3, outlook).

The paper's closing observation: once per-link (or per-subset) congestion
probabilities are known, the classic ill-posed question — *which* links
were congested during a given snapshot — can be answered by explicitly
scoring each feasible explanation, "even in the presence of link
correlations".  The authors defer that algorithm to future work; this
module implements it as an extension, together with the smallest-set
heuristic used by the earlier Boolean-tomography systems [13, 10] as a
baseline.

Feasibility (from Assumption 2, separability): an explanation ``H ⊆ E``
is feasible for an observed congested-path set ``F`` iff

* every link in ``H`` only covers congested paths: ``ψ({e}) ⊆ F`` for all
  ``e ∈ H`` (a congested link on a good path would contradict
  separability), and
* the explanation covers everything: ``ψ(H) = F``.

Scoring: with per-link probabilities ``p_k`` and cross-set independence,
``log P(H) = Σ_{k∈H} log p_k + Σ_{k∉H} log(1−p_k)``; dropping the constant
gives the weight ``w_k = log(p_k / (1−p_k))`` per selected link.  (Within a
correlation set this treats links as independent given the marginals — the
full joint from :class:`repro.core.factors.CongestionFactors` can be
plugged in via ``set_log_score`` when the theorem algorithm supplied it.)
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.topology import Topology
from repro.exceptions import MeasurementError
from repro.utils.bitset import bit_count, iter_bits, subset_of

__all__ = [
    "LocalizationResult",
    "feasible_candidate_links",
    "localize_map",
    "localize_smallest_set",
]

#: Probability floor/ceiling guarding the log-odds weights.
_EPSILON = 1e-9


@dataclass(frozen=True)
class LocalizationResult:
    """One snapshot's inferred congested link set.

    Attributes:
        congested_links: The selected explanation ``H``.
        log_likelihood: Score of ``H`` (MAP search) or ``nan`` (heuristic).
        method: ``"map"`` or ``"smallest_set"``.
        exact: True when the search provably examined the optimum.
        noise_paths: Bitmask of observed-congested paths discarded as
            observation noise (non-zero only with
            ``on_infeasible="trim"``).
    """

    congested_links: frozenset[int]
    log_likelihood: float
    method: str
    exact: bool
    noise_paths: int = 0

    def precision_recall(
        self, true_links: frozenset[int]
    ) -> tuple[float, float]:
        """Detection precision/recall against a ground-truth link set."""
        if not self.congested_links:
            precision = 1.0 if not true_links else 0.0
        else:
            hits = len(self.congested_links & true_links)
            precision = hits / len(self.congested_links)
        if not true_links:
            recall = 1.0
        else:
            recall = len(self.congested_links & true_links) / len(true_links)
        return precision, recall


def feasible_candidate_links(
    topology: Topology, congested_mask: int
) -> list[int]:
    """Links allowed in *any* feasible explanation of ``congested_mask``.

    A link qualifies iff it covers at least one path and every path it
    covers is congested.
    """
    return [
        link.id
        for link in topology.links
        if topology.coverage[link.id]
        and subset_of(topology.coverage[link.id], congested_mask)
    ]


def _resolve_infeasible(
    topology: Topology,
    congested_mask: int,
    candidates: list[int],
    on_infeasible: str,
) -> tuple[int, list[int], int]:
    """Handle congested paths no feasible candidate can explain.

    Returns ``(cleaned_mask, candidates, noise_mask)``.  With
    ``on_infeasible="raise"`` an unexplainable observation raises
    :class:`MeasurementError`; with ``"trim"`` the offending paths are
    dropped as observation noise.  A dropped path was covered by no
    feasible candidate, so every surviving candidate's coverage already
    avoids it — the candidate set is unchanged and one pass suffices.
    """
    if on_infeasible not in ("raise", "trim"):
        raise ValueError(
            f"on_infeasible must be 'raise' or 'trim', got "
            f"{on_infeasible!r}"
        )
    reachable = 0
    for link_id in candidates:
        reachable |= topology.coverage[link_id]
    if reachable == congested_mask:
        return congested_mask, candidates, 0
    if on_infeasible == "raise":
        raise MeasurementError(
            "observed congested-path set admits no feasible explanation "
            "(separability violated by the observation — e.g. measurement "
            "noise marked a path congested while all its links' other "
            "paths are good)"
        )
    noise = congested_mask & ~reachable
    return congested_mask & ~noise, candidates, noise


def localize_map(
    topology: Topology,
    congested_mask: int,
    link_probabilities: np.ndarray,
    *,
    max_nodes: int = 200_000,
    on_infeasible: str = "raise",
) -> LocalizationResult:
    """Most-likely explanation via best-first branch and bound.

    Args:
        topology: The measurement topology.
        congested_mask: Bitmask of paths observed congested this snapshot.
        link_probabilities: ``P(X_ek = 1)`` per link id (from either
            inference algorithm).
        max_nodes: Search budget; on exhaustion the best complete
            explanation found so far is returned with ``exact=False``.
        on_infeasible: ``"raise"`` rejects observations that admit no
            feasible explanation; ``"trim"`` drops the unexplainable
            congested paths as observation noise (recorded in
            ``LocalizationResult.noise_paths``).

    The search orders candidate links by descending log-odds; each search
    node either includes or excludes the next candidate, pruning branches
    that can no longer cover the target or beat the incumbent.
    """
    if congested_mask == 0:
        return LocalizationResult(
            congested_links=frozenset(),
            log_likelihood=0.0,
            method="map",
            exact=True,
        )
    probabilities = np.clip(
        np.asarray(link_probabilities, dtype=np.float64),
        _EPSILON,
        1.0 - _EPSILON,
    )
    candidates = feasible_candidate_links(topology, congested_mask)
    congested_mask, candidates, noise = _resolve_infeasible(
        topology, congested_mask, candidates, on_infeasible
    )
    if congested_mask == 0:
        return LocalizationResult(
            congested_links=frozenset(),
            log_likelihood=0.0,
            method="map",
            exact=True,
            noise_paths=noise,
        )

    weights = {
        k: math.log(probabilities[k] / (1.0 - probabilities[k]))
        for k in candidates
    }
    # Descending weight: likely-congested links first.
    order = sorted(candidates, key=lambda k: -weights[k])
    coverages = [topology.coverage[k] for k in order]
    # suffix_cover[i] = what candidates i.. can still cover.
    n = len(order)
    suffix_cover = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_cover[i] = suffix_cover[i + 1] | coverages[i]
    # Optimistic bound: sum of positive weights from i on.
    suffix_gain = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        gain = max(weights[order[i]], 0.0)
        suffix_gain[i] = suffix_gain[i + 1] + gain

    best_score = -math.inf
    best_set: frozenset[int] = frozenset()
    exact = True
    # Max-heap on optimistic score (negated for heapq).
    counter = 0
    heap = [(-(suffix_gain[0]), counter, 0, 0, 0.0, ())]
    expanded = 0
    while heap:
        neg_bound, _, index, covered, score, chosen = heapq.heappop(heap)
        if -neg_bound <= best_score:
            continue
        expanded += 1
        if expanded > max_nodes:
            exact = False
            break
        if covered == congested_mask and score > best_score:
            best_score = score
            best_set = frozenset(chosen)
        if index == n:
            continue
        remaining = congested_mask & ~covered
        if not subset_of(remaining, suffix_cover[index]):
            continue
        # Branch 1: include candidate `index`.
        include_score = score + weights[order[index]]
        include_bound = include_score + suffix_gain[index + 1]
        counter += 1
        if include_bound > best_score:
            heapq.heappush(
                heap,
                (
                    -include_bound,
                    counter,
                    index + 1,
                    covered | coverages[index],
                    include_score,
                    chosen + (order[index],),
                ),
            )
        # Branch 2: exclude it.
        exclude_bound = score + suffix_gain[index + 1]
        counter += 1
        if exclude_bound > best_score and subset_of(
            remaining, suffix_cover[index + 1]
        ):
            heapq.heappush(
                heap,
                (-exclude_bound, counter, index + 1, covered, score, chosen),
            )

    if best_score == -math.inf:
        # Budget ran out before any complete cover: fall back to greedy.
        fallback = localize_smallest_set(
            topology, congested_mask, tie_break=weights
        )
        return LocalizationResult(
            congested_links=fallback.congested_links,
            log_likelihood=float("nan"),
            method="map",
            exact=False,
            noise_paths=noise,
        )
    return LocalizationResult(
        congested_links=best_set,
        log_likelihood=best_score,
        method="map",
        exact=exact,
        noise_paths=noise,
    )


def localize_smallest_set(
    topology: Topology,
    congested_mask: int,
    *,
    tie_break: dict[int, float] | None = None,
    on_infeasible: str = "raise",
) -> LocalizationResult:
    """Greedy smallest-explanation heuristic (after [13, 10]).

    Repeatedly picks the feasible link covering the most still-unexplained
    congested paths; ties broken by the optional per-link score (higher
    first), then by link id for determinism.
    """
    if congested_mask == 0:
        return LocalizationResult(
            congested_links=frozenset(),
            log_likelihood=float("nan"),
            method="smallest_set",
            exact=True,
        )
    candidates = feasible_candidate_links(topology, congested_mask)
    congested_mask, candidates, noise = _resolve_infeasible(
        topology, congested_mask, candidates, on_infeasible
    )
    if congested_mask == 0:
        return LocalizationResult(
            congested_links=frozenset(),
            log_likelihood=float("nan"),
            method="smallest_set",
            exact=True,
            noise_paths=noise,
        )
    chosen: set[int] = set()
    covered = 0
    remaining_candidates = set(candidates)
    while covered != congested_mask:
        def gain(link_id: int) -> tuple:
            new = bit_count(topology.coverage[link_id] & ~covered)
            score = tie_break.get(link_id, 0.0) if tie_break else 0.0
            return (new, score, -link_id)

        best = max(remaining_candidates, key=gain)
        if not topology.coverage[best] & ~covered:
            raise AssertionError(
                "greedy cover stalled despite feasibility pre-check"
            )
        chosen.add(best)
        covered |= topology.coverage[best]
        remaining_candidates.discard(best)
    return LocalizationResult(
        congested_links=frozenset(chosen),
        log_likelihood=float("nan"),
        method="smallest_set",
        exact=True,
        noise_paths=noise,
    )


def congested_mask_from_states(path_states: np.ndarray) -> int:
    """Helper: bitmask of congested paths from a boolean row vector."""
    mask = 0
    for path_id in np.flatnonzero(np.asarray(path_states)):
        mask |= 1 << int(path_id)
    return mask
