"""Window-incremental inference: the streaming face of Section 4.

The batch pipeline rebuilds the full equation system for every call to
:func:`~repro.core.correlation_algorithm.infer_congestion`.  But with the
paper's ``"independent"`` selection (and with ``"all"``), *which* rows are
accepted depends only on the prepared topology — acceptance is decided by
rank tracking over rows derived from path link-id sets, never by the
measured values.  The accepted row **structure** is therefore constant
across measurement windows, and a streaming engine can pay for it once:

* :class:`EquationTemplate` runs the equation builder a single time
  against a zero-valued structure probe, caches the assembled CSR matrix
  and the per-row value sources (path id for Eq.-9 rows, path pair for
  Eq.-10 rows), and thereafter re-derives only the right-hand-side vector
  ``y`` from fresh measurements plus one solve — bit-identical to a full
  :func:`infer_congestion` over the same observations.
* :class:`StreamingTomography` wraps the template with per-window change
  detection: boolean verdicts against a probability threshold, onset /
  clear diffs between consecutive windows with their event timestamps,
  and optional MAP localization of the newest snapshot.

Used by the ``stream`` CLI subcommand, the ``/stream`` service endpoint,
and the detection-latency evaluation in :mod:`repro.eval.streaming`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.correlation import CorrelationStructure
from repro.core.correlation_algorithm import AlgorithmOptions
from repro.core.equations import build_equations
from repro.core.interfaces import PathGoodProvider, batch_log_good_all
from repro.core.localization import LocalizationResult, localize_map
from repro.core.prepared import (
    PreparedRegistry,
    PreparedTopology,
    get_prepared,
)
from repro.core.results import InferenceResult
from repro.core.solvers import solve
from repro.core.topology import Topology

__all__ = ["EquationTemplate", "WindowVerdict", "StreamingTomography"]


class _StructureProbe:
    """Zero-valued measurement provider used to extract row structure.

    With ``"independent"``/``"all"`` selection the builder's acceptance
    decisions never read the measured values, so probing with zeros
    yields exactly the row set any real measurement batch would get.
    """

    def __init__(self, n_paths: int) -> None:
        self._n_paths = n_paths

    def log_good_all(self) -> np.ndarray:
        return np.zeros(self._n_paths, dtype=np.float64)

    def log_good(self, path_id: int) -> float:
        return 0.0

    def log_good_pairs(self, pairs) -> np.ndarray:
        return np.zeros(np.asarray(pairs).shape[0], dtype=np.float64)

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        return 0.0


@dataclass(frozen=True)
class EquationTemplate:
    """The measurement-independent half of one equation system, cached.

    Build once per ``(topology, correlation, options)`` with
    :meth:`build`; then :meth:`infer` re-derives only the ``y`` vector
    and solves — the per-window cost of the streaming engine.
    """

    topology: Topology
    options: AlgorithmOptions
    matrix: object  # scipy.sparse.csr_matrix
    single_positions: np.ndarray
    single_paths: np.ndarray
    pair_positions: np.ndarray
    pair_array: np.ndarray
    n_single: int
    n_pair: int
    rank: int
    n_eligible: int
    uncovered_links: frozenset[int]
    fully_determined: bool

    @classmethod
    def build(
        cls,
        topology: Topology,
        correlation: CorrelationStructure,
        *,
        options: AlgorithmOptions | None = None,
        prepared: PreparedTopology | None = None,
        registry: PreparedRegistry | None = None,
    ) -> "EquationTemplate":
        """Extract the accepted row structure for this instance."""
        options = options or AlgorithmOptions()
        system = build_equations(
            topology,
            correlation,
            _StructureProbe(topology.n_paths),
            selection=options.selection,
            max_pair_candidates=options.max_pair_candidates,
            pair_order_seed=options.pair_order_seed,
            prepared=prepared,
            registry=registry,
        )
        matrix, _ = system.sparse_matrix()
        single_positions, single_paths = [], []
        pair_positions, pair_array = [], []
        for position, row in enumerate(system.rows):
            if row.kind == "path":
                single_positions.append(position)
                single_paths.append(row.paths[0])
            else:
                pair_positions.append(position)
                pair_array.append(row.paths)
        return cls(
            topology=topology,
            options=options,
            matrix=matrix,
            single_positions=np.asarray(single_positions, dtype=np.int64),
            single_paths=np.asarray(single_paths, dtype=np.int64),
            pair_positions=np.asarray(pair_positions, dtype=np.int64),
            pair_array=(
                np.asarray(pair_array, dtype=np.int64)
                if pair_array
                else np.zeros((0, 2), dtype=np.int64)
            ),
            n_single=system.n_single,
            n_pair=system.n_pair,
            rank=system.rank,
            n_eligible=len(system.eligible_paths),
            uncovered_links=system.uncovered_links,
            fully_determined=system.is_fully_determined,
        )

    @property
    def n_rows(self) -> int:
        return self.n_single + self.n_pair

    def values(self, measurements: PathGoodProvider) -> np.ndarray:
        """The right-hand-side ``y`` for one measurement window.

        Bit-identical to the values :func:`build_equations` would record:
        both gather ``log_good_all`` by path id and evaluate
        ``log_good_pairs`` elementwise over the accepted pairs.
        """
        y = np.zeros(self.n_rows, dtype=np.float64)
        if self.single_paths.size:
            all_values = batch_log_good_all(
                measurements, self.topology.n_paths
            )
            if all_values is not None:
                singles = all_values[self.single_paths]
            else:
                singles = np.array(
                    [
                        measurements.log_good(int(path_id))
                        for path_id in self.single_paths
                    ],
                    dtype=np.float64,
                )
            y[self.single_positions] = singles
        if self.pair_array.shape[0]:
            if hasattr(measurements, "log_good_pairs"):
                pairs = np.asarray(
                    measurements.log_good_pairs(self.pair_array),
                    dtype=np.float64,
                )
            else:
                pairs = np.array(
                    [
                        measurements.log_good_pair(int(a), int(b))
                        for a, b in self.pair_array
                    ],
                    dtype=np.float64,
                )
            y[self.pair_positions] = pairs
        return y

    def infer(
        self,
        measurements: PathGoodProvider,
        *,
        algorithm_label: str = "correlation",
    ) -> InferenceResult:
        """One window's inference over the cached structure.

        Bit-identical to :func:`infer_congestion` with the same options
        over the same observations — the streaming correctness anchor.
        """
        values = self.values(measurements)
        solution, solver_used = solve(
            self.matrix, values, method=self.options.solver
        )
        solution = np.minimum(solution, 0.0)
        probabilities = np.clip(1.0 - np.exp(solution), 0.0, 1.0)
        return InferenceResult(
            algorithm=algorithm_label,
            congestion_probabilities=probabilities,
            log_good=solution,
            uncovered_links=self.uncovered_links,
            n_single_equations=self.n_single,
            n_pair_equations=self.n_pair,
            rank=self.rank,
            solver=solver_used,
            diagnostics={
                "n_eligible_paths": self.n_eligible,
                "n_links": self.topology.n_links,
                "fully_determined": self.fully_determined,
            },
        )


@dataclass(frozen=True)
class WindowVerdict:
    """One window's re-emitted estimates plus the change-detection diff.

    Attributes:
        window_index: Sequence number of the update (0-based).
        timestamp: Global snapshot index just past the window (evicted
            history included), i.e. the event time of this verdict.
        n_snapshots: Surviving history size the estimate used.
        result: The full inference result (analog estimates).
        congested: Boolean per-link verdicts
            (``probability > threshold``).
        onsets: Link ids newly flagged congested this window.
        clears: Link ids newly flagged good this window.
        changed: Whether any verdict flipped since the last window.
        localization: MAP explanation of the newest snapshot, when
            requested.
    """

    window_index: int
    timestamp: int
    n_snapshots: int
    result: InferenceResult
    congested: np.ndarray
    onsets: tuple[int, ...]
    clears: tuple[int, ...]
    changed: bool
    localization: LocalizationResult | None = None

    @property
    def probabilities(self) -> np.ndarray:
        """Analog per-link estimates (alias into ``result``)."""
        return self.result.congestion_probabilities


class StreamingTomography:
    """Per-window incremental inference with change detection.

    Feed each window's accumulated observations to :meth:`update`; the
    equation structure is built once (reusing the
    :class:`PreparedTopology` prep) and each window pays only the value
    gather, the solve, and the verdict diff.

    Args:
        topology: The measurement topology.
        correlation: Known correlation structure.
        options: Algorithm knobs; defaults follow the paper.
        threshold: Probability above which a link is flagged congested.
        localize_last: Also MAP-localize the newest snapshot per window
            (requires observations with ``congested_mask_of_snapshot``).
        registry: Prepared-state registry; ``None`` uses the ambient one.
    """

    def __init__(
        self,
        topology: Topology,
        correlation: CorrelationStructure,
        *,
        options: AlgorithmOptions | None = None,
        threshold: float = 0.5,
        localize_last: bool = False,
        registry: PreparedRegistry | None = None,
        algorithm_label: str = "correlation",
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold {threshold} outside [0, 1]")
        self._topology = topology
        self._correlation = correlation
        self._options = options or AlgorithmOptions()
        self._threshold = threshold
        self._localize_last = localize_last
        self._registry = registry
        self._algorithm_label = algorithm_label
        self._prepared: PreparedTopology | None = None
        self._template: EquationTemplate | None = None
        self._previous: np.ndarray | None = None
        self._window_index = 0

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def window_index(self) -> int:
        """Number of windows consumed so far."""
        return self._window_index

    def prepare(self) -> PreparedTopology:
        """Warm (and pin) the measurement-independent prepared state."""
        if self._prepared is None:
            self._prepared = get_prepared(
                self._topology, self._correlation, registry=self._registry
            )
        return self._prepared

    def template(self) -> EquationTemplate:
        """The cached equation structure (built on first use)."""
        if self._template is None:
            self._template = EquationTemplate.build(
                self._topology,
                self._correlation,
                options=self._options,
                prepared=self.prepare(),
            )
        return self._template

    def update(self, observations: PathGoodProvider) -> WindowVerdict:
        """Infer over the current history and diff against last window."""
        result = self.template().infer(
            observations, algorithm_label=self._algorithm_label
        )
        congested = result.congestion_probabilities > self._threshold
        congested.flags.writeable = False
        previous = self._previous
        if previous is None:
            previous = np.zeros_like(congested)
        onsets = tuple(int(k) for k in np.flatnonzero(congested & ~previous))
        clears = tuple(int(k) for k in np.flatnonzero(~congested & previous))
        localization = None
        if self._localize_last and hasattr(
            observations, "congested_mask_of_snapshot"
        ):
            mask = observations.congested_mask_of_snapshot(
                observations.n_snapshots - 1
            )
            localization = localize_map(
                self._topology,
                mask,
                result.congestion_probabilities,
                on_infeasible="trim",
            )
        timestamp = getattr(observations, "n_evicted", 0) + int(
            observations.n_snapshots
        )
        verdict = WindowVerdict(
            window_index=self._window_index,
            timestamp=timestamp,
            n_snapshots=int(observations.n_snapshots),
            result=result,
            congested=congested,
            onsets=onsets,
            clears=clears,
            changed=bool(onsets or clears),
            localization=localization,
        )
        self._previous = congested
        self._window_index += 1
        return verdict
