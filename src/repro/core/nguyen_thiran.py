"""Classic single-path variant of the independence algorithm [12].

Reference ablation: Nguyen & Thiran's original formulation learns link
probabilities from *single-path* good frequencies only,

    y_i = Σ_{k: e_k ∈ P_i} x_k        for every path P_i,

solved in the least-squares sense with the sign constraint ``x ≤ 0``.  Our
headline "independence algorithm" additionally uses pairwise observations
(the same machinery the correlation algorithm gets); this module preserves
the narrower original so the contribution of pair equations can be
measured (benchmark A1 in DESIGN.md).
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.core.interfaces import PathGoodProvider, batch_log_good_all
from repro.core.results import InferenceResult
from repro.core.solvers import solve
from repro.core.topology import Topology

__all__ = ["infer_congestion_single_path"]

#: Per-topology SVD of the routing matrix.  The baseline solves the same
#: matrix against fresh measurements every trial of a sweep, so the
#: factorisation is hoisted out of the per-trial loop; entries die with
#: their topology.
_MIN_NORM_FACTORS: "weakref.WeakKeyDictionary[Topology, tuple]" = (
    weakref.WeakKeyDictionary()
)


def _min_norm_factor(topology: Topology) -> tuple:
    factor = _MIN_NORM_FACTORS.get(topology)
    if factor is None:
        matrix = topology.routing_matrix()
        u, singular, vt = np.linalg.svd(matrix, full_matrices=False)
        cutoff = (
            np.finfo(np.float64).eps
            * max(matrix.shape)
            * (singular[0] if singular.size else 0.0)
        )
        keep = singular > cutoff
        inverse = np.zeros_like(singular)
        inverse[keep] = 1.0 / singular[keep]
        factor = (u, inverse, vt, int(np.count_nonzero(keep)))
        _MIN_NORM_FACTORS[topology] = factor
    return factor


def infer_congestion_single_path(
    topology: Topology,
    measurements: PathGoodProvider,
    *,
    solver: str = "min_norm",
) -> InferenceResult:
    """Infer link probabilities from single-path equations only.

    Every path contributes a row regardless of correlation (the method
    assumes independent links); there are no pair rows, so the system is
    typically rank deficient and the solver's minimum-error criterion picks
    the solution.
    """
    matrix = topology.routing_matrix()
    values = batch_log_good_all(measurements, topology.n_paths)
    if values is None:
        values = np.array(
            [measurements.log_good(path.id) for path in topology.paths],
            dtype=np.float64,
        )
    if solver == "min_norm":
        # Min-norm least squares through the topology's cached SVD:
        # ``x = V Σ⁺ Uᵀ y``.  One factorisation serves every measurement
        # batch, and the rank falls out of the spectrum — no per-trial
        # ``lstsq``/``matrix_rank`` passes.
        u, inverse_singular, vt, rank = _min_norm_factor(topology)
        solution = vt.T @ (inverse_singular * (u.T @ values))
        solver_used = "min_norm"
    else:
        solution, solver_used = solve(matrix, values, method=solver)
        rank = int(np.linalg.matrix_rank(matrix))
    solution = np.minimum(solution, 0.0)
    probabilities = np.clip(1.0 - np.exp(solution), 0.0, 1.0)
    return InferenceResult(
        algorithm="nguyen_thiran",
        congestion_probabilities=probabilities,
        log_good=solution,
        uncovered_links=frozenset(),
        n_single_equations=topology.n_paths,
        n_pair_equations=0,
        rank=int(rank),
        solver=solver_used,
        diagnostics={"n_links": topology.n_links},
    )
