"""Classic single-path variant of the independence algorithm [12].

Reference ablation: Nguyen & Thiran's original formulation learns link
probabilities from *single-path* good frequencies only,

    y_i = Σ_{k: e_k ∈ P_i} x_k        for every path P_i,

solved in the least-squares sense with the sign constraint ``x ≤ 0``.  Our
headline "independence algorithm" additionally uses pairwise observations
(the same machinery the correlation algorithm gets); this module preserves
the narrower original so the contribution of pair equations can be
measured (benchmark A1 in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.interfaces import PathGoodProvider
from repro.core.results import InferenceResult
from repro.core.solvers import solve
from repro.core.topology import Topology

__all__ = ["infer_congestion_single_path"]


def infer_congestion_single_path(
    topology: Topology,
    measurements: PathGoodProvider,
    *,
    solver: str = "min_norm",
) -> InferenceResult:
    """Infer link probabilities from single-path equations only.

    Every path contributes a row regardless of correlation (the method
    assumes independent links); there are no pair rows, so the system is
    typically rank deficient and the solver's minimum-error criterion picks
    the solution.
    """
    matrix = topology.routing_matrix()
    values = np.array(
        [measurements.log_good(path.id) for path in topology.paths],
        dtype=np.float64,
    )
    solution, solver_used = solve(matrix, values, method=solver)
    solution = np.minimum(solution, 0.0)
    probabilities = np.clip(1.0 - np.exp(solution), 0.0, 1.0)
    rank = int(np.linalg.matrix_rank(matrix))
    return InferenceResult(
        algorithm="nguyen_thiran",
        congestion_probabilities=probabilities,
        log_good=solution,
        uncovered_links=frozenset(),
        n_single_equations=topology.n_paths,
        n_pair_equations=0,
        rank=rank,
        solver=solver_used,
        diagnostics={"n_links": topology.n_links},
    )
