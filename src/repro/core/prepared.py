"""Measurement-independent prepared state per (topology, correlation).

Everything the Section-4 equation builder can compute *before* seeing a
single measurement — the correlation-free path set, the single-path
Gaussian elimination, the shared-link pair candidates with their
eligibility verdicts, and the batch dependence mask — depends only on
the topology and the correlation structure.  A sweep re-infers against
the same pair for every trial, and a resident service answers thousands
of queries against one loaded topology, so this state is worth keeping
warm and sharing.

:class:`PreparedTopology` is that state as a first-class object.
:class:`PreparedRegistry` is an explicit, bounded, content-keyed LRU of
prepared topologies guarded by a lock, replacing the historical
single-slot ``_BUILDER_PREP`` module global (which keyed on the
correlation object's *identity*, thrashed whenever two topologies
alternated in one process, and raced on the shared mutable
``dependent_mask`` slot under threads).

Callers can pass a registry explicitly, install one for a dynamic scope
with :func:`use_registry`, or rely on the process-wide
:data:`DEFAULT_REGISTRY`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar

import numpy as np

from repro.core.correlation import CorrelationStructure
from repro.core.topology import Topology

__all__ = [
    "PreparedTopology",
    "PreparedRegistry",
    "DEFAULT_REGISTRY",
    "active_registry",
    "use_registry",
    "get_prepared",
]


class _RankTracker:
    """Incremental Gaussian elimination over accepted rows.

    Stored rows are kept *fully* reduced (reduced row-echelon form): each
    is normalised at its pivot and has zeros at every other stored pivot.
    Reducing a candidate therefore needs a single gather of its pivot
    coefficients plus one small matrix product over the rows with nonzero
    coefficient — no Python loop over the stored rows.
    """

    def __init__(self, n_cols: int, tol: float = 1e-9) -> None:
        self._n_cols = n_cols
        self._tol = tol
        self._rows = np.empty((min(n_cols, 64), n_cols), dtype=np.float64)
        self._pivots = np.empty(n_cols, dtype=np.int64)
        self._rank = 0

    @property
    def rank(self) -> int:
        return self._rank

    def residual(self, row: np.ndarray) -> np.ndarray:
        reduced = row.astype(np.float64, copy=True)
        if self._rank:
            pivots = self._pivots[: self._rank]
            coefficients = reduced[pivots]
            nonzero = np.flatnonzero(coefficients)
            if nonzero.size:
                reduced -= coefficients[nonzero] @ self._rows[nonzero]
        return reduced

    def batch_dependent(self, rows) -> np.ndarray:
        """True for rows already inside the tracked row space.

        A residual that vanishes at rank ``r`` stays zero as the space
        only grows, so such rows can never be accepted later — callers
        use this to discard hopeless candidates in one sparse product
        instead of examining them one by one.
        """
        n_rows = rows.shape[0]
        if self._rank == 0 or n_rows == 0:
            return np.zeros(n_rows, dtype=bool)
        stored = self._rows[: self._rank]
        pivots = self._pivots[: self._rank]
        dependent = np.empty(n_rows, dtype=bool)
        # Chunked so the dense residual block stays bounded regardless
        # of how many candidates the caller throws at us.
        chunk = max(1, 8 * 1024 * 1024 // (8 * max(1, self._n_cols)))
        for start in range(0, n_rows, chunk):
            block = rows[start : start + chunk]
            residual = block[:, pivots] @ stored
            np.negative(residual, out=residual)
            # Add the sparse candidate entries without densifying them;
            # CSR entries are unique, so a fancy-indexed add suffices.
            coo = block.tocoo()
            residual[coo.row, coo.col] += coo.data
            dependent[start : start + chunk] = (
                np.abs(residual).max(axis=1) <= self._tol
            )
        return dependent

    def clone(self) -> "_RankTracker":
        """Independent copy of the current elimination state.

        Lets measurement-independent prefixes of the elimination (the
        single-path phase, which depends only on topology + correlation)
        be computed once and reused across measurement batches.
        """
        other = _RankTracker.__new__(_RankTracker)
        other._n_cols = self._n_cols
        other._tol = self._tol
        other._rows = self._rows[: self._rank].copy()
        other._pivots = self._pivots.copy()
        other._rank = self._rank
        return other

    def try_add(self, row: np.ndarray) -> bool:
        """Add ``row`` if it increases the rank; report whether it did."""
        reduced = self.residual(row)
        pivot = int(np.argmax(np.abs(reduced)))
        if abs(reduced[pivot]) <= self._tol:
            return False
        reduced /= reduced[pivot]
        rank = self._rank
        if rank == self._rows.shape[0]:
            grown = np.empty(
                (min(self._n_cols, max(64, 2 * rank)), self._n_cols),
                dtype=np.float64,
            )
            grown[:rank] = self._rows[:rank]
            self._rows = grown
        if rank:
            # Restore RREF: eliminate the new pivot from stored rows.
            column = self._rows[:rank, pivot].copy()
            nonzero = np.flatnonzero(column)
            if nonzero.size:
                self._rows[nonzero] -= column[nonzero, None] * reduced
        self._rows[rank] = reduced
        self._pivots[rank] = pivot
        self._rank = rank + 1
        return True


def _row_vector(link_ids, n_links: int) -> np.ndarray:
    row = np.zeros(n_links, dtype=np.float64)
    row[sorted(link_ids)] = 1.0
    return row


def _shared_link_pair_candidates(
    topology: Topology,
    eligible_mask: np.ndarray,
) -> np.ndarray:
    """Unique eligible-path pairs sharing at least one link, as an
    ``(m, 2)`` array.

    Enumeration order matches the historical generator: scan links in id
    order, emit the pairs of eligible paths through each link in
    lexicographic order, and keep the first occurrence of every pair.
    """
    routing = topology.routing_matrix_sparse().tocsc()
    blocks_a: list[np.ndarray] = []
    blocks_b: list[np.ndarray] = []
    for link_id in range(topology.n_links):
        through = routing.indices[
            routing.indptr[link_id] : routing.indptr[link_id + 1]
        ]
        through = through[eligible_mask[through]]
        if through.size < 2:
            continue
        first, second = np.triu_indices(through.size, k=1)
        blocks_a.append(through[first])
        blocks_b.append(through[second])
    if not blocks_a:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.stack(
        [
            np.concatenate(blocks_a).astype(np.int64),
            np.concatenate(blocks_b).astype(np.int64),
        ],
        axis=1,
    )
    codes = pairs[:, 0] * np.int64(topology.n_paths) + pairs[:, 1]
    _, first_seen = np.unique(codes, return_index=True)
    return pairs[np.sort(first_seen)]


class PreparedTopology:
    """Everything the equation builder knows before any measurement.

    Instances are immutable after :meth:`build` except for two lazily
    computed, lock-guarded caches (the pair dependence mask and the
    structural fingerprint).  They are therefore safe to share across
    threads and across inference calls.

    Attributes:
        topology: The measurement topology.
        correlation: The correlation structure the prep was built for.
        eligible: Correlation-free path ids, ascending (Eq.-9 domain).
        singles: Per eligible path ``(path_id, link_ids, added)`` where
            ``added`` records whether the single row increased the rank.
        candidates: ``(m, 2)`` shared-link eligible-path pairs in
            generation order (Eq.-10 candidate domain).
        pair_eligible: Boolean verdicts of the correlation-free test for
            each candidate pair.
    """

    __slots__ = (
        "topology",
        "correlation",
        "eligible",
        "singles",
        "candidates",
        "pair_eligible",
        "_tracker",
        "_dependent_mask",
        "_fingerprint",
        "_lock",
    )

    def __init__(
        self,
        *,
        topology: Topology,
        correlation: CorrelationStructure,
        eligible: tuple[int, ...],
        singles: tuple,
        tracker: _RankTracker,
        candidates: np.ndarray,
        pair_eligible: np.ndarray,
    ) -> None:
        self.topology = topology
        self.correlation = correlation
        self.eligible = eligible
        self.singles = singles
        self.candidates = candidates
        self.pair_eligible = pair_eligible
        self._tracker = tracker
        self._dependent_mask: np.ndarray | None = None
        self._fingerprint: str | None = None
        self._lock = threading.Lock()

    @classmethod
    def build(
        cls, topology: Topology, correlation: CorrelationStructure
    ) -> "PreparedTopology":
        """Run the measurement-independent half of the equation builder."""
        n_links = topology.n_links
        eligible_mask = correlation.path_correlation_free_mask()
        eligible = tuple(
            int(path_id) for path_id in np.flatnonzero(eligible_mask)
        )
        tracker = _RankTracker(n_links)
        singles = []
        for path_id in eligible:
            link_ids = frozenset(topology.paths[path_id].link_ids)
            added = tracker.try_add(_row_vector(link_ids, n_links))
            singles.append((path_id, link_ids, added))
        candidates = _shared_link_pair_candidates(topology, eligible_mask)
        return cls(
            topology=topology,
            correlation=correlation,
            eligible=eligible,
            singles=tuple(singles),
            tracker=tracker,
            candidates=candidates,
            pair_eligible=correlation.pairs_correlation_free(candidates),
        )

    @property
    def rank(self) -> int:
        """Rank reached by the single-path elimination alone."""
        return self._tracker.rank

    def clone_tracker(self) -> _RankTracker:
        """A private elimination state seeded with the single-path rows."""
        return self._tracker.clone()

    def dependent_mask(self) -> np.ndarray:
        """Batch dependence verdicts for the candidate pairs (lazy).

        Candidates whose union row is already spanned by the single-path
        rows can never be accepted; dropping them spares the sequential
        examination.  The mask is order-independent, computed once under
        the lock, and shared by every subsequent build.
        """
        with self._lock:
            if self._dependent_mask is None:
                candidates = self.candidates
                links = self.topology.routing_matrix_sparse()
                union = links[candidates[:, 0]] + links[candidates[:, 1]]
                union.data = np.minimum(union.data, 1.0)
                self._dependent_mask = self._tracker.batch_dependent(union)
            return self._dependent_mask

    @property
    def fingerprint(self) -> str:
        """Stable structural digest of ``(topology, correlation)``.

        Covers exactly the inputs the prepared state is a function of —
        link count, per-path link-id tuples, and the correlation sets —
        so equal-content pairs produce equal fingerprints across
        processes.  Used as the service registry key.
        """
        with self._lock:
            if self._fingerprint is None:
                payload = json.dumps(
                    {
                        "n_links": self.topology.n_links,
                        "paths": [
                            list(path.link_ids)
                            for path in self.topology.paths
                        ],
                        "sets": sorted(
                            sorted(group) for group in self.correlation.sets
                        ),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
                self._fingerprint = hashlib.sha256(payload).hexdigest()
            return self._fingerprint


class PreparedRegistry:
    """Bounded, content-keyed LRU of :class:`PreparedTopology` objects.

    Keys are ``(topology, correlation)`` pairs compared by *content*
    (both types define value equality and cache their hashes), so two
    structurally identical pairs share one prep no matter how they were
    constructed.  All operations hold one reentrant lock; builds happen
    under it too, which serialises duplicate work instead of duplicating
    it — the common contended case is many threads wanting the *same*
    prep, where every waiter then hits the fresh entry.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[tuple, PreparedTopology]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get_or_build(
        self, topology: Topology, correlation: CorrelationStructure
    ) -> PreparedTopology:
        key = (topology, correlation)
        with self._lock:
            prepared = self._entries.get(key)
            if prepared is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return prepared
            self._misses += 1
            prepared = PreparedTopology.build(topology, correlation)
            self._entries[key] = prepared
            self._shrink()
            return prepared

    def put(self, prepared: PreparedTopology) -> None:
        """Insert an externally built prep (e.g. warmed ahead of time)."""
        key = (prepared.topology, prepared.correlation)
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            self._shrink()

    def evict(
        self, topology: Topology, correlation: CorrelationStructure
    ) -> bool:
        with self._lock:
            return self._entries.pop((topology, correlation), None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def resize(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        with self._lock:
            self._capacity = capacity
            self._shrink()

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self._capacity,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def _shrink(self) -> None:
        # Caller holds the lock.
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self._evictions += 1


#: Process-wide fallback registry.  Sized for the batch drivers' working
#: set (a figure sweep touches at most a handful of correlation
#: structures per topology); services construct their own registries
#: sized to their topology budget.
DEFAULT_REGISTRY = PreparedRegistry(capacity=8)

_ACTIVE_REGISTRY: "ContextVar[PreparedRegistry | None]" = ContextVar(
    "repro_prepared_registry", default=None
)


def active_registry() -> PreparedRegistry:
    """The registry equation builds resolve against in this context."""
    registry = _ACTIVE_REGISTRY.get()
    return DEFAULT_REGISTRY if registry is None else registry


@contextmanager
def use_registry(registry: PreparedRegistry | None):
    """Install *registry* as the ambient prep registry for the scope.

    ``None`` is a no-op pass-through, so call sites can forward an
    optional parameter unconditionally.  The installation is a
    contextvar, hence scoped per-thread/per-task and safe to nest.
    """
    if registry is None:
        yield
        return
    token = _ACTIVE_REGISTRY.set(registry)
    try:
        yield
    finally:
        _ACTIVE_REGISTRY.reset(token)


def get_prepared(
    topology: Topology,
    correlation: CorrelationStructure,
    *,
    registry: PreparedRegistry | None = None,
    prepared: PreparedTopology | None = None,
) -> PreparedTopology:
    """Resolve the prepared state for ``(topology, correlation)``.

    An explicit ``prepared`` wins (after a consistency check); otherwise
    the explicit ``registry``, the ambient one installed by
    :func:`use_registry`, and finally :data:`DEFAULT_REGISTRY`.
    """
    if prepared is not None:
        if not (
            (
                prepared.topology is topology
                or prepared.topology == topology
            )
            and (
                prepared.correlation is correlation
                or prepared.correlation == correlation
            )
        ):
            raise ValueError(
                "prepared state was built for a different "
                "(topology, correlation) pair"
            )
        return prepared
    if registry is None:
        registry = active_registry()
    return registry.get_or_build(topology, correlation)
