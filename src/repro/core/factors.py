"""Congestion factors and the Lemma-3 conversions.

For a correlation subset ``A ⊆ Cp`` the paper defines the *congestion
factor* (Eq. 2)

    α_A = P(Sp = A) / P(Sp = ∅),

how often exactly the links of ``A`` are the congested ones in their set,
relative to the set being fully good.  Lemma 3 then recovers everything
else:

    P(Sp = ∅)  = 1 / (1 + Σ_{A ⊆ Cp, A ≠ ∅} α_A)
    P(Sp = A)  = α_A · P(Sp = ∅)
    P(X_ek = 1) = Σ_{A ∋ ek} P(Sp = A)

:class:`CongestionFactors` stores the factors per correlation set and
implements those conversions, including joint congestion probabilities of
arbitrary link sets (independence across correlation sets turns them into
products of per-set joints).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.correlation import CorrelationStructure
from repro.exceptions import ModelError

__all__ = ["CongestionFactors"]


class CongestionFactors:
    """Congestion factors ``α_A`` for every correlation subset.

    Args:
        correlation: The correlation structure the factors refer to.
        factors: Mapping from correlation subset (frozenset of link ids) to
            its factor value.  Every subset must be non-empty and contained
            in a single correlation set; factors must be non-negative.
            Subsets missing from the mapping are treated as having factor 0
            (the subset is never the exact congested set).
    """

    def __init__(
        self,
        correlation: CorrelationStructure,
        factors: Mapping[frozenset[int], float],
    ) -> None:
        self._correlation = correlation
        self._factors: dict[frozenset[int], float] = {}
        for subset, value in factors.items():
            subset = frozenset(subset)
            if not subset:
                raise ModelError("the empty set has no congestion factor")
            owners = {correlation.set_index_of(k) for k in subset}
            if len(owners) != 1:
                raise ModelError(
                    f"subset {sorted(subset)} spans several correlation sets"
                )
            if value < 0:
                raise ModelError(
                    f"congestion factor of {sorted(subset)} is negative "
                    f"({value}); factors are ratios of probabilities"
                )
            self._factors[subset] = float(value)
        # Per-set normaliser: 1 + Σ α_A over that set's subsets.
        self._set_total = [1.0] * correlation.n_sets
        for subset, value in self._factors.items():
            set_index = correlation.set_index_of(next(iter(subset)))
            self._set_total[set_index] += value

    # ------------------------------------------------------------------
    # Raw factor access
    # ------------------------------------------------------------------
    @property
    def correlation(self) -> CorrelationStructure:
        return self._correlation

    def factor(self, subset: Iterable[int]) -> float:
        """``α_A`` (0 when the subset was never assigned a factor)."""
        return self._factors.get(frozenset(subset), 0.0)

    def known_subsets(self) -> list[frozenset[int]]:
        """Subsets with explicitly stored factors."""
        return list(self._factors)

    # ------------------------------------------------------------------
    # Lemma 3
    # ------------------------------------------------------------------
    def p_set_empty(self, set_index: int) -> float:
        """``P(Sp = ∅)`` — probability the whole set is good."""
        return 1.0 / self._set_total[set_index]

    def p_set_equals(self, subset: Iterable[int]) -> float:
        """``P(Sp = A)`` — the links of ``A`` are exactly the congested
        ones in their correlation set."""
        subset = frozenset(subset)
        if not subset:
            raise ModelError(
                "use p_set_empty(set_index) for the empty state"
            )
        set_index = self._correlation.set_index_of(next(iter(subset)))
        return self.factor(subset) * self.p_set_empty(set_index)

    def link_marginal(self, link_id: int) -> float:
        """``P(X_ek = 1)`` via Lemma 3's final sum."""
        set_index = self._correlation.set_index_of(link_id)
        total = 0.0
        for subset, value in self._factors.items():
            if link_id in subset:
                total += value
        return total * self.p_set_empty(set_index)

    def link_marginals(self) -> dict[int, float]:
        """``P(X_ek = 1)`` for every link, as ``{link_id: probability}``."""
        empties = [
            self.p_set_empty(index)
            for index in range(self._correlation.n_sets)
        ]
        sums: dict[int, float] = {
            k: 0.0 for k in range(self._correlation.topology.n_links)
        }
        for subset, value in self._factors.items():
            for link_id in subset:
                sums[link_id] += value
        return {
            link_id: sums[link_id]
            * empties[self._correlation.set_index_of(link_id)]
            for link_id in sums
        }

    def joint_within_set(self, links: Iterable[int]) -> float:
        """``P(all links of A congested)`` for ``A`` inside one set.

        Sums ``P(Sp = B)`` over every stored superset ``B ⊇ A``.
        """
        links = frozenset(links)
        if not links:
            return 1.0
        owners = {self._correlation.set_index_of(k) for k in links}
        if len(owners) != 1:
            raise ModelError(
                "joint_within_set requires links of a single correlation "
                "set; use joint() for arbitrary link sets"
            )
        set_index = owners.pop()
        total = 0.0
        for subset, value in self._factors.items():
            if links <= subset:
                total += value
        return total * self.p_set_empty(set_index)

    def joint(self, links: Iterable[int]) -> float:
        """``P(all links of A congested)`` for an arbitrary link set.

        Splits ``A`` by correlation set; independence across sets makes the
        joint the product of per-set joints (this is how the paper derives
        e.g. ``P(X_e1=1, X_e3=1)`` in Section 3.2, Step 4).
        """
        by_set: dict[int, set[int]] = {}
        for link_id in frozenset(links):
            by_set.setdefault(
                self._correlation.set_index_of(link_id), set()
            ).add(link_id)
        probability = 1.0
        for members in by_set.values():
            probability *= self.joint_within_set(members)
        return probability

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"CongestionFactors(n_subsets={len(self._factors)}, "
            f"n_sets={self._correlation.n_sets})"
        )
