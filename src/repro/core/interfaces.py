"""Measurement-side protocols consumed by the inference algorithms.

The algorithms never touch raw packets; they consume *probabilities of
observable path events*.  Two protocols capture exactly what each algorithm
needs:

* :class:`PathGoodProvider` — what the practical algorithm (Section 4)
  needs: ``log P(Y_Pi = 0)`` for single paths and ``log P(Y_Pi = 0,
  Y_Pj = 0)`` for path pairs.
* :class:`PathStateProvider` — what the theorem algorithm (Appendix A)
  needs: the probability that the set of congested paths is *exactly* a
  given set, ``P(ψ(S) = F)``, including ``F = ∅``.

Both are implemented by the empirical estimator
(:class:`repro.simulate.observations.PathObservations`) and by the exact
oracle (:class:`repro.simulate.oracle.ExactPathStateDistribution`), so every
algorithm can run on noisy measurements or on ground truth unchanged.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["PathGoodProvider", "PathStateProvider"]


@runtime_checkable
class PathGoodProvider(Protocol):
    """Log-probabilities of single and pairwise path-good events."""

    def log_good(self, path_id: int) -> float:
        """``log P(Y_Pi = 0)`` — the paper's ``y_i``."""
        ...

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        """``log P(Y_Pi = 0, Y_Pj = 0)`` — the paper's ``y_ij``."""
        ...


@runtime_checkable
class PathStateProvider(Protocol):
    """Exact-congested-path-set probabilities."""

    def p_congested_mask(self, mask: int) -> float:
        """``P(ψ(S) = F)`` for the path set encoded by ``mask``.

        ``mask = 0`` is the all-paths-good event ``P(ψ(S) = ∅)``.
        """
        ...
