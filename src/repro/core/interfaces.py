"""Measurement-side protocols consumed by the inference algorithms.

The algorithms never touch raw packets; they consume *probabilities of
observable path events*.  Two protocols capture exactly what each algorithm
needs:

* :class:`PathGoodProvider` — what the practical algorithm (Section 4)
  needs: ``log P(Y_Pi = 0)`` for single paths and ``log P(Y_Pi = 0,
  Y_Pj = 0)`` for path pairs.
* :class:`PathStateProvider` — what the theorem algorithm (Appendix A)
  needs: the probability that the set of congested paths is *exactly* a
  given set, ``P(ψ(S) = F)``, including ``F = ∅``.

Both are implemented by the empirical estimator
(:class:`repro.simulate.observations.PathObservations`) and by the exact
oracle (:class:`repro.simulate.oracle.ExactPathStateDistribution`), so every
algorithm can run on noisy measurements or on ground truth unchanged.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["PathGoodProvider", "PathStateProvider", "batch_log_good_all"]


def batch_log_good_all(measurements, n_paths: int) -> "np.ndarray | None":
    """All ``log P(Y_i = 0)`` via the provider's batch API, if it has one.

    Batch consumers (the equation builder, the independence baseline)
    probe for the optional vectorised ``log_good_all`` here so the
    sniffing — and the handling of a provider returning the wrong shape
    (always a loud ``ValueError``) — lives in exactly one place.
    Returns ``None`` for scalar-only providers; callers then fall back
    to the ``log_good`` protocol loop.
    """
    if not hasattr(measurements, "log_good_all"):
        return None
    values = np.asarray(measurements.log_good_all(), dtype=np.float64)
    if values.shape != (n_paths,):
        raise ValueError(
            f"log_good_all returned shape {values.shape}, expected "
            f"({n_paths},)"
        )
    return values


@runtime_checkable
class PathGoodProvider(Protocol):
    """Log-probabilities of single and pairwise path-good events."""

    def log_good(self, path_id: int) -> float:
        """``log P(Y_Pi = 0)`` — the paper's ``y_i``."""
        ...

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        """``log P(Y_Pi = 0, Y_Pj = 0)`` — the paper's ``y_ij``."""
        ...


@runtime_checkable
class PathStateProvider(Protocol):
    """Exact-congested-path-set probabilities."""

    def p_congested_mask(self, mask: int) -> float:
        """``P(ψ(S) = F)`` for the path set encoded by ``mask``.

        ``mask = 0`` is the all-paths-good event ``P(ψ(S) = ∅)``.
        """
        ...
