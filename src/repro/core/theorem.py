"""The exact "theorem algorithm" (paper Theorem 1 and Appendix A).

The proof of Theorem 1 is constructive: order the correlation subsets by
the number of paths they cover, and compute each congestion factor ``α_A``
from measurable path-state probabilities plus factors of subsets earlier in
the order (Lemma 2).  Lemma 3 then turns factors into per-set state
probabilities and link marginals.

The central recursion (paper Eq. 18)::

    P(ψ(S) = ψ(A)) / P(ψ(S) = ∅)  =  α_A · Γ_A  +  Γ_Ā

where ``Γ_A`` sums, over network states matching ``ψ(A)`` whose component
in A's own correlation set is exactly ``A``, the product of the *other*
sets' factors, and ``Γ_Ā`` does the same over matching states whose
component differs from ``A`` (including that component's factor).

The algorithm is exponential in correlation-set size — the paper itself
calls it impractical and uses it only as the feasibility construction.  We
implement it faithfully for validation: on small instances it must agree
with the ground-truth model exactly (tests) and provides the reference the
practical algorithm (:mod:`repro.core.correlation_algorithm`) is compared
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.correlation import CorrelationStructure
from repro.core.factors import CongestionFactors
from repro.core.identifiability import check_assumption4
from repro.core.interfaces import PathStateProvider
from repro.core.state import iter_exact_covers
from repro.exceptions import IdentifiabilityError, MeasurementError
from repro.utils.bitset import bit_count

__all__ = ["TheoremAlgorithm", "TheoremResult"]

#: Refuse to run when |C̃| exceeds this bound — the point of the practical
#: algorithm (Section 4) is exactly to avoid this blow-up.
DEFAULT_MAX_SUBSETS = 50_000


@dataclass(frozen=True)
class TheoremResult:
    """Output of the theorem algorithm.

    Attributes:
        factors: The identified congestion factors ``α_A`` for all
            ``A ∈ C̃`` (wrapped with the Lemma-3 conversions).
        link_marginals: ``P(X_ek = 1)`` per link id.
        clamped_subsets: Subsets whose computed factor came out negative
            (possible only with noisy measurements) and was clamped to 0.
    """

    factors: CongestionFactors
    link_marginals: dict[int, float]
    clamped_subsets: tuple[frozenset[int], ...] = field(default=())

    def joint(self, link_ids) -> float:
        """``P(all given links congested)`` — Theorem 1's full claim."""
        return self.factors.joint(link_ids)


class TheoremAlgorithm:
    """Exact identification of congestion factors by ordered induction.

    Args:
        topology: The measurement topology.
        correlation: Known correlation structure.  Assumption 4 must hold;
            a violation raises :class:`IdentifiabilityError` at
            construction time.
        max_subsets: Safety bound on ``|C̃|``.
    """

    def __init__(
        self,
        topology,
        correlation: CorrelationStructure,
        *,
        max_subsets: int = DEFAULT_MAX_SUBSETS,
    ) -> None:
        self._topology = topology
        self._correlation = correlation
        n_subsets = correlation.n_subsets()
        if n_subsets > max_subsets:
            raise MeasurementError(
                f"|C̃| = {n_subsets} exceeds the bound {max_subsets}; the "
                "theorem algorithm is exponential — use the practical "
                "correlation algorithm instead (paper Section 4)"
            )
        report = check_assumption4(correlation)
        if not report.holds:
            raise IdentifiabilityError(
                "Assumption 4 does not hold; the theorem algorithm's "
                "induction is undefined.\n" + report.describe(topology),
                colliding_subsets=report.collisions,
            )
        # Precompute C̃ with coverage masks and owning set, ordered by the
        # partial order  A ≺ B ⇔ |ψ(A)| < |ψ(B)|  (any tie-break is a valid
        # linear extension: Lemma 1 dependencies are strictly smaller).
        self._subsets: list[tuple[frozenset[int], int, int]] = []
        for set_index in range(correlation.n_sets):
            for subset in correlation.subsets_of_set(set_index):
                mask = topology.coverage_of(subset)
                self._subsets.append((subset, mask, set_index))
        self._subsets.sort(key=lambda item: bit_count(item[1]))

    # ------------------------------------------------------------------
    @property
    def ordered_subsets(self) -> list[frozenset[int]]:
        """The linear extension of ``≺`` the induction follows."""
        return [subset for subset, _, _ in self._subsets]

    # ------------------------------------------------------------------
    def identify(self, measurements: PathStateProvider) -> TheoremResult:
        """Run the induction of Lemma 2 and the conversions of Lemma 3.

        Args:
            measurements: Provider of ``P(ψ(S) = F)``; typically the exact
                oracle or empirical congested-path-set frequencies.

        Raises:
            MeasurementError: When ``P(ψ(S) = ∅)`` is measured as zero —
                every congestion factor is a ratio against that event, so
                the method fundamentally needs some fully-good snapshots.
        """
        p_all_good = measurements.p_congested_mask(0)
        if p_all_good <= 0.0:
            raise MeasurementError(
                "P(ψ(S) = ∅) = 0: congestion factors are ratios against "
                "the all-paths-good event, which was never observed"
            )

        correlation = self._correlation
        n_sets = correlation.n_sets
        alphas: dict[frozenset[int], float] = {}
        clamped: list[frozenset[int]] = []

        # Per correlation set, candidate (subset, mask) pairs for the state
        # enumeration; the empty subset (factor 1) is always admissible.
        per_set_all: list[list[tuple[frozenset[int], int]]] = [
            [(frozenset(), 0)] for _ in range(n_sets)
        ]
        for subset, mask, set_index in self._subsets:
            per_set_all[set_index].append((subset, mask))

        def alpha_of(subset: frozenset[int]) -> float:
            if not subset:
                return 1.0
            try:
                return alphas[subset]
            except KeyError:
                # Lemma 1 guarantees dependencies come earlier in the
                # order; reaching this means the order was violated.
                raise AssertionError(
                    f"factor for {sorted(subset)} requested before it was "
                    "computed — ordering bug"
                ) from None

        for subset, target_mask, q in self._subsets:
            gamma_a = 0.0
            gamma_not_a = 0.0
            for state in iter_exact_covers(target_mask, per_set_all):
                if state[q] == subset:
                    product = 1.0
                    for p in range(n_sets):
                        if p != q:
                            product *= alpha_of(state[p])
                    gamma_a += product
                else:
                    product = 1.0
                    for p in range(n_sets):
                        product *= alpha_of(state[p])
                    gamma_not_a += product
            # Γ_A ≥ 1 always: the state S_n = A itself contributes the
            # all-empty product (Lemma 2's "denominator never 0").
            ratio = measurements.p_congested_mask(target_mask) / p_all_good
            value = (ratio - gamma_not_a) / gamma_a
            if value < 0.0:
                # A subset whose true factor is 0 computes to a tiny
                # negative through float cancellation; zero it silently.
                # Meaningful negatives only arise from noisy inputs and
                # are recorded.
                tolerance = 1e-9 * max(1.0, ratio, gamma_not_a)
                if value < -tolerance:
                    clamped.append(subset)
                value = 0.0
            alphas[subset] = value

        factors = CongestionFactors(correlation, alphas)
        return TheoremResult(
            factors=factors,
            link_marginals=factors.link_marginals(),
            clamped_subsets=tuple(clamped),
        )
