"""Small shared utilities: bitsets, RNG plumbing, tables, validation."""

from repro.utils.bitset import (
    bit_count,
    bits_of,
    iter_bits,
    mask_of,
    subset_of,
)
from repro.utils.rng import as_generator, spawn_children
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "bit_count",
    "bits_of",
    "iter_bits",
    "mask_of",
    "subset_of",
    "as_generator",
    "spawn_children",
    "format_table",
    "check_fraction",
    "check_positive",
    "check_probability",
]
