"""Bitmask helpers for sets of paths and links.

The paper's coverage function ``ψ(A)`` maps link sets to path sets.  We
represent a set of paths (or links) as a Python ``int`` used as a bitmask:
bit ``i`` is set when element ``i`` belongs to the set.  Python integers are
arbitrary precision, so this representation works unchanged for the
paper-scale instances (1500 paths) and is dramatically faster than
``frozenset`` for the union/equality operations that dominate the
identifiability checks and the theorem algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = ["mask_of", "bits_of", "iter_bits", "bit_count", "subset_of"]


def mask_of(indices: Iterable[int]) -> int:
    """Build a bitmask with the given bit positions set.

    >>> mask_of([0, 2])
    5
    >>> mask_of([])
    0
    """
    mask = 0
    for index in indices:
        if index < 0:
            raise ValueError(f"bit index must be non-negative, got {index}")
        mask |= 1 << index
    return mask


def bits_of(mask: int) -> list[int]:
    """Return the sorted list of bit positions set in ``mask``.

    >>> bits_of(5)
    [0, 2]
    """
    return list(iter_bits(mask))


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of set bits in increasing order.

    Uses the classic lowest-set-bit trick, so the cost is proportional to the
    number of set bits rather than the width of the mask.
    """
    if mask < 0:
        raise ValueError(f"bitmask must be non-negative, got {mask}")
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def bit_count(mask: int) -> int:
    """Number of set bits (``|ψ(A)|`` when ``mask`` encodes a path set)."""
    if mask < 0:
        raise ValueError(f"bitmask must be non-negative, got {mask}")
    return mask.bit_count()


def subset_of(inner: int, outer: int) -> bool:
    """True when every bit of ``inner`` is also set in ``outer``.

    >>> subset_of(0b0101, 0b1101)
    True
    >>> subset_of(0b0011, 0b0101)
    False
    """
    return inner & ~outer == 0
