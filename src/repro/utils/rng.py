"""Random-number-generator plumbing.

Every stochastic component of the library accepts either a seed (``int``),
``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`.
Centralising the coercion here keeps experiment scripts reproducible: one
top-level seed fans out deterministically to every substrate via
:func:`spawn_children`.
"""

from __future__ import annotations

import copy

import numpy as np

__all__ = [
    "as_generator",
    "spawn_children",
    "clone_generator",
    "SeedSpec",
    "generator_spec",
    "generator_from_spec",
    "generator_from_parts",
]

SeedLike = (
    "int | None | np.random.Generator | np.random.SeedSequence | SeedSpec"
)


class SeedSpec:
    """Lazy, immutable stand-in for a PCG64-backed generator.

    Holds the plain-int fields of :func:`generator_spec` and materialises
    the generator only when a consumer coerces it through
    :func:`as_generator`.  The distributed wire codec decodes task seeds
    into these instead of eagerly rebuilding generators: reconstruction
    (SeedSequence + PCG64 seeding, ~15µs per seed) is then paid inside
    the worker's pool children at execution time — where it parallelises —
    rather than serially in the session thread during chunk decode.

    Bit-identity is preserved by construction: materialisation overwrites
    the bit-generator state with the captured ints, so draws and spawns
    match the original generator exactly (see :func:`generator_from_parts`).
    Instances are cheap to deep-copy (eight scalars), which also makes
    :func:`clone_generator` on decoded tasks cheaper than cloning a live
    generator.
    """

    __slots__ = (
        "state",
        "inc",
        "has_uint32",
        "uinteger",
        "entropy",
        "spawn_key",
        "pool_size",
        "n_children_spawned",
    )

    def __init__(
        self,
        state,
        inc,
        has_uint32,
        uinteger,
        entropy,
        spawn_key,
        pool_size,
        n_children_spawned,
    ):
        self.state = state
        self.inc = inc
        self.has_uint32 = has_uint32
        self.uinteger = uinteger
        self.entropy = entropy
        self.spawn_key = spawn_key
        self.pool_size = pool_size
        self.n_children_spawned = n_children_spawned

    def materialize(self) -> np.random.Generator:
        """Rebuild the described generator (a fresh instance each call)."""
        return generator_from_parts(
            self.state,
            self.inc,
            self.has_uint32,
            self.uinteger,
            self.entropy,
            self.spawn_key,
            self.pool_size,
            self.n_children_spawned,
        )

    def __repr__(self):  # pragma: no cover - debugging aid
        return (
            f"SeedSpec(entropy={self.entropy!r}, "
            f"spawn_key={self.spawn_key!r})"
        )


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (OS entropy), an ``int`` seed, a ``SeedSequence``, a
    :class:`SeedSpec` (materialised to a bit-exact generator), or an
    existing ``Generator`` (returned unchanged so that state is shared with
    the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if isinstance(seed, SeedSpec):
        return seed.materialize()
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, an int, a numpy SeedSequence, a SeedSpec or "
        f"a Generator; got {type(seed).__name__}"
    )


def spawn_children(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Used by experiment drivers so that, e.g., topology generation and
    congestion sampling consume independent streams and adding snapshots to
    one stage never perturbs another.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, SeedSpec):
        seed = seed.materialize()
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def clone_generator(seed):
    """Bit-exact private copy of a seed-like value.

    For a :class:`numpy.random.Generator` the clone must reproduce the
    original in *both* draw behaviour and spawn behaviour:
    reconstructing a generator from ``bit_generator.state`` alone would
    draw identically but attach a fresh ``SeedSequence``, so a later
    :func:`spawn_children` on the clone would diverge.  ``deepcopy``
    carries the seed sequence (entropy, spawn key, children counter)
    along with the state, which is exactly the contract the scenario
    engine relies on when it re-executes a task list.

    Other seed-likes (``None``, ints, ``SeedSequence``) deep-copy too,
    so callers can hand any accepted seed form to a consumer that will
    mutate it without disturbing the original.
    """
    return copy.deepcopy(seed)


def generator_spec(gen: np.random.Generator) -> dict:
    """Lossless, pickle-free description of a PCG64-backed generator.

    Captures both halves of the :func:`clone_generator` contract — the
    bit-generator *state* (draw behaviour) and the attached
    :class:`numpy.random.SeedSequence` (spawn behaviour) — as plain
    Python ints and tuples, so the distributed wire codec can ship a
    generator without pickling it and reconstruct a bit-exact twin with
    :func:`generator_from_spec`.

    Raises :class:`ValueError` for anything but a ``PCG64``-backed
    generator with an integer-entropy seed sequence: the engine only
    ever produces those (``default_rng`` / ``SeedSequence.spawn``), and
    a lossy description would silently break bit-identity, so exotic
    generators must fail loudly (callers fall back to the pickled wire).
    """
    if not isinstance(gen, np.random.Generator):
        raise ValueError(
            f"generator_spec needs a numpy Generator, got "
            f"{type(gen).__name__}"
        )
    bit_generator = gen.bit_generator
    if not isinstance(bit_generator, np.random.PCG64):
        raise ValueError(
            f"generator_spec only describes PCG64 bit generators, got "
            f"{type(bit_generator).__name__}"
        )
    seed_seq = bit_generator.seed_seq
    if not isinstance(seed_seq, np.random.SeedSequence):
        raise ValueError(
            "generator_spec needs a SeedSequence-carrying bit generator"
        )
    entropy = seed_seq.entropy
    if entropy is not None and not isinstance(entropy, int):
        # Sequence entropy (list form) is legal numpy but never produced
        # by this codebase's seeding paths; keep the wire form simple.
        raise ValueError(
            f"generator_spec needs integer (or None) entropy, got "
            f"{type(entropy).__name__}"
        )
    state = bit_generator.state
    return {
        "state": int(state["state"]["state"]),
        "inc": int(state["state"]["inc"]),
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
        "entropy": entropy,
        "spawn_key": tuple(int(k) for k in seed_seq.spawn_key),
        "pool_size": int(seed_seq.pool_size),
        "n_children_spawned": int(seed_seq.n_children_spawned),
    }


def generator_from_parts(
    state: int,
    inc: int,
    has_uint32: int,
    uinteger: int,
    entropy,
    spawn_key: tuple,
    pool_size: int,
    n_children_spawned: int,
) -> np.random.Generator:
    """Rebuild a generator from :func:`generator_spec`'s fields.

    The positional twin of :func:`generator_from_spec`, for hot decode
    loops (the distributed wire codec rebuilds two generators per task
    record): same reconstruction, no intermediate spec dict.  The seed
    sequence is reconstructed first (entropy, spawn key, pool size,
    children counter) so future :func:`spawn_children` calls on the
    rebuilt generator diverge identically to the original; the
    bit-generator state is then overwritten so draws continue from the
    exact captured position.
    """
    seed_seq = np.random.SeedSequence(
        entropy=entropy,
        spawn_key=spawn_key,
        pool_size=pool_size,
        n_children_spawned=n_children_spawned,
    )
    bit_generator = np.random.PCG64(seed_seq)
    bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": has_uint32,
        "uinteger": uinteger,
    }
    return np.random.Generator(bit_generator)


def generator_from_spec(spec: dict) -> np.random.Generator:
    """Rebuild the generator :func:`generator_spec` described."""
    return generator_from_parts(
        spec["state"],
        spec["inc"],
        spec["has_uint32"],
        spec["uinteger"],
        spec["entropy"],
        tuple(spec["spawn_key"]),
        spec["pool_size"],
        spec["n_children_spawned"],
    )
