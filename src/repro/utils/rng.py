"""Random-number-generator plumbing.

Every stochastic component of the library accepts either a seed (``int``),
``None`` (fresh entropy), or an existing :class:`numpy.random.Generator`.
Centralising the coercion here keeps experiment scripts reproducible: one
top-level seed fans out deterministically to every substrate via
:func:`spawn_children`.
"""

from __future__ import annotations

import copy

import numpy as np

__all__ = ["as_generator", "spawn_children", "clone_generator"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (OS entropy), an ``int`` seed, a ``SeedSequence``, or an
    existing ``Generator`` (returned unchanged so that state is shared with
    the caller).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, an int, a numpy SeedSequence or a Generator; "
        f"got {type(seed).__name__}"
    )


def spawn_children(seed, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Used by experiment drivers so that, e.g., topology generation and
    congestion sampling consume independent streams and adding snapshots to
    one stage never perturbs another.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Spawn through the generator's bit generator seed sequence.
        children = seed.bit_generator.seed_seq.spawn(count)
    else:
        children = np.random.SeedSequence(seed).spawn(count)
    return [np.random.default_rng(child) for child in children]


def clone_generator(seed):
    """Bit-exact private copy of a seed-like value.

    For a :class:`numpy.random.Generator` the clone must reproduce the
    original in *both* draw behaviour and spawn behaviour:
    reconstructing a generator from ``bit_generator.state`` alone would
    draw identically but attach a fresh ``SeedSequence``, so a later
    :func:`spawn_children` on the clone would diverge.  ``deepcopy``
    carries the seed sequence (entropy, spawn key, children counter)
    along with the state, which is exactly the contract the scenario
    engine relies on when it re-executes a task list.

    Other seed-likes (``None``, ints, ``SeedSequence``) deep-copy too,
    so callers can hand any accepted seed form to a consumer that will
    mutate it without disturbing the original.
    """
    return copy.deepcopy(seed)
