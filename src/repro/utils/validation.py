"""Argument-validation helpers shared across the package.

These raise ``ValueError`` with uniform, descriptive messages; they are for
caller mistakes, not for violations of the paper's model assumptions (those
raise :mod:`repro.exceptions` types).
"""

from __future__ import annotations

__all__ = ["check_probability", "check_fraction", "check_positive"]


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it (alias wording)."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a fraction in [0, 1], got {value}")
    return float(value)


def check_positive(value, name: str):
    """Validate that ``value`` is strictly positive and return it."""
    if value <= 0:
        raise ValueError(f"{name} must be strictly positive, got {value}")
    return value
