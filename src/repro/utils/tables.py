"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper plots; this
module renders them as aligned ASCII tables so the output is readable in a
terminal and diff-able in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    >>> print(format_table(["x", "y"], [[1, 2.0]]))
    x  y
    -  ------
    1  2.0000
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have exactly one cell per header")
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(
                c.ljust(w) for c, w in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)
