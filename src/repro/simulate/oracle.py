"""Exact path-state oracle: noise-free measurements from the model.

For enumerable ground-truth models, :class:`ExactPathStateDistribution`
computes the exact distribution of the congested-path set
``P(ψ(S) = F)`` by enumerating the model's product support and projecting
each network state through the coverage function.  It implements *both*
measurement protocols, so every inference algorithm can be run in the
noise-free limit:

* the theorem algorithm consumes ``p_congested_mask`` directly (this is
  the construction in the paper's proof, Section 3.2 "Setup");
* the practical algorithm's ``y`` values come from the identity
  ``P(Y_i = 0) = Σ_{F: i ∉ F} P(ψ(S) = F)`` and its pairwise analogue.

Tests use the oracle to validate that the theorem algorithm is *exact* and
that the practical algorithm's only error sources are rank deficiency and
sampling noise.
"""

from __future__ import annotations

import math

from repro.core.topology import Topology
from repro.exceptions import MeasurementError
from repro.model.network import NetworkCongestionModel

__all__ = ["ExactPathStateDistribution"]

#: Probability floor under the log (a path that is *never* good has
#: log-probability −∞, which the LP cannot digest).
_LOG_FLOOR = 1e-300


class ExactPathStateDistribution:
    """The exact distribution of the congested-path set.

    Build with :meth:`from_model`; direct construction takes a ready map
    ``{path mask: probability}`` (useful in tests).
    """

    def __init__(self, mask_probabilities: dict[int, float]) -> None:
        total = sum(mask_probabilities.values())
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise MeasurementError(
                f"path-state probabilities must sum to 1, got {total}"
            )
        self._masks = dict(mask_probabilities)

    @classmethod
    def from_model(
        cls,
        topology: Topology,
        network_model: NetworkCongestionModel,
        *,
        max_states: int = 1_000_000,
    ) -> "ExactPathStateDistribution":
        """Enumerate the model's states and project through ψ."""
        masks: dict[int, float] = {}
        for state, probability in network_model.iter_states(
            max_states=max_states
        ):
            mask = topology.coverage_of(state)
            masks[mask] = masks.get(mask, 0.0) + probability
        return cls(masks)

    # ------------------------------------------------------------------
    @property
    def masks(self) -> dict[int, float]:
        """``{congested-path mask: probability}`` (copy)."""
        return dict(self._masks)

    # ------------------------------------------------------------------
    # PathStateProvider protocol
    # ------------------------------------------------------------------
    def p_congested_mask(self, mask: int) -> float:
        """Exact ``P(ψ(S) = F)``."""
        return self._masks.get(mask, 0.0)

    # ------------------------------------------------------------------
    # PathGoodProvider protocol
    # ------------------------------------------------------------------
    def p_good(self, path_id: int) -> float:
        """Exact ``P(Y_i = 0)``."""
        bit = 1 << path_id
        return sum(
            probability
            for mask, probability in self._masks.items()
            if not mask & bit
        )

    def log_good(self, path_id: int) -> float:
        return math.log(max(self.p_good(path_id), _LOG_FLOOR))

    def p_good_pair(self, path_a: int, path_b: int) -> float:
        """Exact ``P(Y_i = 0, Y_j = 0)``."""
        bits = (1 << path_a) | (1 << path_b)
        return sum(
            probability
            for mask, probability in self._masks.items()
            if not mask & bits
        )

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        return math.log(max(self.p_good_pair(path_a, path_b), _LOG_FLOOR))

    def __repr__(self) -> str:
        return f"ExactPathStateDistribution(n_masks={len(self._masks)})"
