"""Experiment driver: many snapshots, vectorised.

Runs the paper's Section-5 simulation loop for ``n_snapshots`` rounds and
returns both the observable measurements (:class:`PathObservations`) and
the per-snapshot ground truth (link states), which the evaluation uses for
the "potentially congested links" population and the localization
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.topology import Topology
from repro.model.loss import DEFAULT_LINK_THRESHOLD, LossModel
from repro.model.network import NetworkCongestionModel
from repro.simulate.observations import PathObservations
from repro.simulate.probes import PathProber, ProbeConfig
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive

__all__ = ["ExperimentConfig", "SimulationRun", "run_experiment"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Simulation parameters for one experiment.

    Attributes:
        n_snapshots: Number of rounds ``N``.
        packets_per_path: Probe budget per path per round (``None`` =
            infinite-traffic limit, no probing noise).
        link_threshold: ``t_l`` (the paper uses 0.01).
        batch_size: Rounds simulated per vectorised batch (memory knob).
    """

    n_snapshots: int = 2000
    packets_per_path: int | None = 1000
    link_threshold: float = DEFAULT_LINK_THRESHOLD
    batch_size: int = 512

    def __post_init__(self) -> None:
        check_positive(self.n_snapshots, "n_snapshots")
        check_positive(self.batch_size, "batch_size")


@dataclass(frozen=True)
class SimulationRun:
    """Everything one experiment produced.

    Attributes:
        observations: What the tomography algorithms may see.
        link_states: Ground-truth snapshot × link congestion indicators.
        config: The configuration that produced the run.
    """

    observations: PathObservations
    link_states: np.ndarray
    config: ExperimentConfig

    @property
    def potentially_congested_links(self) -> frozenset[int]:
        """Links congested during at least one snapshot.

        Superset proxy used when callers have no model access; the
        evaluation (Section 5 metrics) defines potentially congested links
        as those on at least one congested *path* — see
        :func:`repro.eval.metrics.potentially_congested_links`.
        """
        return frozenset(np.flatnonzero(self.link_states.any(axis=0)))


def run_experiment(
    topology: Topology,
    network_model: NetworkCongestionModel,
    *,
    config: ExperimentConfig | None = None,
    seed=None,
) -> SimulationRun:
    """Simulate ``N`` snapshots of the full measurement pipeline.

    Per batch of rounds: draw network states from the congestion model,
    loss rates from the loss model, exact per-path delivery probabilities
    through the routing matrix, binomial probe outcomes, and threshold
    verdicts — the vectorised equivalent of looping
    :func:`repro.simulate.snapshot.simulate_snapshot`.
    """
    config = config or ExperimentConfig()
    rng = as_generator(seed)
    loss_model = LossModel(config.link_threshold)
    prober = PathProber(
        topology,
        ProbeConfig(
            packets_per_path=config.packets_per_path,
            link_threshold=config.link_threshold,
        ),
    )
    routing = topology.routing_matrix_sparse()
    thresholds = prober.path_thresholds
    threshold = loss_model.link_threshold

    link_states = np.zeros(
        (config.n_snapshots, topology.n_links), dtype=bool
    )
    path_states = np.zeros(
        (config.n_snapshots, topology.n_paths), dtype=bool
    )

    done = 0
    while done < config.n_snapshots:
        batch = min(config.batch_size, config.n_snapshots - done)
        states = network_model.sample_states(rng, batch)
        # Loss rates: good U(0, t_l], congested U(t_l, 1] — batched form
        # of LossModel.sample_loss_rates.  Congested entries are sparse,
        # so scale everything by t_l in place and rewrite only the
        # congested positions (bit-identical to the dense np.where form).
        uniforms = rng.random((batch, topology.n_links))
        loss = uniforms * threshold
        loss[states] = threshold + uniforms[states] * (1.0 - threshold)
        # log survival per path:  log Π (1 − loss) = Σ log1p(−loss);
        # reuse the loss buffer for the element-wise stages.
        np.negative(loss, out=loss)
        np.log1p(loss, out=loss)
        log_survival = loss @ routing.T
        np.exp(log_survival, out=log_survival)
        true_loss = np.subtract(1.0, log_survival, out=log_survival)
        if config.packets_per_path is None:
            measured = true_loss
        else:
            lost = rng.binomial(config.packets_per_path, true_loss)
            measured = lost / config.packets_per_path
        link_states[done : done + batch] = states
        np.greater(
            measured, thresholds, out=path_states[done : done + batch]
        )
        done += batch

    return SimulationRun(
        observations=PathObservations(path_states),
        link_states=link_states,
        config=config,
    )
