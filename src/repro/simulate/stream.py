"""Streaming simulation: probe windows over a scripted link-state timeline.

The paper's simulator produces one complete batch of snapshots; continuous
monitoring consumes the same rounds as a *stream* of windows.
:class:`SnapshotStream` emits :class:`ProbeWindow` batches, each snapshot
sampled exactly like :func:`repro.simulate.snapshot.simulate_snapshot`
(which is literally re-expressed as the single-window special case of this
stream) — draw a network state, assign loss rates, probe every path.

On top of the stationary congestion model, a :class:`LinkStateTimeline`
scripts non-stationary behaviour by snapshot index:

* ``onset`` — from ``at`` onward the event's links are forced congested
  (with per-snapshot ``probability``, so onsets can be noisy);
* ``clear`` — the links are forced good;
* ``flap`` — the links alternate between the onset and clear behaviours
  every ``period`` snapshots.

Events override the base model (later events override earlier ones), so a
scripted onset is visible regardless of the stationary marginals — the
scenario family behind detection-latency measurements: how many windows
does the streaming estimator need before a scripted onset shows up in its
verdicts?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.model.loss import LossModel
from repro.model.network import NetworkCongestionModel
from repro.simulate.probes import PathProber
from repro.utils.rng import as_generator

__all__ = [
    "StreamEvent",
    "LinkStateTimeline",
    "ProbeWindow",
    "SnapshotStream",
]

_EVENT_KINDS = ("onset", "clear", "flap")


@dataclass(frozen=True)
class StreamEvent:
    """One scripted link-state change, active from snapshot ``at``.

    Attributes:
        kind: ``"onset"`` (force congested), ``"clear"`` (force good) or
            ``"flap"`` (alternate between the two every ``period``
            snapshots).
        at: First snapshot index (0-based, global) the event affects.
        links: Link ids the event controls.
        probability: Per-snapshot probability that an onset actually
            congests each link (1.0 = deterministic onset).
        until: Exclusive end snapshot; ``None`` keeps the event active
            forever.
        period: Flap half-period in snapshots.
    """

    kind: str
    at: int
    links: tuple[int, ...]
    probability: float = 1.0
    until: int | None = None
    period: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise SimulationError(
                f"unknown event kind {self.kind!r}; expected one of "
                f"{_EVENT_KINDS}"
            )
        if self.at < 0:
            raise SimulationError(f"event at={self.at} must be >= 0")
        if not self.links:
            raise SimulationError("event must name at least one link")
        if not 0.0 <= self.probability <= 1.0:
            raise SimulationError(
                f"event probability {self.probability} outside [0, 1]"
            )
        if self.until is not None and self.until <= self.at:
            raise SimulationError(
                f"event until={self.until} must exceed at={self.at}"
            )
        if self.period < 1:
            raise SimulationError(f"flap period must be >= 1, got {self.period}")
        object.__setattr__(self, "links", tuple(int(k) for k in self.links))

    @classmethod
    def from_dict(cls, spec: dict) -> "StreamEvent":
        """Build from a JSON-style dict (the CLI/service wire shape)."""
        known = {"kind", "at", "links", "probability", "until", "period"}
        unknown = set(spec) - known
        if unknown:
            raise SimulationError(
                f"unknown event fields {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}"
            )
        try:
            kwargs = dict(spec)
            kwargs["kind"] = str(kwargs["kind"])
            kwargs["at"] = int(kwargs["at"])
            kwargs["links"] = tuple(int(k) for k in kwargs["links"])
        except KeyError as error:
            raise SimulationError(
                f"event spec missing required field {error}"
            ) from None
        return cls(**kwargs)

    def active(self, index: int) -> bool:
        """Whether the event affects snapshot ``index`` at all."""
        if index < self.at:
            return False
        return self.until is None or index < self.until

    def congesting(self, index: int) -> bool:
        """Whether the event is in its congesting phase at ``index``.

        ``onset`` always congests while active; ``clear`` never does;
        ``flap`` congests on even half-periods since ``at``.
        """
        if self.kind == "onset":
            return True
        if self.kind == "clear":
            return False
        return ((index - self.at) // self.period) % 2 == 0


class LinkStateTimeline:
    """An ordered script of :class:`StreamEvent` overrides.

    Later events take precedence on links they share with earlier ones.
    """

    def __init__(self, events: Sequence[StreamEvent]) -> None:
        self._events = tuple(events)

    @property
    def events(self) -> tuple[StreamEvent, ...]:
        return self._events

    @classmethod
    def from_specs(cls, specs: Sequence[dict]) -> "LinkStateTimeline":
        return cls([StreamEvent.from_dict(spec) for spec in specs])

    def check_links(self, n_links: int) -> None:
        for event in self._events:
            bad = [k for k in event.links if not 0 <= k < n_links]
            if bad:
                raise SimulationError(
                    f"event links {bad} out of range 0..{n_links - 1}"
                )

    def apply(
        self,
        link_states: np.ndarray,
        index: int,
        rng: np.random.Generator,
    ) -> None:
        """Overwrite one snapshot's link states per the active events."""
        for event in self._events:
            if not event.active(index):
                continue
            links = list(event.links)
            if event.congesting(index):
                if event.probability >= 1.0:
                    link_states[links] = True
                else:
                    hits = rng.random(len(links)) < event.probability
                    link_states[links] = hits
            else:
                link_states[links] = False

    def congested_now(self, index: int, n_links: int) -> np.ndarray:
        """Links a deterministic event forces congested at ``index``
        (the ground-truth targets for detection-latency scoring)."""
        forced = np.zeros(n_links, dtype=bool)
        for event in self._events:
            if not event.active(index):
                continue
            links = list(event.links)
            forced[links] = event.congesting(index)
        return forced


@dataclass(frozen=True)
class ProbeWindow:
    """One emitted window of consecutive simulation rounds.

    Attributes:
        index: Window sequence number (0-based).
        start: Global snapshot index of the window's first row.
        link_states: Ground-truth snapshot × link congestion matrix.
        loss_rates: Per-link loss rates per snapshot.
        path_loss: Measured per-path loss rates per snapshot.
        path_states: Snapshot × path congestion verdicts — the rows fed
            to :meth:`PathObservations.append_window`.
    """

    index: int
    start: int
    link_states: np.ndarray
    loss_rates: np.ndarray
    path_loss: np.ndarray
    path_states: np.ndarray

    @property
    def n_snapshots(self) -> int:
        return self.path_states.shape[0]

    @property
    def stop(self) -> int:
        """Exclusive global snapshot index past the window."""
        return self.start + self.n_snapshots


@dataclass
class SnapshotStream:
    """A resumable stream of simulation windows.

    Iterating (or calling :meth:`next_window`) advances a single RNG
    through full simulation rounds, so consuming the stream in windows of
    any size yields the identical snapshot sequence — ``window_size=1``
    is exactly :func:`repro.simulate.snapshot.simulate_snapshot` round by
    round.

    Attributes:
        network_model: Stationary congestion model sampled per snapshot.
        loss_model: Per-link loss-rate model.
        prober: Path measurement front-end.
        window_size: Default snapshots per emitted window.
        timeline: Optional scripted overrides by snapshot index.
        rng: Random source (or a seed; anything ``as_generator`` takes).
    """

    network_model: NetworkCongestionModel
    loss_model: LossModel
    prober: PathProber
    window_size: int = 50
    timeline: LinkStateTimeline | None = None
    rng: np.random.Generator | int | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise SimulationError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        self.rng = as_generator(self.rng)
        if self.timeline is not None:
            self.timeline.check_links(self.network_model.n_links)
        self._cursor = 0
        self._window_index = 0

    @property
    def cursor(self) -> int:
        """Global index of the next snapshot to be simulated."""
        return self._cursor

    def next_window(self, size: int | None = None) -> ProbeWindow:
        """Simulate and emit the next window of rounds."""
        size = self.window_size if size is None else size
        if size < 1:
            raise SimulationError(f"window size must be >= 1, got {size}")
        n_links = self.network_model.n_links
        n_paths = len(self.prober.path_thresholds)
        link_states = np.zeros((size, n_links), dtype=bool)
        loss_rates = np.zeros((size, n_links), dtype=np.float64)
        path_loss = np.zeros((size, n_paths), dtype=np.float64)
        path_states = np.zeros((size, n_paths), dtype=bool)
        for row in range(size):
            index = self._cursor + row
            states = self.network_model.sample_indicator(self.rng)
            if self.timeline is not None:
                self.timeline.apply(states, index, self.rng)
            rates = self.loss_model.sample_loss_rates(states, self.rng)
            measured, congested = self.prober.measure(rates, self.rng)
            link_states[row] = states
            loss_rates[row] = rates
            path_loss[row] = measured
            path_states[row] = congested
        window = ProbeWindow(
            index=self._window_index,
            start=self._cursor,
            link_states=link_states,
            loss_rates=loss_rates,
            path_loss=path_loss,
            path_states=path_states,
        )
        self._cursor += size
        self._window_index += 1
        return window

    def windows(self, count: int) -> Iterator[ProbeWindow]:
        """Emit exactly ``count`` windows of the default size."""
        for _ in range(count):
            yield self.next_window()

    def __iter__(self) -> Iterator[ProbeWindow]:
        while True:
            yield self.next_window()
