"""Snapshot simulator, probing, estimators, and the exact oracle."""

from repro.simulate.experiment import (
    ExperimentConfig,
    SimulationRun,
    run_experiment,
)
from repro.simulate.observations import PathObservations
from repro.simulate.oracle import ExactPathStateDistribution
from repro.simulate.probes import PathProber, ProbeConfig
from repro.simulate.snapshot import SnapshotResult, simulate_snapshot
from repro.simulate.stream import (
    LinkStateTimeline,
    ProbeWindow,
    SnapshotStream,
    StreamEvent,
)

__all__ = [
    "ExperimentConfig",
    "SimulationRun",
    "run_experiment",
    "PathObservations",
    "ExactPathStateDistribution",
    "PathProber",
    "ProbeConfig",
    "SnapshotResult",
    "simulate_snapshot",
    "LinkStateTimeline",
    "ProbeWindow",
    "SnapshotStream",
    "StreamEvent",
]
