"""Probing model: packets per path and measured path loss rates.

The paper's simulator sends "a given number of packets ... along each
path" each round and flips a coin per packet per link.  Per-packet
simulation across all links is equivalent to a single binomial draw per
path against the path's end-to-end delivery probability

    P(delivered) = Π_{k ∈ P_i} (1 − loss_k)

since drops are independent Bernoulli events; we sample that binomial
directly (exact, and orders of magnitude faster).  Setting
``packets_per_path=None`` gives the infinite-traffic limit: the measured
loss rate equals the true path loss rate (useful for isolating algorithm
error from probing noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.topology import Topology
from repro.model.loss import DEFAULT_LINK_THRESHOLD, path_threshold

__all__ = ["ProbeConfig", "PathProber"]


@dataclass(frozen=True)
class ProbeConfig:
    """Probing parameters.

    Attributes:
        packets_per_path: Packets sent along every path per snapshot;
            ``None`` means the infinite-traffic limit (no sampling noise).
        link_threshold: ``t_l``; fixes each path's ``t_p`` by its length.
    """

    packets_per_path: int | None = 1000
    link_threshold: float = DEFAULT_LINK_THRESHOLD

    def __post_init__(self) -> None:
        if self.packets_per_path is not None and self.packets_per_path < 1:
            raise ValueError(
                "packets_per_path must be >= 1 or None, got "
                f"{self.packets_per_path}"
            )


class PathProber:
    """Vectorised per-snapshot path measurement.

    Precomputes the sparse routing matrix and per-path congestion
    thresholds once; :meth:`measure` then turns a snapshot's link loss
    rates into per-path congestion verdicts.
    """

    def __init__(self, topology: Topology, config: ProbeConfig) -> None:
        self._topology = topology
        self._config = config
        self._routing = topology.routing_matrix_sparse()
        self._thresholds = np.array(
            [
                path_threshold(path.length, config.link_threshold)
                for path in topology.paths
            ],
            dtype=np.float64,
        )

    @property
    def config(self) -> ProbeConfig:
        return self._config

    @property
    def path_thresholds(self) -> np.ndarray:
        """``t_p`` per path id."""
        return self._thresholds

    def true_path_loss(self, loss_rates: np.ndarray) -> np.ndarray:
        """Exact end-to-end loss rate per path given link loss rates."""
        log_survival = self._routing @ np.log1p(-np.clip(loss_rates, 0.0, 1.0 - 1e-12))
        return 1.0 - np.exp(log_survival)

    def measure(
        self,
        loss_rates: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Measure one snapshot.

        Args:
            loss_rates: Per-link loss rates for the snapshot.
            rng: Random source (used only with finite packet budgets).

        Returns:
            ``(measured_loss, congested)`` — per-path measured loss rates
            and boolean congestion verdicts (``measured_loss > t_p``).
        """
        true_loss = self.true_path_loss(np.asarray(loss_rates, dtype=np.float64))
        packets = self._config.packets_per_path
        if packets is None:
            measured = true_loss
        else:
            lost = rng.binomial(packets, true_loss)
            measured = lost / packets
        return measured, measured > self._thresholds
