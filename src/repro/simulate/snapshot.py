"""Single-round simulation: the paper's Section-5 round, one snapshot.

Each round (paper Section 5, "Simulator"):

1. decide which links are congested, respecting the individual and joint
   congestion probabilities fixed at experiment start (the network model);
2. assign each link a packet-loss rate per the loss model of [13];
3. send packets along each path, dropping per-link;
4. measure each path's loss rate and compare against ``t_p``.

:func:`simulate_snapshot` does exactly one round; the bulk driver in
:mod:`repro.simulate.experiment` runs rounds in vectorised batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.loss import LossModel
from repro.model.network import NetworkCongestionModel
from repro.simulate.probes import PathProber

__all__ = ["SnapshotResult", "simulate_snapshot"]


@dataclass(frozen=True)
class SnapshotResult:
    """One round's ground truth and observations.

    Attributes:
        link_states: True per congested link (ground truth).
        loss_rates: Per-link loss rate assigned this round.
        path_loss: Measured per-path loss rates.
        path_states: True per congested path (the observation the
            tomography algorithms are allowed to see).
    """

    link_states: np.ndarray
    loss_rates: np.ndarray
    path_loss: np.ndarray
    path_states: np.ndarray


def simulate_snapshot(
    network_model: NetworkCongestionModel,
    loss_model: LossModel,
    prober: PathProber,
    rng: np.random.Generator,
) -> SnapshotResult:
    """Run one full simulation round."""
    link_states = network_model.sample_indicator(rng)
    loss_rates = loss_model.sample_loss_rates(link_states, rng)
    path_loss, path_states = prober.measure(loss_rates, rng)
    return SnapshotResult(
        link_states=link_states,
        loss_rates=loss_rates,
        path_loss=path_loss,
        path_states=path_states,
    )
