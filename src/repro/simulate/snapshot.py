"""Single-round simulation: the paper's Section-5 round, one snapshot.

Each round (paper Section 5, "Simulator"):

1. decide which links are congested, respecting the individual and joint
   congestion probabilities fixed at experiment start (the network model);
2. assign each link a packet-loss rate per the loss model of [13];
3. send packets along each path, dropping per-link;
4. measure each path's loss rate and compare against ``t_p``.

:func:`simulate_snapshot` does exactly one round — implemented as the
single-window special case of :class:`repro.simulate.stream.SnapshotStream`
(one window of one snapshot, no timeline); the bulk driver in
:mod:`repro.simulate.experiment` runs rounds in vectorised batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.loss import LossModel
from repro.model.network import NetworkCongestionModel
from repro.simulate.probes import PathProber

__all__ = ["SnapshotResult", "simulate_snapshot"]


@dataclass(frozen=True)
class SnapshotResult:
    """One round's ground truth and observations.

    Attributes:
        link_states: True per congested link (ground truth).
        loss_rates: Per-link loss rate assigned this round.
        path_loss: Measured per-path loss rates.
        path_states: True per congested path (the observation the
            tomography algorithms are allowed to see).
    """

    link_states: np.ndarray
    loss_rates: np.ndarray
    path_loss: np.ndarray
    path_states: np.ndarray


def simulate_snapshot(
    network_model: NetworkCongestionModel,
    loss_model: LossModel,
    prober: PathProber,
    rng: np.random.Generator,
) -> SnapshotResult:
    """Run one full simulation round (a one-snapshot stream window)."""
    from repro.simulate.stream import SnapshotStream

    stream = SnapshotStream(
        network_model, loss_model, prober, window_size=1, rng=rng
    )
    window = stream.next_window()
    return SnapshotResult(
        link_states=window.link_states[0],
        loss_rates=window.loss_rates[0],
        path_loss=window.path_loss[0],
        path_states=window.path_states[0],
    )
