"""Empirical estimators over observed path states.

:class:`PathObservations` wraps the snapshot × path boolean matrix of path
congestion verdicts and implements both measurement protocols:

* :class:`~repro.core.interfaces.PathGoodProvider` — ``log P(Y_i = 0)``
  and ``log P(Y_i = 0, Y_j = 0)`` as empirical frequencies, feeding the
  practical algorithm;
* :class:`~repro.core.interfaces.PathStateProvider` — empirical
  frequencies of exact congested-path sets, feeding the theorem algorithm.

Zero-count smoothing: an event never observed in ``N`` snapshots gets
frequency ``1/(2N)`` instead of 0, keeping logarithms finite.  This is the
usual "half a count" continuity correction; its effect vanishes as ``N``
grows and is documented in DESIGN.md.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import MeasurementError

__all__ = ["PathObservations"]


class PathObservations:
    """Observed path congestion verdicts for one experiment.

    Args:
        path_states: Boolean matrix, ``path_states[t, i]`` true when path
            ``P_i`` was congested during snapshot ``t``.
    """

    def __init__(self, path_states: np.ndarray) -> None:
        states = np.asarray(path_states)
        if states.ndim != 2:
            raise MeasurementError(
                f"path_states must be 2-D (snapshot × path), got shape "
                f"{states.shape}"
            )
        if states.shape[0] < 1:
            raise MeasurementError("need at least one snapshot")
        self._states = states.astype(bool)
        self._n_snapshots, self._n_paths = self._states.shape
        self._good = ~self._states
        self._good_counts = self._good.sum(axis=0).astype(np.int64)
        self._mask_counts: dict[int, int] | None = None

    # ------------------------------------------------------------------
    @property
    def n_snapshots(self) -> int:
        return self._n_snapshots

    @property
    def n_paths(self) -> int:
        return self._n_paths

    @property
    def path_states(self) -> np.ndarray:
        """The raw snapshot × path boolean matrix (read-only view)."""
        view = self._states.view()
        view.flags.writeable = False
        return view

    def congestion_frequency(self, path_id: int) -> float:
        """Observed fraction of snapshots with the path congested."""
        self._check_path(path_id)
        return 1.0 - self._good_counts[path_id] / self._n_snapshots

    # ------------------------------------------------------------------
    # PathGoodProvider protocol
    # ------------------------------------------------------------------
    def _smooth(self, count: int) -> float:
        if count <= 0:
            return 0.5 / self._n_snapshots
        if count >= self._n_snapshots:
            return 1.0 - 0.5 / self._n_snapshots
        return count / self._n_snapshots

    def p_good(self, path_id: int) -> float:
        """Smoothed ``P(Y_i = 0)`` estimate."""
        self._check_path(path_id)
        return self._smooth(int(self._good_counts[path_id]))

    def log_good(self, path_id: int) -> float:
        """``y_i = log P(Y_i = 0)`` (paper Eq. 9 left-hand side)."""
        return math.log(self.p_good(path_id))

    def p_good_pair(self, path_a: int, path_b: int) -> float:
        """Smoothed ``P(Y_i = 0, Y_j = 0)`` estimate."""
        self._check_path(path_a)
        self._check_path(path_b)
        both = int(np.sum(self._good[:, path_a] & self._good[:, path_b]))
        return self._smooth(both)

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        """``y_ij`` (paper Eq. 10 left-hand side)."""
        return math.log(self.p_good_pair(path_a, path_b))

    # ------------------------------------------------------------------
    # PathStateProvider protocol
    # ------------------------------------------------------------------
    def _ensure_mask_counts(self) -> dict[int, int]:
        if self._mask_counts is None:
            counts: dict[int, int] = {}
            for row in range(self._n_snapshots):
                mask = 0
                for path_id in np.flatnonzero(self._states[row]):
                    mask |= 1 << int(path_id)
                counts[mask] = counts.get(mask, 0) + 1
            self._mask_counts = counts
        return self._mask_counts

    def p_congested_mask(self, mask: int) -> float:
        """Empirical ``P(ψ(S) = F)`` for the exact path set ``F``.

        Unlike the good-probability estimators this is *not* smoothed: the
        theorem algorithm sums these over disjoint events, and smoothing
        every mask would inflate total probability mass.  A never-observed
        state simply has empirical probability 0.
        """
        return self._ensure_mask_counts().get(mask, 0) / self._n_snapshots

    def observed_masks(self) -> dict[int, int]:
        """``{congested-path mask: count}`` over all snapshots."""
        return dict(self._ensure_mask_counts())

    # ------------------------------------------------------------------
    def congested_mask_of_snapshot(self, snapshot: int) -> int:
        """Bitmask of congested paths during one snapshot (for the
        localization extension)."""
        if not 0 <= snapshot < self._n_snapshots:
            raise MeasurementError(
                f"snapshot {snapshot} out of range 0..{self._n_snapshots - 1}"
            )
        mask = 0
        for path_id in np.flatnonzero(self._states[snapshot]):
            mask |= 1 << int(path_id)
        return mask

    def _check_path(self, path_id: int) -> None:
        if not 0 <= path_id < self._n_paths:
            raise MeasurementError(
                f"path id {path_id} out of range 0..{self._n_paths - 1}"
            )

    def __repr__(self) -> str:
        return (
            f"PathObservations(n_snapshots={self._n_snapshots}, "
            f"n_paths={self._n_paths})"
        )
