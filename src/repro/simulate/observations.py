"""Empirical estimators over observed path states.

:class:`PathObservations` wraps the snapshot × path boolean matrix of path
congestion verdicts and implements both measurement protocols:

* :class:`~repro.core.interfaces.PathGoodProvider` — ``log P(Y_i = 0)``
  and ``log P(Y_i = 0, Y_j = 0)`` as empirical frequencies, feeding the
  practical algorithm;
* :class:`~repro.core.interfaces.PathStateProvider` — empirical
  frequencies of exact congested-path sets, feeding the theorem algorithm.

Zero-count smoothing: an event never observed in ``N`` snapshots gets
frequency ``1/(2N)`` instead of 0, keeping logarithms finite.  This is the
usual "half a count" continuity correction; its effect vanishes as ``N``
grows and is documented in DESIGN.md.

Every estimator is backed by a *batch kernel* — one NumPy operation over
all paths (or all requested pairs) at once:

* single-path good counts come from one column sum;
* joint good counts come from the cached Gram matrix ``good.T @ good``
  (or an indexed gather for small queries), never a per-pair Python loop;
* exact congested-set counts come from packing each snapshot row into
  bytes (:func:`numpy.packbits`) and running one ``np.unique`` over the
  packed rows.

The scalar accessors (``p_good``, ``log_good_pair``, ...) are thin
wrappers over those kernels, so existing callers keep working while bulk
consumers (the equation builder, the theorem algorithm) use the batch
APIs directly.

Streaming
---------

The estimator state is *appendable*: :meth:`PathObservations.append_window`
admits a new window of snapshot rows, updating every materialised cache
incrementally — the joint-good Gram accumulates ``good_w.T @ good_w``, the
packed-row/mask-count caches gain exactly the new rows, and the per-path
log cache is invalidated (it is O(paths) to rebuild).  A bounded sliding
window (``max_window=``, or explicit :meth:`evict_oldest`) drops the
oldest rows by *subtracting* their Gram/count contributions; because every
count is an exact integer, the subtracted state is bit-identical to a
from-scratch rebuild over the surviving rows — asserted under
``__debug__`` on the first eviction (and on every eviction when the
``REPRO_STREAM_VERIFY`` environment variable is set), with a full
recompute as the fallback whenever a cache was never materialised.

Input freezing: the constructor and :meth:`append_window` adopt boolean
input arrays *without copying* and set ``flags.writeable = False`` on
them.  Every cache here assumes rows never change after admission; an
in-place mutation of the input would silently desynchronise
``log_good_all``/``joint_good_gram`` from the raw rows.  Freezing turns
that hazard into an immediate ``ValueError`` at the mutation site.  Pass
``array.copy()`` if you need to keep a writable copy on the caller side.
(Non-boolean inputs are converted, which copies — the caller's array is
then untouched and stays writable.)
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import MeasurementError

__all__ = ["PathObservations"]

#: Below this many requested pairs a direct column gather beats building
#: (and caching) the full path × path Gram matrix.
_GRAM_QUERY_THRESHOLD = 64


def _window_gram(good_w: np.ndarray) -> np.ndarray:
    """Exact int64 Gram contribution of one window of good indicators.

    float32 matmul is exact for sums below 2^24 and twice as fast; any
    realistic window is far below that.
    """
    dtype = np.float32 if good_w.shape[0] < 2**24 else np.float64
    good = good_w.astype(dtype)
    return (good.T @ good).astype(np.int64)


class PathObservations:
    """Observed path congestion verdicts for one experiment.

    Args:
        path_states: Boolean matrix, ``path_states[t, i]`` true when path
            ``P_i`` was congested during snapshot ``t``.  Boolean arrays
            are adopted without copying and frozen
            (``flags.writeable = False``); see the module docstring.
        max_window: Optional sliding-window bound.  When set, appends
            evict the oldest rows so at most this many snapshots are
            retained.  ``None`` (the default) keeps the full history.
    """

    def __init__(
        self, path_states: np.ndarray, *, max_window: int | None = None
    ) -> None:
        states = self._adopt(path_states)
        if states.shape[0] < 1:
            raise MeasurementError("need at least one snapshot")
        if max_window is not None and max_window < 1:
            raise MeasurementError(
                f"max_window must be positive, got {max_window}"
            )
        self._max_window = max_window
        # Valid rows live at ``_buf[_start:_stop]``.  The initial buffer
        # is the (frozen) input itself — the batch-only path never pays a
        # copy; the first append reallocates into a private buffer.
        self._buf = states
        self._good_buf = ~states
        self._good_buf.flags.writeable = False
        self._start = 0
        self._stop = states.shape[0]
        self._n_paths = states.shape[1]
        self._n_evicted = 0
        self._verified_eviction = False
        self._good_counts = self._good_buf.sum(axis=0).astype(np.int64)
        self._mask_counts: dict[int, int] | None = None
        self._log_good_all: np.ndarray | None = None
        self._joint_gram: np.ndarray | None = None
        self._packed_rows: np.ndarray | None = None
        self._refresh_views()
        if max_window is not None and self.n_snapshots > max_window:
            self.evict_oldest(self.n_snapshots - max_window)

    @staticmethod
    def _adopt(path_states) -> np.ndarray:
        states = np.asarray(path_states)
        if states.ndim != 2:
            raise MeasurementError(
                f"path_states must be 2-D (snapshot × path), got shape "
                f"{states.shape}"
            )
        if states.dtype != bool:
            states = states.astype(bool)
        # Freeze the adopted rows: the incremental caches assume they
        # never change (module docstring, "Input freezing").
        states.flags.writeable = False
        return states

    def _refresh_views(self) -> None:
        self._states = self._buf[self._start : self._stop]
        self._good = self._good_buf[self._start : self._stop]

    # ------------------------------------------------------------------
    @property
    def n_snapshots(self) -> int:
        return self._stop - self._start

    @property
    def _n_snapshots(self) -> int:
        return self._stop - self._start

    @property
    def n_paths(self) -> int:
        return self._n_paths

    @property
    def n_evicted(self) -> int:
        """Snapshots dropped so far by the sliding window."""
        return self._n_evicted

    @property
    def max_window(self) -> int | None:
        """The sliding-window bound (``None`` = unbounded)."""
        return self._max_window

    @property
    def path_states(self) -> np.ndarray:
        """The raw snapshot × path boolean matrix (read-only view)."""
        view = self._states.view()
        view.flags.writeable = False
        return view

    def congestion_frequency(self, path_id: int) -> float:
        """Observed fraction of snapshots with the path congested."""
        self._check_path(path_id)
        return 1.0 - self._good_counts[path_id] / self._n_snapshots

    # ------------------------------------------------------------------
    # Streaming: append / evict
    # ------------------------------------------------------------------
    def append_window(self, path_states: np.ndarray) -> None:
        """Admit a window of new snapshot rows (incremental update).

        Every materialised cache is extended in place: good counts and
        the joint-good Gram accumulate the window's contribution, packed
        rows and mask counts gain exactly the new rows, and the per-path
        log cache is invalidated.  The resulting state is bit-identical
        to constructing :class:`PathObservations` over the concatenated
        rows.  With ``max_window`` set, the oldest rows are evicted to
        honour the bound.  The input is adopted frozen (see the module
        docstring).
        """
        window = self._adopt(path_states)
        rows = window.shape[0]
        if rows == 0:
            return
        if window.shape[1] != self._n_paths:
            raise MeasurementError(
                f"window has {window.shape[1]} paths, expected "
                f"{self._n_paths}"
            )
        self._reserve(rows)
        stop = self._stop + rows
        self._buf[self._stop : stop] = window
        good_w = self._good_buf[self._stop : stop]
        np.logical_not(window, out=good_w)
        self._stop = stop
        self._refresh_views()
        self._good_counts += good_w.sum(axis=0).astype(np.int64)
        self._log_good_all = None
        if self._joint_gram is not None:
            self._joint_gram += _window_gram(good_w)
        if self._packed_rows is not None:
            packed_w = np.packbits(window, axis=1, bitorder="little")
            self._packed_rows = np.concatenate([self._packed_rows, packed_w])
            if self._mask_counts is not None:
                for row in packed_w:
                    mask = int.from_bytes(row.tobytes(), "little")
                    self._mask_counts[mask] = (
                        self._mask_counts.get(mask, 0) + 1
                    )
        if (
            self._max_window is not None
            and self.n_snapshots > self._max_window
        ):
            self.evict_oldest(self.n_snapshots - self._max_window)

    def evict_oldest(self, count: int) -> None:
        """Drop the ``count`` oldest snapshots (sliding-window eviction).

        Materialised caches are updated by *subtracting* the evicted
        rows' contributions; caches that were never materialised stay
        unmaterialised and recompute lazily over the surviving rows (the
        recompute fallback).  At least one snapshot must survive.
        """
        if count <= 0:
            return
        if count >= self.n_snapshots:
            raise MeasurementError(
                f"cannot evict {count} of {self.n_snapshots} snapshots; "
                "at least one must remain"
            )
        old_good = self._good_buf[self._start : self._start + count]
        self._good_counts -= old_good.sum(axis=0).astype(np.int64)
        self._log_good_all = None
        if self._joint_gram is not None:
            self._joint_gram -= _window_gram(old_good)
        if self._packed_rows is not None:
            evicted_packed = self._packed_rows[:count]
            if self._mask_counts is not None:
                for row in evicted_packed:
                    mask = int.from_bytes(row.tobytes(), "little")
                    remaining = self._mask_counts[mask] - 1
                    if remaining:
                        self._mask_counts[mask] = remaining
                    else:
                        del self._mask_counts[mask]
            self._packed_rows = self._packed_rows[count:].copy()
        self._start += count
        self._n_evicted += count
        self._refresh_views()
        if __debug__ and (
            not self._verified_eviction
            or os.environ.get("REPRO_STREAM_VERIFY")
        ):
            self._verified_eviction = True
            self._assert_matches_recompute()

    def _reserve(self, rows: int) -> None:
        """Ensure the row buffers can hold ``rows`` more snapshots."""
        capacity = self._buf.shape[0]
        if self._stop + rows <= capacity and self._buf.flags.writeable:
            return
        valid = self.n_snapshots
        new_capacity = max(2 * capacity, valid + rows, 16)
        buf = np.empty((new_capacity, self._n_paths), dtype=bool)
        good_buf = np.empty((new_capacity, self._n_paths), dtype=bool)
        buf[:valid] = self._buf[self._start : self._stop]
        good_buf[:valid] = self._good_buf[self._start : self._stop]
        self._buf = buf
        self._good_buf = good_buf
        self._start = 0
        self._stop = valid
        self._refresh_views()

    def _assert_matches_recompute(self) -> None:
        """Equivalence contract: incremental state == from-scratch state.

        Compares every materialised cache against a fresh
        :class:`PathObservations` over the surviving rows.  Called under
        ``__debug__`` after the first eviction (and every eviction when
        ``REPRO_STREAM_VERIFY`` is set) — integer subtraction is exact,
        so any mismatch is a genuine bookkeeping bug, not float noise.
        """
        fresh = PathObservations(self._states.copy())
        assert np.array_equal(self._good_counts, fresh._good_counts), (
            "incremental good counts diverged from recompute"
        )
        if self._joint_gram is not None:
            assert np.array_equal(
                self._joint_gram, fresh.joint_good_gram()
            ), "incremental Gram diverged from recompute"
        if self._packed_rows is not None:
            assert np.array_equal(
                self._packed_rows, fresh._ensure_packed_rows()
            ), "incremental packed rows diverged from recompute"
        if self._mask_counts is not None:
            assert self._mask_counts == fresh._ensure_mask_counts(), (
                "incremental mask counts diverged from recompute"
            )

    # ------------------------------------------------------------------
    # Batch kernels
    # ------------------------------------------------------------------
    def _smooth_counts(self, counts: np.ndarray) -> np.ndarray:
        """Vectorised half-count smoothing of event counts."""
        n = self._n_snapshots
        return np.where(
            counts <= 0,
            0.5 / n,
            np.where(counts >= n, 1.0 - 0.5 / n, counts / n),
        )

    def p_good_all(self) -> np.ndarray:
        """Smoothed ``P(Y_i = 0)`` for every path, in one shot."""
        return self._smooth_counts(self._good_counts)

    def log_good_all(self) -> np.ndarray:
        """``y_i = log P(Y_i = 0)`` for every path (cached)."""
        if self._log_good_all is None:
            self._log_good_all = np.log(self.p_good_all())
            self._log_good_all.flags.writeable = False
        return self._log_good_all

    def joint_good_gram(self) -> np.ndarray:
        """``G[i, j]`` = number of snapshots with paths i and j both good.

        Computed once as ``good.T @ good``, cached, and thereafter
        maintained incrementally across :meth:`append_window` /
        :meth:`evict_oldest`; the float accumulation is exact because
        counts are bounded by the snapshot count.
        """
        if self._joint_gram is None:
            self._joint_gram = _window_gram(self._good)
        view = self._joint_gram.view()
        view.flags.writeable = False
        return view

    def _check_pairs(self, pairs) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise MeasurementError(
                f"pairs must have shape (m, 2), got {pairs.shape}"
            )
        if pairs.size and (
            pairs.min() < 0 or pairs.max() >= self._n_paths
        ):
            raise MeasurementError(
                f"pair path ids out of range 0..{self._n_paths - 1}"
            )
        return pairs

    def joint_good_counts(self, pairs) -> np.ndarray:
        """Joint good counts for an ``(m, 2)`` array of path-id pairs."""
        pairs = self._check_pairs(pairs)
        if pairs.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        if (
            self._joint_gram is None
            and pairs.shape[0] < _GRAM_QUERY_THRESHOLD
        ):
            both = self._good[:, pairs[:, 0]] & self._good[:, pairs[:, 1]]
            return both.sum(axis=0).astype(np.int64)
        gram = self.joint_good_gram()
        return gram[pairs[:, 0], pairs[:, 1]]

    def p_good_pairs(self, pairs) -> np.ndarray:
        """Smoothed ``P(Y_i = 0, Y_j = 0)`` for many pairs at once."""
        return self._smooth_counts(self.joint_good_counts(pairs))

    def log_good_pairs(self, pairs) -> np.ndarray:
        """``y_ij`` (paper Eq. 10 left-hand side) for many pairs at once."""
        return np.log(self.p_good_pairs(pairs))

    # ------------------------------------------------------------------
    # PathGoodProvider protocol (scalar wrappers over the batch kernels)
    # ------------------------------------------------------------------
    def _smooth(self, count: int) -> float:
        if count <= 0:
            return 0.5 / self._n_snapshots
        if count >= self._n_snapshots:
            return 1.0 - 0.5 / self._n_snapshots
        return count / self._n_snapshots

    def p_good(self, path_id: int) -> float:
        """Smoothed ``P(Y_i = 0)`` estimate."""
        self._check_path(path_id)
        return self._smooth(int(self._good_counts[path_id]))

    def log_good(self, path_id: int) -> float:
        """``y_i = log P(Y_i = 0)`` (paper Eq. 9 left-hand side)."""
        self._check_path(path_id)
        return float(self.log_good_all()[path_id])

    def p_good_pair(self, path_a: int, path_b: int) -> float:
        """Smoothed ``P(Y_i = 0, Y_j = 0)`` estimate."""
        self._check_path(path_a)
        self._check_path(path_b)
        return float(self.p_good_pairs([[path_a, path_b]])[0])

    def log_good_pair(self, path_a: int, path_b: int) -> float:
        """``y_ij`` (paper Eq. 10 left-hand side)."""
        self._check_path(path_a)
        self._check_path(path_b)
        return float(self.log_good_pairs([[path_a, path_b]])[0])

    # ------------------------------------------------------------------
    # PathStateProvider protocol
    # ------------------------------------------------------------------
    def _ensure_packed_rows(self) -> np.ndarray:
        """Each snapshot row packed into bytes, little-endian bit order,
        so byte ``k`` bit ``j`` is path ``8k + j`` — the byte sequence of
        the row *is* the congested-path bitmask."""
        if self._packed_rows is None:
            self._packed_rows = np.packbits(
                self._states, axis=1, bitorder="little"
            )
        return self._packed_rows

    def _ensure_mask_counts(self) -> dict[int, int]:
        if self._mask_counts is None:
            packed = self._ensure_packed_rows()
            unique, counts = np.unique(packed, axis=0, return_counts=True)
            self._mask_counts = {
                int.from_bytes(row.tobytes(), "little"): int(count)
                for row, count in zip(unique, counts)
            }
        return self._mask_counts

    def p_congested_mask(self, mask: int) -> float:
        """Empirical ``P(ψ(S) = F)`` for the exact path set ``F``.

        Unlike the good-probability estimators this is *not* smoothed: the
        theorem algorithm sums these over disjoint events, and smoothing
        every mask would inflate total probability mass.  A never-observed
        state simply has empirical probability 0.
        """
        return self._ensure_mask_counts().get(mask, 0) / self._n_snapshots

    def observed_masks(self) -> dict[int, int]:
        """``{congested-path mask: count}`` over all snapshots."""
        return dict(self._ensure_mask_counts())

    # ------------------------------------------------------------------
    def congested_mask_of_snapshot(self, snapshot: int) -> int:
        """Bitmask of congested paths during one snapshot (for the
        localization extension).  Index 0 is the oldest *surviving*
        snapshot when a sliding window has evicted history."""
        if not 0 <= snapshot < self._n_snapshots:
            raise MeasurementError(
                f"snapshot {snapshot} out of range 0..{self._n_snapshots - 1}"
            )
        row = self._ensure_packed_rows()[snapshot]
        return int.from_bytes(row.tobytes(), "little")

    def _check_path(self, path_id: int) -> None:
        if not 0 <= path_id < self._n_paths:
            raise MeasurementError(
                f"path id {path_id} out of range 0..{self._n_paths - 1}"
            )

    def __repr__(self) -> str:
        return (
            f"PathObservations(n_snapshots={self._n_snapshots}, "
            f"n_paths={self._n_paths})"
        )
